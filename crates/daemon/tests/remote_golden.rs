//! End-to-end daemon tests: an in-process `marpled` on a temp socket, driven through
//! the real wire protocol.
//!
//! - the whole non-slow golden suite, verified remotely, must match
//!   `crates/engine/tests/golden_verdicts.txt` bit for bit — including a second
//!   client connecting mid-suite, whose interleaved requests must demultiplex
//!   correctly;
//! - torn, oversized and garbage frames must close the offending connection without
//!   poisoning the store (a well-behaved client afterwards still verifies fine);
//! - a graceful shutdown must drain in-flight jobs before the daemon stops.

use hat_daemon::frame::{read_frame, write_frame, MAX_RESPONSE_FRAME};
use hat_daemon::{
    Addr, Daemon, DaemonConfig, Hello, Listener, RemoteClient, Request, Response, Stream,
    CACHE_VERSION,
};
use hat_engine::EngineConfig;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;

fn temp_socket(tag: &str) -> Addr {
    Addr::Unix(std::env::temp_dir().join(format!("hat-daemon-{tag}-{}.sock", std::process::id())))
}

fn spawn_daemon(tag: &str, jobs: usize) -> hat_daemon::DaemonHandle {
    Daemon::spawn(DaemonConfig {
        addr: temp_socket(tag),
        engine: EngineConfig {
            jobs,
            ..EngineConfig::default()
        },
        quiet: true,
    })
    .expect("the daemon starts")
}

/// Parses the golden snapshot into `ADT/Library::method -> (expected, verdict)`.
fn golden_verdicts() -> BTreeMap<String, (bool, bool)> {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../engine/tests/golden_verdicts.txt");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut verdicts = BTreeMap::new();
    for line in text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let mut parts = line.split_whitespace();
        let key = parts.next().expect("key column").to_string();
        let expected = parts
            .next()
            .and_then(|p| p.strip_prefix("expected="))
            .expect("expected column")
            == "true";
        let verdict = parts
            .next()
            .and_then(|p| p.strip_prefix("verdict="))
            .expect("verdict column")
            == "true";
        verdicts.insert(key, (expected, verdict));
    }
    verdicts
}

#[test]
fn remote_golden_suite_matches_the_snapshot_with_a_concurrent_client() {
    let daemon = spawn_daemon("golden", 2);
    let addr = daemon.addr().clone();
    let mut client = RemoteClient::connect(&addr).expect("client connects");
    assert_eq!(client.hello().cache_version, CACHE_VERSION);

    let golden = golden_verdicts();
    let configs: Vec<(String, String)> = hat_suite::all_benchmarks()
        .iter()
        .filter(|b| !b.slow)
        .map(|b| (b.adt.to_string(), b.library.to_string()))
        .collect();
    assert!(configs.len() > 10, "the suite lost configurations");

    // Half-way through the suite, a second client connects and runs its own check —
    // its verdicts must be correct and its frames must not bleed into ours.
    let halfway = configs.len() / 2;
    let mut remote: BTreeMap<String, (bool, bool)> = BTreeMap::new();
    let mut second: Option<std::thread::JoinHandle<()>> = None;
    for (i, (adt, library)) in configs.iter().enumerate() {
        if i == halfway {
            let addr = addr.clone();
            second = Some(std::thread::spawn(move || {
                let mut client = RemoteClient::connect(&addr).expect("second client connects");
                let uptime = client.ping().expect("ping answers");
                assert!(uptime >= 0.0);
                let run = client
                    .verify(
                        Request::Check {
                            adt: "Stack".into(),
                            library: "LinkedList".into(),
                        },
                        |_, _, _| {},
                    )
                    .expect("the concurrent check runs");
                assert_eq!(run.summary.benchmarks.len(), 1);
                let run = &run.summary.benchmarks[0];
                assert_eq!(
                    (run.adt.as_str(), run.library.as_str()),
                    ("Stack", "LinkedList")
                );
                assert!(
                    run.reports.iter().any(|r| r.verified),
                    "the concurrent client got crosstalk verdicts"
                );
            }));
        }
        let outcome = client
            .verify(
                Request::Check {
                    adt: adt.clone(),
                    library: library.clone(),
                },
                |_, _, _| {},
            )
            .unwrap_or_else(|e| panic!("remote check of {adt}/{library} failed: {e}"));
        let bench = hat_suite::find(adt, library).expect("configuration exists");
        assert_eq!(outcome.summary.benchmarks.len(), 1);
        let run = &outcome.summary.benchmarks[0];
        assert_eq!(outcome.jobs, bench.methods.len());
        assert_eq!(run.reports.len(), bench.methods.len(), "{adt}/{library}");
        for (method, report) in bench.methods.iter().zip(&run.reports) {
            // Reports are reassembled in method order, like a local summary.
            assert_eq!(report.name, method.sig.name, "{adt}/{library}");
            remote.insert(
                format!("{adt}/{library}::{}", method.sig.name),
                (method.expect_verified, report.verified),
            );
        }
    }
    second
        .expect("the suite passed the halfway point")
        .join()
        .expect("second client");

    assert_eq!(
        remote, golden,
        "remote verdicts diverge from the golden snapshot"
    );

    // Per-client accounting saw both connections.
    let status = client.cache_stats().expect("stats answer");
    assert!(status.clients.len() >= 2, "both clients are on record");
    assert!(status.jobs_completed >= golden.len() as u64);
    daemon.stop();
}

#[test]
fn malformed_frames_close_the_connection_without_poisoning_the_store() {
    let daemon = spawn_daemon("poison", 1);
    let addr = daemon.addr().clone();

    // Baseline: one good run, so the store has entries worth poisoning.
    let mut client = RemoteClient::connect(&addr).expect("client connects");
    let before = client
        .verify(
            Request::Check {
                adt: "Stack".into(),
                library: "LinkedList".into(),
            },
            |_, _, _| {},
        )
        .expect("baseline run");
    let entries_before = client.cache_stats().expect("stats").entries;
    assert!(entries_before > 0);

    let read_hello = |stream: &mut Stream| {
        let frame = read_frame(stream, MAX_RESPONSE_FRAME)
            .expect("handshake frame")
            .expect("server speaks first");
        Hello::parse(&frame).expect("a real handshake");
    };
    // Garbage bytes instead of a frame.
    let mut garbage = Stream::connect(&addr).expect("connects");
    read_hello(&mut garbage);
    garbage.write_all(b"!!! not a frame !!!\n").expect("writes");
    garbage.flush().expect("flushes");
    assert!(
        read_frame(&mut garbage, MAX_RESPONSE_FRAME)
            .expect("clean close")
            .is_none(),
        "the server must close on garbage, not answer it"
    );
    // An oversized frame: the announced length exceeds the request cap.
    let mut oversized = Stream::connect(&addr).expect("connects");
    read_hello(&mut oversized);
    oversized.write_all(b"99999999\n").expect("writes");
    oversized.flush().expect("flushes");
    assert!(read_frame(&mut oversized, MAX_RESPONSE_FRAME)
        .expect("clean close")
        .is_none());
    // A torn frame: a length line promising more payload than ever arrives.
    let mut torn = Stream::connect(&addr).expect("connects");
    read_hello(&mut torn);
    torn.write_all(b"500\n{\"op\":").expect("writes");
    torn.flush().expect("flushes");
    torn.shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    assert!(read_frame(&mut torn, MAX_RESPONSE_FRAME)
        .expect("clean close")
        .is_none());
    // A well-framed payload that is not a valid request.
    let mut confused = Stream::connect(&addr).expect("connects");
    read_hello(&mut confused);
    write_frame(&mut confused, "{\"op\":\"launch-missiles\"}").expect("writes");
    confused.flush().expect("flushes");
    // The server answers a final error frame (id 0), then closes.
    let last = read_frame(&mut confused, MAX_RESPONSE_FRAME).expect("error frame");
    assert!(last.is_some_and(|f| f.contains("error")));
    assert!(read_frame(&mut confused, MAX_RESPONSE_FRAME)
        .expect("clean close")
        .is_none());

    // The store is untouched and the daemon still serves: the same check now runs
    // fully warm with identical verdicts.
    let mut client = RemoteClient::connect(&addr).expect("a fresh client connects");
    let after = client
        .verify(
            Request::Check {
                adt: "Stack".into(),
                library: "LinkedList".into(),
            },
            |_, _, _| {},
        )
        .expect("the daemon survived the abuse");
    let verdicts = |run: &hat_daemon::RemoteRun| -> Vec<bool> {
        run.summary.benchmarks[0]
            .reports
            .iter()
            .map(|r| r.verified)
            .collect()
    };
    assert_eq!(verdicts(&before), verdicts(&after));
    assert_eq!(after.summary.cache.misses, 0, "the warm store was poisoned");
    assert!(client.cache_stats().expect("stats").entries >= entries_before);
    daemon.stop();
}

#[test]
fn pipelined_requests_demultiplex_by_id() {
    let daemon = spawn_daemon("pipeline", 2);
    let mut client = RemoteClient::connect(daemon.addr()).expect("client connects");
    // Three requests in flight on one connection before reading anything.
    let check_a = client
        .send(Request::Check {
            adt: "Stack".into(),
            library: "LinkedList".into(),
        })
        .expect("send");
    let check_b = client
        .send(Request::Check {
            adt: "ConnectedGraph".into(),
            library: "Set".into(),
        })
        .expect("send");
    let ping = client.send(Request::Ping).expect("send");
    // Read them out of order: the ping answer first (it overtakes the running
    // batches), then batch B, then batch A — recv_for buffers whatever interleaves.
    match client.recv_for(ping).expect("pong arrives mid-stream") {
        Response::Pong { .. } => {}
        other => panic!("expected a pong, got {other:?}"),
    }
    let mut drain = |id: u64, adt: &str| {
        let mut reports = 0;
        loop {
            match client.recv_for(id).expect("response") {
                Response::Report { adt: got, .. } => {
                    assert_eq!(got, adt, "report routed to the wrong request");
                    reports += 1;
                }
                Response::Done { jobs, .. } => {
                    assert_eq!(jobs, reports, "jobs and streamed reports disagree");
                    break;
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        reports
    };
    assert!(drain(check_b, "ConnectedGraph") > 0);
    assert!(drain(check_a, "Stack") > 0);
    daemon.stop();
}

#[test]
fn graceful_shutdown_drains_in_flight_jobs() {
    let daemon = spawn_daemon("drain", 1);
    let addr = daemon.addr().clone();
    let mut client = RemoteClient::connect(&addr).expect("client connects");
    // Start a batch, then shut the daemon down from a second connection while the
    // batch is (at most just) underway.
    let id = client
        .send(Request::Check {
            adt: "ConnectedGraph".into(),
            library: "Set".into(),
        })
        .expect("send");
    let mut stopper = RemoteClient::connect(&addr).expect("stopper connects");
    stopper.shutdown().expect("bye");
    // The in-flight batch still completes: every report plus the done frame.
    let mut reports = 0;
    loop {
        match client.recv_for(id).expect("the drained run still streams") {
            Response::Report { .. } => reports += 1,
            Response::Done { jobs, .. } => {
                assert_eq!(jobs, reports);
                break;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    let expected = hat_suite::find("ConnectedGraph", "Set").expect("configuration exists");
    assert_eq!(reports, expected.methods.len());
    // The daemon finishes draining and removes its socket.
    let Addr::Unix(path) = &addr else {
        panic!("test daemon listens on a unix socket")
    };
    for _ in 0..200 {
        if daemon.is_stopped() && !path.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(daemon.is_stopped(), "the daemon never finished draining");
    assert!(!path.exists(), "the socket file was left behind");
    daemon.join();
}

#[test]
fn version_skew_is_rejected_with_a_clear_message() {
    // A fake service announcing a stale cache generation: the client must refuse
    // before sending anything.
    let addr = temp_socket("skew");
    let listener = Listener::bind(&addr).expect("binds");
    let server = std::thread::spawn(move || {
        let mut conn = listener.accept().expect("accepts");
        let stale = format!(
            "{{\"server\":\"marpled v1\",\"protocol\":1,\"cache_version\":{},\"pid\":1}}",
            CACHE_VERSION - 1
        );
        write_frame(&mut conn, &stale).expect("writes");
        conn.flush().expect("flushes");
        // Hold the connection until the client hangs up.
        let _ = read_frame(&mut conn, 1024);
    });
    let err = RemoteClient::connect(&addr).expect_err("the client must refuse");
    assert!(
        err.contains("cache format mismatch"),
        "unclear rejection: {err}"
    );
    assert!(err.contains(&format!("v{CACHE_VERSION}")), "{err}");
    server.join().expect("fake server");
    if let Addr::Unix(path) = &addr {
        let _ = std::fs::remove_file(path);
    }
}
