//! End-to-end daemon tests: an in-process `marpled` on a temp socket, driven through
//! the real wire protocol.
//!
//! - the whole non-slow golden suite, verified remotely, must match
//!   `crates/engine/tests/golden_verdicts.txt` bit for bit — including a second
//!   client connecting mid-suite, whose interleaved requests must demultiplex
//!   correctly;
//! - torn, oversized and garbage frames must close the offending connection without
//!   poisoning the store (a well-behaved client afterwards still verifies fine);
//! - a graceful shutdown must drain in-flight jobs before the daemon stops;
//! - the fairness/admission layer: a `check` submitted mid-`check-all` is not starved,
//!   cancels and deadlines deliver partial runs whose delivered verdicts still match
//!   the snapshot, identical in-flight jobs are deduped across clients, over-cap
//!   connections get a structured `busy`, a reader that stops consuming its stream is
//!   disconnected, and N connect/disconnect cycles leave O(1) retained state.

use hat_daemon::frame::{read_frame, write_frame, MAX_RESPONSE_FRAME};
use hat_daemon::{
    Addr, Daemon, DaemonConfig, Envelope, Hello, Listener, RemoteClient, Request, Response, Stream,
    CACHE_VERSION,
};
use hat_engine::EngineConfig;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_socket(tag: &str) -> Addr {
    Addr::Unix(std::env::temp_dir().join(format!("hat-daemon-{tag}-{}.sock", std::process::id())))
}

fn spawn_daemon_with(
    tag: &str,
    jobs: usize,
    tweak: impl FnOnce(&mut DaemonConfig),
) -> hat_daemon::DaemonHandle {
    let mut config = DaemonConfig {
        addr: temp_socket(tag),
        engine: EngineConfig {
            jobs,
            ..EngineConfig::default()
        },
        quiet: true,
        ..DaemonConfig::default()
    };
    tweak(&mut config);
    Daemon::spawn(config).expect("the daemon starts")
}

fn spawn_daemon(tag: &str, jobs: usize) -> hat_daemon::DaemonHandle {
    spawn_daemon_with(tag, jobs, |_| {})
}

/// Asserts one streamed report against the golden snapshot. `slow` configurations
/// are absent from the snapshot by design and are skipped; any other unknown key
/// is a failure.
fn assert_golden(
    golden: &BTreeMap<String, (bool, bool)>,
    adt: &str,
    library: &str,
    r: &hat_core::MethodReport,
) {
    let key = format!("{adt}/{library}::{}", r.name);
    let Some((_, verdict)) = golden.get(&key) else {
        let bench = hat_suite::find(adt, library)
            .unwrap_or_else(|| panic!("{key} names no configuration at all"));
        assert!(bench.slow, "{key} is not in the golden snapshot");
        return;
    };
    assert_eq!(r.verified, *verdict, "{key} diverges from the snapshot");
}

/// Parses the golden snapshot into `ADT/Library::method -> (expected, verdict)`.
fn golden_verdicts() -> BTreeMap<String, (bool, bool)> {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../engine/tests/golden_verdicts.txt");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut verdicts = BTreeMap::new();
    for line in text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let mut parts = line.split_whitespace();
        let key = parts.next().expect("key column").to_string();
        let expected = parts
            .next()
            .and_then(|p| p.strip_prefix("expected="))
            .expect("expected column")
            == "true";
        let verdict = parts
            .next()
            .and_then(|p| p.strip_prefix("verdict="))
            .expect("verdict column")
            == "true";
        verdicts.insert(key, (expected, verdict));
    }
    verdicts
}

#[test]
fn remote_golden_suite_matches_the_snapshot_with_a_concurrent_client() {
    let daemon = spawn_daemon("golden", 2);
    let addr = daemon.addr().clone();
    let mut client = RemoteClient::connect(&addr).expect("client connects");
    assert_eq!(client.hello().cache_version, CACHE_VERSION);

    let golden = golden_verdicts();
    let configs: Vec<(String, String)> = hat_suite::all_benchmarks()
        .iter()
        .filter(|b| !b.slow)
        .map(|b| (b.adt.to_string(), b.library.to_string()))
        .collect();
    assert!(configs.len() > 10, "the suite lost configurations");

    // Half-way through the suite, a second client connects and runs its own check —
    // its verdicts must be correct and its frames must not bleed into ours.
    let halfway = configs.len() / 2;
    let mut remote: BTreeMap<String, (bool, bool)> = BTreeMap::new();
    let mut second: Option<std::thread::JoinHandle<()>> = None;
    for (i, (adt, library)) in configs.iter().enumerate() {
        if i == halfway {
            let addr = addr.clone();
            second = Some(std::thread::spawn(move || {
                let mut client = RemoteClient::connect(&addr).expect("second client connects");
                let uptime = client.ping().expect("ping answers");
                assert!(uptime >= 0.0);
                let run = client
                    .verify(
                        Request::Check {
                            adt: "Stack".into(),
                            library: "LinkedList".into(),
                        },
                        |_, _, _| {},
                    )
                    .expect("the concurrent check runs");
                assert_eq!(run.summary.benchmarks.len(), 1);
                let run = &run.summary.benchmarks[0];
                assert_eq!(
                    (run.adt.as_str(), run.library.as_str()),
                    ("Stack", "LinkedList")
                );
                assert!(
                    run.reports.iter().any(|r| r.verified),
                    "the concurrent client got crosstalk verdicts"
                );
            }));
        }
        let outcome = client
            .verify(
                Request::Check {
                    adt: adt.clone(),
                    library: library.clone(),
                },
                |_, _, _| {},
            )
            .unwrap_or_else(|e| panic!("remote check of {adt}/{library} failed: {e}"));
        let bench = hat_suite::find(adt, library).expect("configuration exists");
        assert_eq!(outcome.summary.benchmarks.len(), 1);
        let run = &outcome.summary.benchmarks[0];
        assert_eq!(outcome.jobs, bench.methods.len());
        assert_eq!(run.reports.len(), bench.methods.len(), "{adt}/{library}");
        for (method, report) in bench.methods.iter().zip(&run.reports) {
            // Reports are reassembled in method order, like a local summary.
            assert_eq!(report.name, method.sig.name, "{adt}/{library}");
            remote.insert(
                format!("{adt}/{library}::{}", method.sig.name),
                (method.expect_verified, report.verified),
            );
        }
    }
    second
        .expect("the suite passed the halfway point")
        .join()
        .expect("second client");

    assert_eq!(
        remote, golden,
        "remote verdicts diverge from the golden snapshot"
    );

    // Per-client accounting saw both connections.
    let status = client.cache_stats().expect("stats answer");
    assert!(status.clients.len() >= 2, "both clients are on record");
    assert!(status.jobs_completed >= golden.len() as u64);
    daemon.stop();
}

#[test]
fn malformed_frames_close_the_connection_without_poisoning_the_store() {
    let daemon = spawn_daemon("poison", 1);
    let addr = daemon.addr().clone();

    // Baseline: one good run, so the store has entries worth poisoning.
    let mut client = RemoteClient::connect(&addr).expect("client connects");
    let before = client
        .verify(
            Request::Check {
                adt: "Stack".into(),
                library: "LinkedList".into(),
            },
            |_, _, _| {},
        )
        .expect("baseline run");
    let entries_before = client.cache_stats().expect("stats").entries;
    assert!(entries_before > 0);

    let read_hello = |stream: &mut Stream| {
        let frame = read_frame(stream, MAX_RESPONSE_FRAME)
            .expect("handshake frame")
            .expect("server speaks first");
        Hello::parse(&frame).expect("a real handshake");
    };
    // Garbage bytes instead of a frame.
    let mut garbage = Stream::connect(&addr).expect("connects");
    read_hello(&mut garbage);
    garbage.write_all(b"!!! not a frame !!!\n").expect("writes");
    garbage.flush().expect("flushes");
    // The server aborts at the first bad byte, so the rest of the garbage line is
    // still unread when it closes — which surfaces at this end as either a clean
    // EOF or a connection reset, depending on scheduling. Both are "closed,
    // unanswered"; a response frame is the failure.
    match read_frame(&mut garbage, MAX_RESPONSE_FRAME) {
        Ok(None) => {}
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        Ok(Some(frame)) => panic!("the server must close on garbage, not answer `{frame}`"),
        Err(e) => panic!("expected a closed connection, got: {e}"),
    }
    // An oversized frame: the announced length exceeds the request cap.
    let mut oversized = Stream::connect(&addr).expect("connects");
    read_hello(&mut oversized);
    oversized.write_all(b"99999999\n").expect("writes");
    oversized.flush().expect("flushes");
    assert!(read_frame(&mut oversized, MAX_RESPONSE_FRAME)
        .expect("clean close")
        .is_none());
    // A torn frame: a length line promising more payload than ever arrives.
    let mut torn = Stream::connect(&addr).expect("connects");
    read_hello(&mut torn);
    torn.write_all(b"500\n{\"op\":").expect("writes");
    torn.flush().expect("flushes");
    torn.shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    assert!(read_frame(&mut torn, MAX_RESPONSE_FRAME)
        .expect("clean close")
        .is_none());
    // A well-framed payload that is not a valid request.
    let mut confused = Stream::connect(&addr).expect("connects");
    read_hello(&mut confused);
    write_frame(&mut confused, "{\"op\":\"launch-missiles\"}").expect("writes");
    confused.flush().expect("flushes");
    // The server answers a final error frame (id 0), then closes.
    let last = read_frame(&mut confused, MAX_RESPONSE_FRAME).expect("error frame");
    assert!(last.is_some_and(|f| f.contains("error")));
    assert!(read_frame(&mut confused, MAX_RESPONSE_FRAME)
        .expect("clean close")
        .is_none());

    // The store is untouched and the daemon still serves: the same check now runs
    // fully warm with identical verdicts.
    let mut client = RemoteClient::connect(&addr).expect("a fresh client connects");
    let after = client
        .verify(
            Request::Check {
                adt: "Stack".into(),
                library: "LinkedList".into(),
            },
            |_, _, _| {},
        )
        .expect("the daemon survived the abuse");
    let verdicts = |run: &hat_daemon::RemoteRun| -> Vec<bool> {
        run.summary.benchmarks[0]
            .reports
            .iter()
            .map(|r| r.verified)
            .collect()
    };
    assert_eq!(verdicts(&before), verdicts(&after));
    assert_eq!(after.summary.cache.misses, 0, "the warm store was poisoned");
    assert!(client.cache_stats().expect("stats").entries >= entries_before);
    daemon.stop();
}

#[test]
fn pipelined_requests_demultiplex_by_id() {
    let daemon = spawn_daemon("pipeline", 2);
    let mut client = RemoteClient::connect(daemon.addr()).expect("client connects");
    // Three requests in flight on one connection before reading anything.
    let check_a = client
        .send(Request::Check {
            adt: "Stack".into(),
            library: "LinkedList".into(),
        })
        .expect("send");
    let check_b = client
        .send(Request::Check {
            adt: "ConnectedGraph".into(),
            library: "Set".into(),
        })
        .expect("send");
    let ping = client.send(Request::Ping).expect("send");
    // Read them out of order: the ping answer first (it overtakes the running
    // batches), then batch B, then batch A — recv_for buffers whatever interleaves.
    match client.recv_for(ping).expect("pong arrives mid-stream") {
        Response::Pong { .. } => {}
        other => panic!("expected a pong, got {other:?}"),
    }
    let mut drain = |id: u64, adt: &str| {
        let mut reports = 0;
        loop {
            match client.recv_for(id).expect("response") {
                Response::Report { adt: got, .. } => {
                    assert_eq!(got, adt, "report routed to the wrong request");
                    reports += 1;
                }
                Response::Done { jobs, .. } => {
                    assert_eq!(jobs, reports, "jobs and streamed reports disagree");
                    break;
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        reports
    };
    assert!(drain(check_b, "ConnectedGraph") > 0);
    assert!(drain(check_a, "Stack") > 0);
    daemon.stop();
}

#[test]
fn graceful_shutdown_drains_in_flight_jobs() {
    let daemon = spawn_daemon("drain", 1);
    let addr = daemon.addr().clone();
    let mut client = RemoteClient::connect(&addr).expect("client connects");
    // Start a batch, then shut the daemon down from a second connection while the
    // batch is (at most just) underway.
    let id = client
        .send(Request::Check {
            adt: "ConnectedGraph".into(),
            library: "Set".into(),
        })
        .expect("send");
    let mut stopper = RemoteClient::connect(&addr).expect("stopper connects");
    stopper.shutdown(false).expect("bye");
    // The in-flight batch still completes: every report plus the done frame.
    let mut reports = 0;
    loop {
        match client.recv_for(id).expect("the drained run still streams") {
            Response::Report { .. } => reports += 1,
            Response::Done { jobs, .. } => {
                assert_eq!(jobs, reports);
                break;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    let expected = hat_suite::find("ConnectedGraph", "Set").expect("configuration exists");
    assert_eq!(reports, expected.methods.len());
    // The daemon finishes draining and removes its socket.
    let Addr::Unix(path) = &addr else {
        panic!("test daemon listens on a unix socket")
    };
    for _ in 0..200 {
        if daemon.is_stopped() && !path.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(daemon.is_stopped(), "the daemon never finished draining");
    assert!(!path.exists(), "the socket file was left behind");
    daemon.join();
}

#[test]
fn version_skew_is_rejected_with_a_clear_message() {
    // A fake service announcing a stale cache generation: the client must refuse
    // before sending anything.
    let addr = temp_socket("skew");
    let listener = Listener::bind(&addr).expect("binds");
    let server = std::thread::spawn(move || {
        let mut conn = listener.accept().expect("accepts");
        let stale = format!(
            "{{\"server\":\"marpled v2\",\"protocol\":2,\"cache_version\":{},\"pid\":1}}",
            CACHE_VERSION - 1
        );
        write_frame(&mut conn, &stale).expect("writes");
        conn.flush().expect("flushes");
        // Hold the connection until the client hangs up.
        let _ = read_frame(&mut conn, 1024);
    });
    let err = RemoteClient::connect(&addr).expect_err("the client must refuse");
    assert!(
        err.contains("cache format mismatch"),
        "unclear rejection: {err}"
    );
    assert!(err.contains(&format!("v{CACHE_VERSION}")), "{err}");
    server.join().expect("fake server");
    if let Addr::Unix(path) = &addr {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn a_check_submitted_mid_check_all_is_not_starved() {
    let daemon = spawn_daemon("fairness", 1);
    let golden = golden_verdicts();
    let mut client = RemoteClient::connect(daemon.addr()).expect("client connects");
    // One pipelined connection: the whole suite first, then a latency-sensitive check.
    let batch = client.send(Request::CheckAll).expect("send check-all");
    let probe = client
        .send(Request::Check {
            adt: "Stack".into(),
            library: "LinkedList".into(),
        })
        .expect("send probe");
    // Drain frames in ARRIVAL order and count how many batch reports pass before the
    // probe's `done`: the per-submission round-robin bounds that near the probe's own
    // job count, while a FIFO queue would put the entire batch first.
    let mut batch_before_probe = 0usize;
    let mut batch_reports = 0usize;
    let mut probe_reports = 0usize;
    let (mut batch_done, mut probe_done) = (false, false);
    while !batch_done || !probe_done {
        let envelope = client.recv().expect("the streams keep flowing");
        match envelope.response {
            Response::Report {
                adt,
                library,
                report,
                ..
            } => {
                assert_golden(&golden, &adt, &library, &report);
                if envelope.id == batch {
                    batch_reports += 1;
                    if !probe_done {
                        batch_before_probe += 1;
                    }
                } else {
                    assert_eq!(envelope.id, probe);
                    probe_reports += 1;
                }
            }
            Response::Done {
                jobs, cancelled, ..
            } => {
                if envelope.id == batch {
                    assert!(cancelled > 0, "the cancel landed after the whole batch ran");
                    assert_eq!(batch_reports + cancelled, jobs);
                    batch_done = true;
                } else {
                    assert_eq!(cancelled, 0, "the probe was never cancelled");
                    probe_done = true;
                    // The probe is through — the rest of the cold batch is pure
                    // contention with no further assertion value, so drop it.
                    client
                        .cancel(batch)
                        .expect("the batch cancel is acknowledged");
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    let probe_jobs = hat_suite::find("Stack", "LinkedList")
        .expect("configuration exists")
        .methods
        .len();
    assert_eq!(probe_reports, probe_jobs);
    let total_jobs: usize = hat_suite::all_benchmarks()
        .iter()
        .map(|b| b.methods.len())
        .sum();
    // The bound only means something if the batch dwarfs it.
    let bound = 2 * probe_jobs + 4;
    assert!(total_jobs > 2 * bound, "the suite shrank below usefulness");
    assert!(
        batch_before_probe <= bound,
        "the probe waited behind {batch_before_probe} of {total_jobs} batch reports — starved"
    );
    daemon.stop();
}

#[test]
fn cancel_mid_stream_delivers_a_partial_done_with_matching_verdicts() {
    let daemon = spawn_daemon("cancel", 1);
    let golden = golden_verdicts();
    let mut client = RemoteClient::connect(daemon.addr()).expect("client connects");
    let id = client.send(Request::CheckAll).expect("send");
    let mut received = 0usize;
    while received < 3 {
        match client.recv_for(id).expect("the stream flows") {
            Response::Report {
                adt,
                library,
                report,
                ..
            } => {
                assert_golden(&golden, &adt, &library, &report);
                received += 1;
            }
            Response::Done { .. } => panic!("the whole batch finished before the cancel"),
            other => panic!("unexpected response {other:?}"),
        }
    }
    client.cancel(id).expect("the cancel is acknowledged");
    loop {
        match client.recv_for(id).expect("the stream still terminates") {
            Response::Report {
                adt,
                library,
                report,
                ..
            } => {
                // In-flight jobs finish and still stream — with snapshot verdicts.
                assert_golden(&golden, &adt, &library, &report);
                received += 1;
            }
            Response::Done {
                jobs, cancelled, ..
            } => {
                assert!(cancelled > 0, "nothing was left to cancel");
                assert_eq!(
                    received + cancelled,
                    jobs,
                    "every job must be delivered or counted cancelled"
                );
                break;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    // Cancelling a finished run is a clean error, and the connection still serves.
    // (The run retires a few instructions after its `done` frame, so poll briefly.)
    let deadline = Instant::now() + Duration::from_secs(5);
    let err = loop {
        match client.cancel(id) {
            Err(e) => break e,
            Ok(()) => assert!(Instant::now() < deadline, "the finished run never retired"),
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(err.contains("no in-flight"), "{err}");
    client.ping().expect("the connection survives a cancel");
    daemon.stop();
}

#[test]
fn an_expired_deadline_cancels_the_rest_of_the_batch() {
    let daemon = spawn_daemon("deadline", 1);
    let golden = golden_verdicts();
    let mut client = RemoteClient::connect(daemon.addr()).expect("client connects");
    let run = client
        .verify_with_deadline(Request::CheckAll, Some(1), |_, _, _| {})
        .expect("a deadline-cancelled run still answers with a partial done");
    assert!(
        run.summary.was_cancelled(),
        "a 1ms deadline on a cold full suite must expire"
    );
    let received: usize = run.summary.benchmarks.iter().map(|b| b.reports.len()).sum();
    assert!(
        received < run.jobs,
        "everything completed despite the deadline"
    );
    assert_eq!(received + run.summary.cancelled, run.jobs);
    for bench in &run.summary.benchmarks {
        for report in &bench.reports {
            assert_golden(&golden, &bench.adt, &bench.library, report);
        }
    }
    daemon.stop();
}

#[test]
fn identical_in_flight_jobs_are_deduped_across_clients() {
    let daemon = spawn_daemon("dedup", 1);
    let golden = golden_verdicts();
    let addr = daemon.addr().clone();
    // Client A floods the single worker with the whole suite...
    let mut a = RemoteClient::connect(&addr).expect("client A connects");
    let batch = a.send(Request::CheckAll).expect("send");
    // ...and once A's jobs are demonstrably in flight, client B asks for a
    // configuration that batch already queued: B must ride A's jobs as a subscriber.
    let mut b = RemoteClient::connect(&addr).expect("client B connects");
    let deadline = Instant::now() + Duration::from_secs(30);
    while b.cache_stats().expect("stats").in_flight_jobs == 0 {
        assert!(
            Instant::now() < deadline,
            "A's batch never reached the engine"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let run = b
        .verify(
            Request::Check {
                adt: "ConnectedGraph".into(),
                library: "Set".into(),
            },
            |_, _, _| {},
        )
        .expect("B's check completes");
    for bench in &run.summary.benchmarks {
        for report in &bench.reports {
            assert_golden(&golden, &bench.adt, &bench.library, report);
        }
    }
    assert!(
        run.summary.dedup_hits > 0,
        "B's jobs were not deduped against A's queued batch"
    );
    // A's stream stayed intact through the dedup — cancel the rest of the cold
    // batch (it has served its purpose) and check the partial `done` arithmetic.
    a.cancel(batch).expect("A can cancel the rest of its batch");
    let mut reports = 0usize;
    loop {
        match a.recv_for(batch).expect("A's stream flows") {
            Response::Report {
                adt,
                library,
                report,
                ..
            } => {
                assert_golden(&golden, &adt, &library, &report);
                reports += 1;
            }
            Response::Done {
                jobs, cancelled, ..
            } => {
                assert!(cancelled > 0, "the cancel landed after the whole batch ran");
                assert_eq!(
                    reports + cancelled,
                    jobs,
                    "dedup must not miscount A's jobs"
                );
                break;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(b.cache_stats().expect("stats").dedup_hits > 0);
    daemon.stop();
}

#[test]
fn over_cap_connections_are_rejected_with_busy() {
    let daemon = spawn_daemon_with("cap", 1, |c| c.max_connections = 1);
    let addr = daemon.addr().clone();
    let mut first = RemoteClient::connect(&addr).expect("first client connects");
    first.ping().expect("the first client is served");
    // The second connection still gets a handshake, then a connection-level `busy`.
    let mut second = RemoteClient::connect(&addr).expect("the handshake still happens");
    let envelope = second.recv().expect("the busy frame arrives");
    assert_eq!(
        envelope.id, 0,
        "a connection-level rejection answers no request"
    );
    match envelope.response {
        Response::Busy { message } => {
            assert!(message.contains("connection limit"), "{message}")
        }
        other => panic!("expected busy, got {other:?}"),
    }
    drop(second);
    // The slot frees once the first client hangs up.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut replacement = loop {
        if let Ok(mut c) = RemoteClient::connect(&addr) {
            if c.ping().is_ok() {
                break c;
            }
        }
        assert!(Instant::now() < deadline, "the connection slot never freed");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        replacement.cache_stats().expect("stats").busy_rejections >= 1,
        "the rejection was not counted"
    );
    daemon.stop();
}

#[test]
fn requests_over_the_per_client_job_budget_answer_busy() {
    let daemon = spawn_daemon_with("budget", 1, |c| c.max_client_jobs = 1);
    let mut client = RemoteClient::connect(daemon.addr()).expect("client connects");
    let err = client
        .verify(
            Request::Check {
                adt: "Stack".into(),
                library: "LinkedList".into(),
            },
            |_, _, _| {},
        )
        .expect_err("a multi-method check cannot fit a 1-job budget");
    assert!(err.contains("per-client limit"), "{err}");
    // `busy` is an answer, not a disconnect.
    client
        .ping()
        .expect("the connection survives the rejection");
    daemon.stop();
}

#[test]
fn a_client_that_stops_reading_is_disconnected() {
    let daemon = spawn_daemon_with("stall", 2, |c| c.max_client_jobs = 0);
    let addr = daemon.addr().clone();
    // Warm one configuration so the flood below answers from the memo store at
    // full speed — the writer, not the workers, must be the bottleneck.
    RemoteClient::connect(&addr)
        .expect("warmup client connects")
        .verify(
            Request::Check {
                adt: "Stack".into(),
                library: "LinkedList".into(),
            },
            |_, _, _| {},
        )
        .expect("warmup check");
    // A raw connection pipelines the same warm check hundreds of times and never
    // reads a byte: the report frames far exceed the socket buffer plus the
    // bounded writer channel, so the writer stalls.
    let mut stalled = Stream::connect(&addr).expect("the stalled client connects");
    let hello = read_frame(&mut stalled, MAX_RESPONSE_FRAME)
        .expect("handshake frame")
        .expect("server speaks first");
    Hello::parse(&hello).expect("a real handshake");
    for id in 1..=300u64 {
        let payload = Envelope::new(
            id,
            Request::Check {
                adt: "Stack".into(),
                library: "LinkedList".into(),
            },
        )
        .to_json()
        .to_string();
        write_frame(&mut stalled, &payload).expect("writes");
    }
    stalled.flush().expect("flushes");
    // The daemon must sever the stalled connection instead of buffering forever.
    let mut probe = RemoteClient::connect(&addr).expect("probe connects");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = probe.cache_stats().expect("stats");
        if status.active_connections == 1 {
            break; // only the probe remains
        }
        assert!(
            Instant::now() < deadline,
            "the stalled reader was never disconnected"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    // The daemon still serves, warm and verdict-correct.
    let golden = golden_verdicts();
    let run = probe
        .verify(
            Request::Check {
                adt: "Stack".into(),
                library: "LinkedList".into(),
            },
            |_, _, _| {},
        )
        .expect("the daemon survived the stalled reader");
    for bench in &run.summary.benchmarks {
        for report in &bench.reports {
            assert_golden(&golden, &bench.adt, &bench.library, report);
        }
    }
    daemon.stop();
}

#[test]
fn generated_corpus_round_trips_through_the_daemon() {
    // A corpus slice sent by *name only*: the daemon regenerates each configuration
    // from its `s<seed>-i<index>` recipe via the `hat_gen::find` fallback, verifies it
    // remotely, and every streamed verdict must equal the constructed one — i.e. the
    // wire adds nothing and loses nothing relative to a local run of the same slice.
    let daemon = spawn_daemon("gen", 2);
    let addr = daemon.addr().clone();
    let mut client = RemoteClient::connect(&addr).expect("client connects");

    let specs = hat_gen::corpus_specs();
    let slice = &specs[..12];
    fn check_remote(client: &mut RemoteClient, spec: &hat_gen::GenSpec) {
        let name = spec.library_name();
        let bench = hat_gen::find("gen", &name)
            .unwrap_or_else(|| panic!("gen/{name} does not regenerate from its recipe"));
        let run = client
            .verify(
                Request::Check {
                    adt: "gen".into(),
                    library: name.clone(),
                },
                |_, _, _| {},
            )
            .unwrap_or_else(|e| panic!("remote check of gen/{name} failed: {e}"));
        assert_eq!(run.summary.benchmarks.len(), 1, "gen/{name}");
        let reports = &run.summary.benchmarks[0].reports;
        for (method, report) in bench.methods.iter().zip(reports) {
            assert_eq!(
                report.name, method.sig.name,
                "gen/{name}: report order drifted"
            );
        }
        let bad = hat_gen::fuzz::disagreements_in("remote", &bench, reports);
        assert!(
            bad.is_empty(),
            "gen/{name} diverges over the wire:\n{}",
            bad.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    // Half-way through, a second client works a disjoint slice concurrently — its
    // verdicts must be just as exact, with no crosstalk between the streams.
    let mut second: Option<std::thread::JoinHandle<()>> = None;
    for (i, spec) in slice.iter().enumerate() {
        if i == slice.len() / 2 {
            let addr = addr.clone();
            second = Some(std::thread::spawn(move || {
                let mut client = RemoteClient::connect(&addr).expect("second client connects");
                for spec in &hat_gen::corpus_specs()[12..18] {
                    check_remote(&mut client, spec);
                }
            }));
        }
        check_remote(&mut client, spec);
    }
    second
        .expect("the slice passed the halfway point")
        .join()
        .expect("second client");
    daemon.stop();
}

#[test]
fn connect_disconnect_cycles_leave_bounded_retained_state() {
    let daemon = spawn_daemon("retention", 1);
    let addr = daemon.addr().clone();
    const CYCLES: usize = 40;
    for _ in 0..CYCLES {
        let mut c = RemoteClient::connect(&addr).expect("cycle client connects");
        c.ping().expect("cycle client pings");
    }
    let mut probe = RemoteClient::connect(&addr).expect("probe connects");
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        let status = probe.cache_stats().expect("stats");
        if status.closed_connections >= CYCLES as u64 && status.active_connections == 1 {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "closed handlers were never reaped"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    // O(1) retained state: a bounded window of closed records plus one aggregate row,
    // not one record per connection ever accepted.
    assert!(
        status.clients.len() <= 18,
        "retained client records are not bounded: {} records after {CYCLES} cycles",
        status.clients.len()
    );
    // The aggregate row keeps the lifetime totals truthful.
    let aggregate = status
        .clients
        .iter()
        .find(|c| c.client == 0)
        .expect("an aggregate row exists once the window overflows");
    let accounted: u64 = aggregate.requests
        + status
            .clients
            .iter()
            .filter(|c| c.client != 0)
            .map(|c| c.requests)
            .sum::<u64>();
    assert_eq!(
        accounted, status.requests_served,
        "requests leaked out of the per-client accounting"
    );
    daemon.stop();
}
