//! The `marpled v2` wire protocol: typed requests/responses over [`crate::frame`]
//! frames, plus the connect-time handshake.
//!
//! ## Handshake
//!
//! On connect the server speaks first, announcing one [`Hello`] frame:
//! `{"server":"marpled v2","protocol":2,"cache_version":5,"pid":…}`. The client checks
//! all three identity fields before sending anything; a mismatch (an old daemon, a
//! different cache format generation, or a non-marpled service on the address) is
//! rejected client-side with a message naming both sides, so version skew fails in one
//! clear line instead of as garbled frames.
//!
//! ## Requests and responses
//!
//! After the handshake the client sends [`Request`] frames, each wrapped in an
//! [`Envelope`] carrying a **client-assigned request id**. Responses echo the id, which
//! is what lets one connection pipeline several requests (`check-all` streaming while a
//! `cache-stats` answers in between) and demultiplex the interleaved replies. A
//! verification request answers with zero or more `report` frames (one per completed
//! (benchmark, method) job, in completion order) terminated by exactly one `done`
//! frame; every other request answers with exactly one frame.
//!
//! A verification envelope may carry a `deadline_ms` budget: once it elapses the
//! server cancels the run's queued jobs and the `done` frame reports the drop in its
//! `cancelled` counter. A `cancel` request does the same on demand for a named
//! in-flight request id. When the daemon is at its connection or per-client job
//! limits it answers with a `busy` frame instead of queueing unboundedly; over-cap
//! connections receive `busy` with id 0 right after the handshake and are closed.
//!
//! All numbers that count things are JSON integers; all durations travel as seconds in
//! a JSON float, written with Rust's shortest-round-trip formatting so the client
//! reconstructs bit-identical values and renders reports through the very same code
//! path as a local run.

use crate::json::{obj, Json};
use hat_core::{CheckStats, MethodReport};
use hat_engine::{CacheStatsSnapshot, CompactionReport};
use std::time::Duration;

/// The server's self-identification. Bump the version suffix on breaking protocol
/// changes (v2: cancellation, deadlines, busy admission control, fairness counters).
pub const SERVER_NAME: &str = "marpled v2";

/// Frame-level protocol generation.
pub const PROTOCOL_VERSION: u64 = 2;

/// The disk-cache format generation the daemon serves (`hat-engine-cache v6`). Part of
/// the handshake so a client built against a different store generation refuses early.
pub const CACHE_VERSION: u64 = 6;

/// The connect-time server announcement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Server name and protocol family (`marpled v1`).
    pub server: String,
    /// Frame protocol generation.
    pub protocol: u64,
    /// Cache format generation.
    pub cache_version: u64,
    /// The daemon's PID (diagnostics; `marple daemon status` prints it).
    pub pid: u32,
}

impl Hello {
    /// The announcement for this build.
    pub fn current() -> Self {
        Hello {
            server: SERVER_NAME.to_string(),
            protocol: PROTOCOL_VERSION,
            cache_version: CACHE_VERSION,
            pid: std::process::id(),
        }
    }

    /// Serialises the announcement payload.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("server", Json::Str(self.server.clone())),
            ("protocol", Json::Int(self.protocol as i64)),
            ("cache_version", Json::Int(self.cache_version as i64)),
            ("pid", Json::Int(i64::from(self.pid))),
        ])
    }

    /// Parses an announcement payload.
    pub fn parse(payload: &str) -> Result<Hello, String> {
        let v = Json::parse(payload).map_err(|e| format!("unreadable handshake: {e}"))?;
        Ok(Hello {
            server: v
                .str_field("server")
                .ok_or("handshake lacks a `server` field")?
                .to_string(),
            protocol: v
                .u64_field("protocol")
                .ok_or("handshake lacks a `protocol` field")?,
            cache_version: v
                .u64_field("cache_version")
                .ok_or("handshake lacks a `cache_version` field")?,
            pid: v.u64_field("pid").unwrap_or(0) as u32,
        })
    }

    /// Checks this announcement against what the client was built for. `Err` carries
    /// the full one-line rejection message.
    pub fn check_compatible(&self) -> Result<(), String> {
        if self.server != SERVER_NAME {
            return Err(format!(
                "the service identifies as `{}`, but this client speaks `{SERVER_NAME}` — \
                 is the address really a marpled daemon?",
                self.server
            ));
        }
        if self.protocol != PROTOCOL_VERSION {
            return Err(format!(
                "protocol version mismatch: the daemon speaks v{}, this client v{PROTOCOL_VERSION} \
                 — restart the daemon from the same build as the client",
                self.protocol
            ));
        }
        if self.cache_version != CACHE_VERSION {
            return Err(format!(
                "cache format mismatch: the daemon serves a v{} store, this client expects v{CACHE_VERSION} \
                 — restart the daemon from the same build as the client",
                self.cache_version
            ));
        }
        Ok(())
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with `pong`.
    Ping,
    /// Verify one configuration; answered with `report*` then `done`.
    Check {
        /// ADT name (case-insensitive, as in `marple check`).
        adt: String,
        /// Backing library name.
        library: String,
    },
    /// Verify the whole non-slow suite; answered with `report*` then `done`.
    CheckAll,
    /// Server-side `check-all` without report streaming — pre-warms the store and
    /// answers with a single `done`.
    Warmup,
    /// Daemon and store statistics; answered with `stats`.
    CacheStats,
    /// Compact the disk log if crowded with dead records; answered with `compacted`.
    CacheCompact,
    /// Drop the queued jobs of an in-flight verification request on this connection
    /// (its `target` is the request id); jobs already on a worker finish. Answered
    /// with `cancelled`; the target's stream still terminates with its own `done`.
    Cancel {
        /// Request id of the verification stream to cancel.
        target: u64,
    },
    /// Graceful shutdown: drain in-flight jobs, flush/compact, release the lock.
    /// Answered with `bye` before the daemon exits. With `now`, queued jobs of every
    /// in-flight request are cancelled first and only running jobs are drained.
    Shutdown {
        /// Cancel queued work instead of draining it.
        now: bool,
    },
}

impl Request {
    /// The wire name of the operation.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Check { .. } => "check",
            Request::CheckAll => "check-all",
            Request::Warmup => "warmup",
            Request::CacheStats => "cache-stats",
            Request::CacheCompact => "cache-compact",
            Request::Cancel { .. } => "cancel",
            Request::Shutdown { .. } => "shutdown",
        }
    }
}

/// A request plus its client-assigned id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Client-assigned id, echoed by every response to this request.
    pub id: u64,
    /// The operation.
    pub request: Request,
    /// Optional budget for verification requests: once it elapses, the server cancels
    /// the run's queued jobs and finishes with a partial `done`. Ignored for
    /// non-verification operations.
    pub deadline_ms: Option<u64>,
}

impl Envelope {
    /// Wraps a request with no deadline.
    pub fn new(id: u64, request: Request) -> Envelope {
        Envelope {
            id,
            request,
            deadline_ms: None,
        }
    }

    /// Serialises the request payload.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id", Json::Int(self.id as i64)),
            ("op", Json::Str(self.request.op().to_string())),
        ];
        match &self.request {
            Request::Check { adt, library } => {
                fields.push(("adt", Json::Str(adt.clone())));
                fields.push(("library", Json::Str(library.clone())));
            }
            Request::Cancel { target } => {
                fields.push(("target", Json::Int(*target as i64)));
            }
            Request::Shutdown { now } => {
                fields.push(("now", Json::Bool(*now)));
            }
            _ => {}
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms", Json::Int(ms as i64)));
        }
        obj(fields)
    }

    /// Parses a request payload.
    pub fn parse(payload: &str) -> Result<Envelope, String> {
        let v = Json::parse(payload).map_err(|e| format!("unreadable request: {e}"))?;
        let id = v.u64_field("id").ok_or("request lacks an `id` field")?;
        let op = v.str_field("op").ok_or("request lacks an `op` field")?;
        let request = match op {
            "ping" => Request::Ping,
            "check" => Request::Check {
                adt: v
                    .str_field("adt")
                    .ok_or("`check` lacks an `adt` field")?
                    .to_string(),
                library: v
                    .str_field("library")
                    .ok_or("`check` lacks a `library` field")?
                    .to_string(),
            },
            "check-all" => Request::CheckAll,
            "warmup" => Request::Warmup,
            "cache-stats" => Request::CacheStats,
            "cache-compact" => Request::CacheCompact,
            "cancel" => Request::Cancel {
                target: v
                    .u64_field("target")
                    .ok_or("`cancel` lacks a `target` field")?,
            },
            "shutdown" => Request::Shutdown {
                now: v.bool_field("now").unwrap_or(false),
            },
            other => return Err(format!("unknown operation `{other}`")),
        };
        Ok(Envelope {
            id,
            request,
            deadline_ms: v.u64_field("deadline_ms"),
        })
    }
}

/// Statistics of one client connection, as reported by `cache-stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientStats {
    /// Server-assigned connection number (1-based, in accept order).
    pub client: u64,
    /// Seconds since the connection was accepted (or its total lifetime, once closed).
    pub connected_secs: f64,
    /// Requests this client has issued.
    pub requests: u64,
    /// Report frames streamed to this client.
    pub reports: u64,
    /// Solver-cache hits its verification requests observed.
    pub hits: usize,
    /// Solver-cache misses (queries its requests pushed to a solver).
    pub misses: usize,
    /// Whether the connection is still open.
    pub active: bool,
}

/// A full daemon status snapshot, as reported by `cache-stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonStatus {
    /// The address the daemon listens on (in `Addr` display syntax).
    pub addr: String,
    /// The daemon's PID.
    pub pid: u32,
    /// Seconds since the daemon began accepting connections.
    pub uptime_secs: f64,
    /// Worker threads in the verification pool.
    pub workers: usize,
    /// Total requests served across all clients.
    pub requests_served: u64,
    /// Total (benchmark, method) verification jobs completed.
    pub jobs_completed: u64,
    /// Verification jobs currently submitted and not yet completed or cancelled.
    pub in_flight_jobs: u64,
    /// Lifetime count of jobs answered by subscribing to an identical in-flight job
    /// of a concurrent request instead of executing again.
    pub dedup_hits: u64,
    /// Verification requests that were cancelled (client `cancel`, deadline expiry,
    /// or `shutdown --now`).
    pub runs_cancelled: u64,
    /// Queued jobs dropped by those cancellations.
    pub jobs_cancelled: u64,
    /// Connections turned away (or requests refused) by the admission limits.
    pub busy_rejections: u64,
    /// Median queue wait of recently completed jobs, in milliseconds.
    pub queue_wait_p50_ms: f64,
    /// 95th-percentile queue wait of recently completed jobs, in milliseconds.
    pub queue_wait_p95_ms: f64,
    /// The `--max-connections` cap (0 = unlimited).
    pub max_connections: usize,
    /// Connections currently open.
    pub active_connections: u64,
    /// Total connections closed over the daemon's lifetime. Only a bounded window of
    /// their per-client records is retained in `clients`; the rest are aggregated.
    pub closed_connections: u64,
    /// Lifetime store counters (hits/misses/disk-loaded/… since startup).
    pub cache: CacheStatsSnapshot,
    /// Entries currently resident in the shared store.
    pub entries: usize,
    /// Whether the store is running degraded (in-memory, lock not held).
    pub degraded: bool,
    /// The disk log path, when the store is persistent.
    pub cache_path: Option<String>,
    /// Per-client statistics: every open connection plus a bounded window of recently
    /// closed ones, newest connection last.
    pub clients: Vec<ClientStats>,
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to `ping`.
    Pong {
        /// Seconds the daemon has been up.
        uptime_secs: f64,
    },
    /// One completed verification job of a `check`/`check-all` request.
    Report {
        /// Benchmark index within the request's batch.
        bench: usize,
        /// Method index within that benchmark.
        method: usize,
        /// ADT name of the benchmark.
        adt: String,
        /// Backing library name of the benchmark.
        library: String,
        /// The policy description (for the client's per-benchmark header).
        policy: String,
        /// Whether the suite expects this method to verify.
        expect_verified: bool,
        /// The report itself, counters and all (boxed: this variant dwarfs the others).
        report: Box<MethodReport>,
    },
    /// Terminates a `check`/`check-all`/`warmup` stream.
    Done {
        /// Wall-clock time of the batch, server-side.
        wall: Duration,
        /// Cache-counter deltas of this batch.
        cache: CacheStatsSnapshot,
        /// Number of jobs the batch submitted (completed + cancelled).
        jobs: usize,
        /// Jobs dropped by cancellation (client `cancel`, deadline expiry, or
        /// `shutdown --now`); nonzero marks the stream as partial.
        cancelled: usize,
        /// Jobs answered by subscribing to an identical concurrent job.
        dedup_hits: usize,
        /// Median queue wait of this batch's completed jobs.
        queue_wait_p50: Duration,
        /// 95th-percentile queue wait of this batch's completed jobs.
        queue_wait_p95: Duration,
    },
    /// Answer to `cache-stats`.
    Stats(Box<DaemonStatus>),
    /// Answer to `cache-compact`; `None` when the log was not crowded enough (or the
    /// store is in-memory).
    Compacted(Option<CompactionReport>),
    /// Acknowledges a `cancel` request: the target's queued jobs were dropped (its
    /// stream still ends with its own partial `done`).
    Cancelled {
        /// The request id that was cancelled.
        target: u64,
    },
    /// The daemon refused the work because an admission limit was hit (`--max-
    /// connections` or the per-client queued-job cap). Sent with id 0 right after the
    /// handshake when the connection itself is over cap, in which case the connection
    /// closes after this frame.
    Busy {
        /// Which limit was hit, user-facing.
        message: String,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Answer to `shutdown`, sent just before the daemon stops accepting work.
    Bye,
}

/// A response plus the id of the request it answers.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseEnvelope {
    /// Echo of the client-assigned request id.
    pub id: u64,
    /// The payload.
    pub response: Response,
}

fn secs(d: Duration) -> Json {
    Json::Float(d.as_secs_f64())
}

fn duration_field(v: &Json, key: &str) -> Result<Duration, String> {
    let secs = v
        .f64_field(key)
        .ok_or_else(|| format!("missing duration field `{key}`"))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("field `{key}` is not a valid duration"));
    }
    Ok(Duration::from_secs_f64(secs))
}

fn usize_field(v: &Json, key: &str) -> Result<usize, String> {
    v.usize_field(key)
        .ok_or_else(|| format!("missing counter field `{key}`"))
}

/// Serialises every [`CheckStats`] counter (durations as float seconds).
pub fn stats_to_json(s: &CheckStats) -> Json {
    obj(vec![
        ("sat_queries", Json::Int(s.sat_queries as i64)),
        ("sat_time", secs(s.sat_time)),
        ("fa_inclusions", Json::Int(s.fa_inclusions as i64)),
        ("avg_fa_size", Json::Float(s.avg_fa_size)),
        ("fa_time", secs(s.fa_time)),
        ("total_time", secs(s.total_time)),
        (
            "assumed_preconditions",
            Json::Int(s.assumed_preconditions as i64),
        ),
        ("cache_hits", Json::Int(s.cache_hits as i64)),
        ("cache_misses", Json::Int(s.cache_misses as i64)),
        ("enum_queries", Json::Int(s.enum_queries as i64)),
        ("pruned_subtrees", Json::Int(s.pruned_subtrees as i64)),
        ("minterm_memo_hits", Json::Int(s.minterm_memo_hits as i64)),
        (
            "inclusion_memo_hits",
            Json::Int(s.inclusion_memo_hits as i64),
        ),
        ("dfa_states", Json::Int(s.dfa_states as i64)),
        ("dfa_transitions", Json::Int(s.dfa_transitions as i64)),
        ("alphabet_pruned", Json::Int(s.alphabet_pruned as i64)),
        (
            "transition_memo_hits",
            Json::Int(s.transition_memo_hits as i64),
        ),
        ("product_states", Json::Int(s.product_states as i64)),
        ("shape_memo_hits", Json::Int(s.shape_memo_hits as i64)),
        ("subsumption_checks", Json::Int(s.subsumption_checks as i64)),
        ("subsumed_pairs", Json::Int(s.subsumed_pairs as i64)),
        (
            "simulation_memo_hits",
            Json::Int(s.simulation_memo_hits as i64),
        ),
        ("shared_tier_locks", Json::Int(s.shared_tier_locks as i64)),
    ])
}

/// Parses a [`CheckStats`] object.
pub fn stats_from_json(v: &Json) -> Result<CheckStats, String> {
    Ok(CheckStats {
        sat_queries: usize_field(v, "sat_queries")?,
        sat_time: duration_field(v, "sat_time")?,
        fa_inclusions: usize_field(v, "fa_inclusions")?,
        avg_fa_size: v
            .f64_field("avg_fa_size")
            .ok_or("missing field `avg_fa_size`")?,
        fa_time: duration_field(v, "fa_time")?,
        total_time: duration_field(v, "total_time")?,
        assumed_preconditions: usize_field(v, "assumed_preconditions")?,
        cache_hits: usize_field(v, "cache_hits")?,
        cache_misses: usize_field(v, "cache_misses")?,
        enum_queries: usize_field(v, "enum_queries")?,
        pruned_subtrees: usize_field(v, "pruned_subtrees")?,
        minterm_memo_hits: usize_field(v, "minterm_memo_hits")?,
        inclusion_memo_hits: usize_field(v, "inclusion_memo_hits")?,
        dfa_states: usize_field(v, "dfa_states")?,
        dfa_transitions: usize_field(v, "dfa_transitions")?,
        alphabet_pruned: usize_field(v, "alphabet_pruned")?,
        transition_memo_hits: usize_field(v, "transition_memo_hits")?,
        product_states: usize_field(v, "product_states")?,
        shape_memo_hits: usize_field(v, "shape_memo_hits")?,
        // Absent when the daemon predates subsumption pruning: zero, not an error,
        // so a newer client still reads an older daemon's reports.
        subsumption_checks: v.usize_field("subsumption_checks").unwrap_or(0),
        subsumed_pairs: v.usize_field("subsumed_pairs").unwrap_or(0),
        simulation_memo_hits: v.usize_field("simulation_memo_hits").unwrap_or(0),
        shared_tier_locks: usize_field(v, "shared_tier_locks")?,
    })
}

/// Serialises a cache-counter snapshot (or delta).
pub fn snapshot_to_json(s: &CacheStatsSnapshot) -> Json {
    obj(vec![
        ("hits", Json::Int(s.hits as i64)),
        ("misses", Json::Int(s.misses as i64)),
        ("disk_loaded", Json::Int(s.disk_loaded as i64)),
        ("stale", Json::Int(s.stale as i64)),
        ("minterm_hits", Json::Int(s.minterm_hits as i64)),
        ("minterm_misses", Json::Int(s.minterm_misses as i64)),
        ("transition_hits", Json::Int(s.transition_hits as i64)),
        ("transition_misses", Json::Int(s.transition_misses as i64)),
        ("subsumption_hits", Json::Int(s.subsumption_hits as i64)),
        ("subsumption_misses", Json::Int(s.subsumption_misses as i64)),
        ("lock_acquisitions", Json::Int(s.lock_acquisitions as i64)),
        (
            "disk_lock_acquisitions",
            Json::Int(s.disk_lock_acquisitions as i64),
        ),
    ])
}

/// Parses a cache-counter snapshot.
pub fn snapshot_from_json(v: &Json) -> Result<CacheStatsSnapshot, String> {
    Ok(CacheStatsSnapshot {
        hits: usize_field(v, "hits")?,
        misses: usize_field(v, "misses")?,
        disk_loaded: usize_field(v, "disk_loaded")?,
        stale: usize_field(v, "stale")?,
        minterm_hits: usize_field(v, "minterm_hits")?,
        minterm_misses: usize_field(v, "minterm_misses")?,
        transition_hits: usize_field(v, "transition_hits")?,
        transition_misses: usize_field(v, "transition_misses")?,
        // Absent in replies from daemons predating the dedicated `U` counters: zero.
        subsumption_hits: v.usize_field("subsumption_hits").unwrap_or(0),
        subsumption_misses: v.usize_field("subsumption_misses").unwrap_or(0),
        lock_acquisitions: usize_field(v, "lock_acquisitions")?,
        // Absent in replies from pre-v6 daemons: tolerate rather than refuse.
        disk_lock_acquisitions: usize_field(v, "disk_lock_acquisitions").unwrap_or(0),
    })
}

impl ResponseEnvelope {
    /// Serialises the response payload.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("id", Json::Int(self.id as i64))];
        match &self.response {
            Response::Pong { uptime_secs } => {
                fields.push(("type", Json::Str("pong".into())));
                fields.push(("uptime_secs", Json::Float(*uptime_secs)));
            }
            Response::Report {
                bench,
                method,
                adt,
                library,
                policy,
                expect_verified,
                report,
            } => {
                fields.push(("type", Json::Str("report".into())));
                fields.push(("bench", Json::Int(*bench as i64)));
                fields.push(("method", Json::Int(*method as i64)));
                fields.push(("adt", Json::Str(adt.clone())));
                fields.push(("library", Json::Str(library.clone())));
                fields.push(("policy", Json::Str(policy.clone())));
                fields.push(("expect_verified", Json::Bool(*expect_verified)));
                fields.push(("name", Json::Str(report.name.clone())));
                fields.push(("verified", Json::Bool(report.verified)));
                fields.push((
                    "failures",
                    Json::Arr(
                        report
                            .failures
                            .iter()
                            .map(|f| Json::Str(f.clone()))
                            .collect(),
                    ),
                ));
                fields.push(("branches", Json::Int(report.branches as i64)));
                fields.push(("apps", Json::Int(report.apps as i64)));
                fields.push(("stats", stats_to_json(&report.stats)));
            }
            Response::Done {
                wall,
                cache,
                jobs,
                cancelled,
                dedup_hits,
                queue_wait_p50,
                queue_wait_p95,
            } => {
                fields.push(("type", Json::Str("done".into())));
                fields.push(("wall", secs(*wall)));
                fields.push(("jobs", Json::Int(*jobs as i64)));
                fields.push(("cancelled", Json::Int(*cancelled as i64)));
                fields.push(("dedup_hits", Json::Int(*dedup_hits as i64)));
                fields.push(("queue_wait_p50", secs(*queue_wait_p50)));
                fields.push(("queue_wait_p95", secs(*queue_wait_p95)));
                fields.push(("cache", snapshot_to_json(cache)));
            }
            Response::Stats(status) => {
                fields.push(("type", Json::Str("stats".into())));
                fields.push(("addr", Json::Str(status.addr.clone())));
                fields.push(("pid", Json::Int(i64::from(status.pid))));
                fields.push(("uptime_secs", Json::Float(status.uptime_secs)));
                fields.push(("workers", Json::Int(status.workers as i64)));
                fields.push(("requests_served", Json::Int(status.requests_served as i64)));
                fields.push(("jobs_completed", Json::Int(status.jobs_completed as i64)));
                fields.push(("in_flight_jobs", Json::Int(status.in_flight_jobs as i64)));
                fields.push(("dedup_hits", Json::Int(status.dedup_hits as i64)));
                fields.push(("runs_cancelled", Json::Int(status.runs_cancelled as i64)));
                fields.push(("jobs_cancelled", Json::Int(status.jobs_cancelled as i64)));
                fields.push(("busy_rejections", Json::Int(status.busy_rejections as i64)));
                fields.push(("queue_wait_p50_ms", Json::Float(status.queue_wait_p50_ms)));
                fields.push(("queue_wait_p95_ms", Json::Float(status.queue_wait_p95_ms)));
                fields.push(("max_connections", Json::Int(status.max_connections as i64)));
                fields.push((
                    "active_connections",
                    Json::Int(status.active_connections as i64),
                ));
                fields.push((
                    "closed_connections",
                    Json::Int(status.closed_connections as i64),
                ));
                fields.push(("cache", snapshot_to_json(&status.cache)));
                fields.push(("entries", Json::Int(status.entries as i64)));
                fields.push(("degraded", Json::Bool(status.degraded)));
                fields.push((
                    "cache_path",
                    match &status.cache_path {
                        Some(p) => Json::Str(p.clone()),
                        None => Json::Null,
                    },
                ));
                fields.push((
                    "clients",
                    Json::Arr(
                        status
                            .clients
                            .iter()
                            .map(|c| {
                                obj(vec![
                                    ("client", Json::Int(c.client as i64)),
                                    ("connected_secs", Json::Float(c.connected_secs)),
                                    ("requests", Json::Int(c.requests as i64)),
                                    ("reports", Json::Int(c.reports as i64)),
                                    ("hits", Json::Int(c.hits as i64)),
                                    ("misses", Json::Int(c.misses as i64)),
                                    ("active", Json::Bool(c.active)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Response::Compacted(report) => {
                fields.push(("type", Json::Str("compacted".into())));
                match report {
                    Some(r) => {
                        fields.push(("bytes_before", Json::Int(r.bytes_before as i64)));
                        fields.push(("bytes_after", Json::Int(r.bytes_after as i64)));
                        fields.push(("records_before", Json::Int(r.records_before as i64)));
                        fields.push(("records_after", Json::Int(r.records_after as i64)));
                    }
                    None => fields.push(("skipped", Json::Bool(true))),
                }
            }
            Response::Cancelled { target } => {
                fields.push(("type", Json::Str("cancelled".into())));
                fields.push(("target", Json::Int(*target as i64)));
            }
            Response::Busy { message } => {
                fields.push(("type", Json::Str("busy".into())));
                fields.push(("message", Json::Str(message.clone())));
            }
            Response::Error { message } => {
                fields.push(("type", Json::Str("error".into())));
                fields.push(("message", Json::Str(message.clone())));
            }
            Response::Bye => {
                fields.push(("type", Json::Str("bye".into())));
            }
        }
        obj(fields)
    }

    /// Parses a response payload.
    pub fn parse(payload: &str) -> Result<ResponseEnvelope, String> {
        let v = Json::parse(payload).map_err(|e| format!("unreadable response: {e}"))?;
        let id = v.u64_field("id").ok_or("response lacks an `id` field")?;
        let kind = v.str_field("type").ok_or("response lacks a `type` field")?;
        let response = match kind {
            "pong" => Response::Pong {
                uptime_secs: v
                    .f64_field("uptime_secs")
                    .ok_or("pong lacks `uptime_secs`")?,
            },
            "report" => Response::Report {
                bench: usize_field(&v, "bench")?,
                method: usize_field(&v, "method")?,
                adt: v.str_field("adt").ok_or("report lacks `adt`")?.to_string(),
                library: v
                    .str_field("library")
                    .ok_or("report lacks `library`")?
                    .to_string(),
                policy: v
                    .str_field("policy")
                    .ok_or("report lacks `policy`")?
                    .to_string(),
                expect_verified: v
                    .bool_field("expect_verified")
                    .ok_or("report lacks `expect_verified`")?,
                report: Box::new(MethodReport {
                    name: v
                        .str_field("name")
                        .ok_or("report lacks `name`")?
                        .to_string(),
                    verified: v.bool_field("verified").ok_or("report lacks `verified`")?,
                    failures: v
                        .get("failures")
                        .and_then(Json::as_arr)
                        .ok_or("report lacks `failures`")?
                        .iter()
                        .map(|f| {
                            f.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "non-string failure entry".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    stats: stats_from_json(v.get("stats").ok_or("report lacks `stats`")?)?,
                    branches: usize_field(&v, "branches")?,
                    apps: usize_field(&v, "apps")?,
                }),
            },
            "done" => Response::Done {
                wall: duration_field(&v, "wall")?,
                jobs: usize_field(&v, "jobs")?,
                cancelled: usize_field(&v, "cancelled")?,
                dedup_hits: usize_field(&v, "dedup_hits")?,
                queue_wait_p50: duration_field(&v, "queue_wait_p50")?,
                queue_wait_p95: duration_field(&v, "queue_wait_p95")?,
                cache: snapshot_from_json(v.get("cache").ok_or("done lacks `cache`")?)?,
            },
            "stats" => Response::Stats(Box::new(DaemonStatus {
                addr: v.str_field("addr").ok_or("stats lacks `addr`")?.to_string(),
                pid: v.u64_field("pid").unwrap_or(0) as u32,
                uptime_secs: v
                    .f64_field("uptime_secs")
                    .ok_or("stats lacks `uptime_secs`")?,
                workers: usize_field(&v, "workers")?,
                requests_served: v
                    .u64_field("requests_served")
                    .ok_or("stats lacks `requests_served`")?,
                jobs_completed: v
                    .u64_field("jobs_completed")
                    .ok_or("stats lacks `jobs_completed`")?,
                in_flight_jobs: v
                    .u64_field("in_flight_jobs")
                    .ok_or("stats lacks `in_flight_jobs`")?,
                dedup_hits: v
                    .u64_field("dedup_hits")
                    .ok_or("stats lacks `dedup_hits`")?,
                runs_cancelled: v
                    .u64_field("runs_cancelled")
                    .ok_or("stats lacks `runs_cancelled`")?,
                jobs_cancelled: v
                    .u64_field("jobs_cancelled")
                    .ok_or("stats lacks `jobs_cancelled`")?,
                busy_rejections: v
                    .u64_field("busy_rejections")
                    .ok_or("stats lacks `busy_rejections`")?,
                queue_wait_p50_ms: v
                    .f64_field("queue_wait_p50_ms")
                    .ok_or("stats lacks `queue_wait_p50_ms`")?,
                queue_wait_p95_ms: v
                    .f64_field("queue_wait_p95_ms")
                    .ok_or("stats lacks `queue_wait_p95_ms`")?,
                max_connections: usize_field(&v, "max_connections")?,
                active_connections: v
                    .u64_field("active_connections")
                    .ok_or("stats lacks `active_connections`")?,
                closed_connections: v
                    .u64_field("closed_connections")
                    .ok_or("stats lacks `closed_connections`")?,
                cache: snapshot_from_json(v.get("cache").ok_or("stats lacks `cache`")?)?,
                entries: usize_field(&v, "entries")?,
                degraded: v.bool_field("degraded").ok_or("stats lacks `degraded`")?,
                cache_path: v.str_field("cache_path").map(str::to_string),
                clients: v
                    .get("clients")
                    .and_then(Json::as_arr)
                    .ok_or("stats lacks `clients`")?
                    .iter()
                    .map(|c| {
                        Ok(ClientStats {
                            client: c.u64_field("client").ok_or("client entry lacks `client`")?,
                            connected_secs: c
                                .f64_field("connected_secs")
                                .ok_or("client entry lacks `connected_secs`")?,
                            requests: c
                                .u64_field("requests")
                                .ok_or("client entry lacks `requests`")?,
                            reports: c
                                .u64_field("reports")
                                .ok_or("client entry lacks `reports`")?,
                            hits: c.usize_field("hits").ok_or("client entry lacks `hits`")?,
                            misses: c
                                .usize_field("misses")
                                .ok_or("client entry lacks `misses`")?,
                            active: c
                                .bool_field("active")
                                .ok_or("client entry lacks `active`")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            })),
            "compacted" => Response::Compacted(if v.bool_field("skipped") == Some(true) {
                None
            } else {
                Some(CompactionReport {
                    bytes_before: v
                        .u64_field("bytes_before")
                        .ok_or("compacted lacks `bytes_before`")?,
                    bytes_after: v
                        .u64_field("bytes_after")
                        .ok_or("compacted lacks `bytes_after`")?,
                    records_before: usize_field(&v, "records_before")?,
                    records_after: usize_field(&v, "records_after")?,
                })
            }),
            "cancelled" => Response::Cancelled {
                target: v.u64_field("target").ok_or("cancelled lacks `target`")?,
            },
            "busy" => Response::Busy {
                message: v
                    .str_field("message")
                    .ok_or("busy lacks `message`")?
                    .to_string(),
            },
            "error" => Response::Error {
                message: v
                    .str_field("message")
                    .ok_or("error lacks `message`")?
                    .to_string(),
            },
            "bye" => Response::Bye,
            other => return Err(format!("unknown response type `{other}`")),
        };
        Ok(ResponseEnvelope { id, response })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for request in [
            Request::Ping,
            Request::Check {
                adt: "Stack".into(),
                library: "LinkedList".into(),
            },
            Request::CheckAll,
            Request::Warmup,
            Request::CacheStats,
            Request::CacheCompact,
            Request::Cancel { target: 4 },
            Request::Shutdown { now: false },
            Request::Shutdown { now: true },
        ] {
            let env = Envelope::new(7, request);
            let text = env.to_json().to_string();
            assert_eq!(Envelope::parse(&text).expect("parses"), env, "{text}");
        }
    }

    #[test]
    fn deadlines_ride_the_envelope() {
        let env = Envelope {
            id: 2,
            request: Request::CheckAll,
            deadline_ms: Some(1500),
        };
        let text = env.to_json().to_string();
        assert_eq!(Envelope::parse(&text).expect("parses"), env, "{text}");
        // Absent deadline stays absent, not zero.
        let bare = Envelope::new(3, Request::CheckAll);
        let back = Envelope::parse(&bare.to_json().to_string()).expect("parses");
        assert_eq!(back.deadline_ms, None);
    }

    fn sample_stats() -> CheckStats {
        CheckStats {
            sat_queries: 12,
            sat_time: Duration::from_secs_f64(0.125),
            fa_inclusions: 3,
            avg_fa_size: 17.5,
            fa_time: Duration::from_nanos(41_678_921),
            total_time: Duration::from_secs_f64(1.0 / 3.0),
            assumed_preconditions: 0,
            cache_hits: 40,
            cache_misses: 2,
            enum_queries: 9,
            pruned_subtrees: 4,
            minterm_memo_hits: 5,
            inclusion_memo_hits: 1,
            dfa_states: 23,
            dfa_transitions: 61,
            alphabet_pruned: 2,
            transition_memo_hits: 11,
            product_states: 19,
            shape_memo_hits: 3,
            shared_tier_locks: 8,
            subsumed_pairs: 6,
            subsumption_checks: 14,
            simulation_memo_hits: 2,
        }
    }

    #[test]
    fn reports_round_trip_bit_identically() {
        let env = ResponseEnvelope {
            id: 3,
            response: Response::Report {
                bench: 1,
                method: 4,
                adt: "Queue".into(),
                library: "Vector".into(),
                policy: "FIFO order".into(),
                expect_verified: true,
                report: Box::new(MethodReport {
                    name: "enqueue".into(),
                    verified: false,
                    failures: vec!["postcondition ⊈ invariant".into()],
                    stats: sample_stats(),
                    branches: 2,
                    apps: 7,
                }),
            },
        };
        let text = env.to_json().to_string();
        let back = ResponseEnvelope::parse(&text).expect("parses");
        assert_eq!(back, env, "durations and floats must survive the wire");
    }

    #[test]
    fn done_stats_compacted_and_errors_round_trip() {
        let snapshot = CacheStatsSnapshot {
            hits: 100,
            misses: 7,
            disk_loaded: 50,
            stale: 1,
            minterm_hits: 20,
            minterm_misses: 3,
            transition_hits: 30,
            transition_misses: 5,
            subsumption_hits: 4,
            subsumption_misses: 2,
            lock_acquisitions: 60,
            disk_lock_acquisitions: 9,
        };
        let cases = vec![
            Response::Pong { uptime_secs: 12.5 },
            Response::Done {
                wall: Duration::from_secs_f64(2.75),
                cache: snapshot,
                jobs: 42,
                cancelled: 3,
                dedup_hits: 2,
                queue_wait_p50: Duration::from_millis(12),
                queue_wait_p95: Duration::from_millis(250),
            },
            Response::Stats(Box::new(DaemonStatus {
                addr: "unix:/tmp/marpled.sock".into(),
                pid: 999,
                uptime_secs: 3.25,
                workers: 2,
                requests_served: 5,
                jobs_completed: 84,
                in_flight_jobs: 6,
                dedup_hits: 11,
                runs_cancelled: 2,
                jobs_cancelled: 17,
                busy_rejections: 4,
                queue_wait_p50_ms: 1.5,
                queue_wait_p95_ms: 42.25,
                max_connections: 64,
                active_connections: 3,
                closed_connections: 1000,
                cache: snapshot,
                entries: 1234,
                degraded: false,
                cache_path: Some("/tmp/marple.cache".into()),
                clients: vec![ClientStats {
                    client: 1,
                    connected_secs: 1.5,
                    requests: 3,
                    reports: 40,
                    hits: 80,
                    misses: 4,
                    active: true,
                }],
            })),
            Response::Compacted(Some(CompactionReport {
                bytes_before: 4096,
                bytes_after: 1024,
                records_before: 100,
                records_after: 25,
            })),
            Response::Compacted(None),
            Response::Cancelled { target: 12 },
            Response::Busy {
                message: "the daemon is at its connection limit (64)".into(),
            },
            Response::Error {
                message: "unknown configuration `Foo/Bar`".into(),
            },
            Response::Bye,
        ];
        for response in cases {
            let env = ResponseEnvelope { id: 9, response };
            let text = env.to_json().to_string();
            assert_eq!(
                ResponseEnvelope::parse(&text).expect("parses"),
                env,
                "{text}"
            );
        }
    }

    #[test]
    fn handshake_round_trips_and_rejects_mismatches() {
        let hello = Hello::current();
        let text = hello.to_json().to_string();
        let back = Hello::parse(&text).expect("parses");
        assert_eq!(back, hello);
        assert!(back.check_compatible().is_ok());

        let old = Hello {
            cache_version: CACHE_VERSION - 1,
            ..Hello::current()
        };
        let err = old.check_compatible().expect_err("must reject");
        assert!(err.contains("cache format mismatch"), "{err}");

        let alien = Hello {
            server: "something-else v9".into(),
            ..Hello::current()
        };
        let err = alien.check_compatible().expect_err("must reject");
        assert!(err.contains("something-else v9"), "{err}");
    }
}
