//! The thin remote client: connect, verify the handshake, send requests, demultiplex
//! responses by request id, and reassemble streamed reports into the same
//! [`RunSummary`] a local engine run produces — which is what lets `marple … --remote`
//! render its report byte-identically to local mode.

use crate::frame::{read_frame, write_frame, MAX_RESPONSE_FRAME};
use crate::net::{Addr, Stream};
use crate::proto::{Envelope, Hello, Request, Response, ResponseEnvelope};
use hat_core::MethodReport;
use hat_engine::{BenchmarkRun, CompactionReport, RunSummary};
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::time::Duration;

/// A connected client. Requests are issued one at a time by the convenience methods;
/// the lower-level [`RemoteClient::send`]/[`RemoteClient::recv`] pair supports
/// pipelining several requests on one connection (responses carry the request id).
#[derive(Debug)]
pub struct RemoteClient {
    reader: Stream,
    writer: BufWriter<Stream>,
    hello: Hello,
    next_id: u64,
    /// Responses read while waiting for a different request's answer.
    pending: VecDeque<ResponseEnvelope>,
}

/// The outcome of a remote verification request: the reassembled summary plus the job
/// count the server reported.
#[derive(Debug, Clone)]
pub struct RemoteRun {
    /// Reports in (benchmark, method) input order, wall clock and cache deltas — the
    /// same shape a local [`hat_engine::Engine::check_benchmarks`] returns.
    pub summary: RunSummary,
    /// Number of (benchmark, method) jobs the server ran.
    pub jobs: usize,
}

impl RemoteClient {
    /// Connects to `addr` and verifies the server's handshake. The error string is
    /// user-facing and names the address.
    pub fn connect(addr: &Addr) -> Result<RemoteClient, String> {
        let stream = Stream::connect(addr)
            .map_err(|e| format!("cannot reach a marpled daemon at {addr}: {e}"))?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot split the connection to {addr}: {e}"))?;
        let mut client = RemoteClient {
            reader: stream,
            writer: BufWriter::new(writer),
            hello: Hello::current(), // replaced below
            next_id: 1,
            pending: VecDeque::new(),
        };
        let frame = read_frame(&mut client.reader, MAX_RESPONSE_FRAME)
            .map_err(|e| format!("handshake with {addr} failed: {e}"))?
            .ok_or_else(|| format!("the service at {addr} closed without a handshake"))?;
        let hello = Hello::parse(&frame).map_err(|e| format!("handshake with {addr}: {e}"))?;
        hello
            .check_compatible()
            .map_err(|e| format!("cannot use the daemon at {addr}: {e}"))?;
        client.hello = hello;
        Ok(client)
    }

    /// The server's handshake announcement.
    pub fn hello(&self) -> &Hello {
        &self.hello
    }

    /// Sends one request; returns its id for demultiplexing.
    pub fn send(&mut self, request: Request) -> Result<u64, String> {
        self.send_with_deadline(request, None)
    }

    /// Sends one request carrying an optional deadline (milliseconds from now, as the
    /// server receives it); returns its id for demultiplexing.
    pub fn send_with_deadline(
        &mut self,
        request: Request,
        deadline_ms: Option<u64>,
    ) -> Result<u64, String> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = Envelope {
            id,
            request,
            deadline_ms,
        }
        .to_json()
        .to_string();
        write_frame(&mut self.writer, &payload)
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("sending the request failed: {e}"))?;
        Ok(id)
    }

    /// Reads the next response frame, whatever request it answers: a buffered one
    /// first, the wire otherwise.
    pub fn recv(&mut self) -> Result<ResponseEnvelope, String> {
        if let Some(envelope) = self.pending.pop_front() {
            return Ok(envelope);
        }
        self.recv_wire()
    }

    /// Reads the next response frame from the wire, ignoring the pending buffer.
    fn recv_wire(&mut self) -> Result<ResponseEnvelope, String> {
        let frame = read_frame(&mut self.reader, MAX_RESPONSE_FRAME)
            .map_err(|e| format!("reading from the daemon failed: {e}"))?
            .ok_or("the daemon closed the connection")?;
        ResponseEnvelope::parse(&frame)
    }

    /// Reads the next response to request `id`, buffering others (pipelining).
    pub fn recv_for(&mut self, id: u64) -> Result<Response, String> {
        if let Some(i) = self.pending.iter().position(|e| e.id == id) {
            return Ok(self.pending.remove(i).expect("index in range").response);
        }
        // Everything buffered belongs to other requests, so the answer can only come
        // off the wire — reading via `recv` here would just recycle the buffer forever.
        loop {
            let envelope = self.recv_wire()?;
            if envelope.id == id {
                return Ok(envelope.response);
            }
            if envelope.id == 0 {
                // Connection-level frames (id 0) answer no request: the admission cap's
                // `busy` or a fatal protocol error. Either way this connection is done.
                return match envelope.response {
                    Response::Busy { message } => Err(format!("the daemon is busy: {message}")),
                    Response::Error { message } => Err(message),
                    other => Err(unexpected("busy/error", &other)),
                };
            }
            self.pending.push_back(envelope);
        }
    }

    /// Pings the daemon; returns its uptime in seconds.
    pub fn ping(&mut self) -> Result<f64, String> {
        let id = self.send(Request::Ping)?;
        match self.recv_for(id)? {
            Response::Pong { uptime_secs } => Ok(uptime_secs),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Runs a verification request (`check`, `check-all` or `warmup`), invoking
    /// `progress` for every streamed report and reassembling the deterministic
    /// summary once the `done` frame arrives.
    pub fn verify(
        &mut self,
        request: Request,
        progress: impl FnMut(&str, &str, &MethodReport),
    ) -> Result<RemoteRun, String> {
        self.verify_with_deadline(request, None, progress)
    }

    /// Like [`RemoteClient::verify`], with an optional server-side deadline: once
    /// `deadline_ms` elapses the server drops the run's queued jobs and answers a
    /// partial `done` whose summary has `cancelled > 0`.
    pub fn verify_with_deadline(
        &mut self,
        request: Request,
        deadline_ms: Option<u64>,
        mut progress: impl FnMut(&str, &str, &MethodReport),
    ) -> Result<RemoteRun, String> {
        let id = self.send_with_deadline(request, deadline_ms)?;
        // Reports stream in completion order, tagged with (bench, method) slots; the
        // summary is assembled in input order exactly like `RunHandle::finish`.
        let mut slots: Vec<(usize, usize, String, String, MethodReport)> = Vec::new();
        loop {
            match self.recv_for(id)? {
                Response::Report {
                    bench,
                    method,
                    adt,
                    library,
                    report,
                    ..
                } => {
                    progress(&adt, &report.name, &report);
                    slots.push((bench, method, adt, library, *report));
                }
                Response::Done {
                    wall,
                    cache,
                    jobs,
                    cancelled,
                    dedup_hits,
                    queue_wait_p50,
                    queue_wait_p95,
                } => {
                    slots.sort_by_key(|&(b, m, ..)| (b, m));
                    let mut benchmarks: Vec<BenchmarkRun> = Vec::new();
                    let mut last_bench = usize::MAX;
                    for (bench, _, adt, library, report) in slots {
                        if bench != last_bench {
                            last_bench = bench;
                            benchmarks.push(BenchmarkRun {
                                adt,
                                library,
                                reports: Vec::new(),
                                check_time: Duration::ZERO,
                            });
                        }
                        let run = benchmarks.last_mut().expect("pushed above");
                        run.check_time += report.stats.total_time;
                        run.reports.push(report);
                    }
                    return Ok(RemoteRun {
                        summary: RunSummary {
                            benchmarks,
                            wall,
                            cache,
                            cancelled,
                            dedup_hits,
                            queue_wait_p50,
                            queue_wait_p95,
                        },
                        jobs,
                    });
                }
                Response::Error { message } => return Err(message),
                Response::Busy { message } => return Err(format!("the daemon is busy: {message}")),
                other => return Err(unexpected("report/done", &other)),
            }
        }
    }

    /// Fetches the daemon status snapshot.
    pub fn cache_stats(&mut self) -> Result<crate::proto::DaemonStatus, String> {
        let id = self.send(Request::CacheStats)?;
        match self.recv_for(id)? {
            Response::Stats(status) => Ok(*status),
            Response::Error { message } => Err(message),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Asks the daemon to compact its log if crowded; `None` means it was not.
    pub fn cache_compact(&mut self) -> Result<Option<CompactionReport>, String> {
        let id = self.send(Request::CacheCompact)?;
        match self.recv_for(id)? {
            Response::Compacted(report) => Ok(report),
            Response::Error { message } => Err(message),
            other => Err(unexpected("compacted", &other)),
        }
    }

    /// Cancels the in-flight verification request `target` (an id returned by
    /// [`RemoteClient::send`]): its queued jobs are dropped, running ones finish, and
    /// its stream still terminates with a partial `done`.
    pub fn cancel(&mut self, target: u64) -> Result<(), String> {
        let id = self.send(Request::Cancel { target })?;
        match self.recv_for(id)? {
            Response::Cancelled { .. } => Ok(()),
            Response::Error { message } => Err(message),
            other => Err(unexpected("cancelled", &other)),
        }
    }

    /// Requests a graceful shutdown (`now` additionally drops every queued job so only
    /// running work drains) and waits for the acknowledgement.
    pub fn shutdown(&mut self, now: bool) -> Result<(), String> {
        let id = self.send(Request::Shutdown { now })?;
        match self.recv_for(id)? {
            Response::Bye => Ok(()),
            Response::Error { message } => Err(message),
            other => Err(unexpected("bye", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> String {
    let kind = match got {
        Response::Pong { .. } => "pong",
        Response::Report { .. } => "report",
        Response::Done { .. } => "done",
        Response::Stats(_) => "stats",
        Response::Compacted(_) => "compacted",
        Response::Cancelled { .. } => "cancelled",
        Response::Busy { .. } => "busy",
        Response::Error { .. } => "error",
        Response::Bye => "bye",
    };
    format!("protocol confusion: expected a `{wanted}` response, got `{kind}`")
}
