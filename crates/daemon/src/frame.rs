//! Length-prefixed line-JSON framing.
//!
//! Every message on a `marpled` connection — in either direction — is one frame:
//!
//! ```text
//! <decimal byte length of payload>\n
//! <payload (one JSON value, no interior newlines required)>\n
//! ```
//!
//! The explicit length makes torn writes detectable (a short read is an error, never a
//! silently truncated message), keeps the reader allocation-bounded (a frame announcing
//! more than the per-direction cap is rejected before any payload is read), and lets
//! payloads contain anything — the trailing `\n` is a frame delimiter for humans
//! inspecting a socket with `nc`, not part of the payload.

use std::io::{self, Read, Write};

/// Upper bound on a client→server frame. Requests are tiny (an op name and two
/// identifiers); anything bigger is garbage or abuse.
pub const MAX_REQUEST_FRAME: usize = 64 * 1024;

/// Upper bound on a server→client frame. A full `check-all` Done summary with every
/// counter stays far below this; the headroom is for failure lists.
pub const MAX_RESPONSE_FRAME: usize = 8 * 1024 * 1024;

/// The length line may not be padded beyond the digits needed for the largest cap.
const MAX_LENGTH_DIGITS: usize = 8;

/// Writes one frame. The caller flushes (or not) — the server's writer thread batches
/// the flush per frame, the client flushes after each request.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    write!(w, "{}\n{}\n", payload.len(), payload)
}

/// Reads one frame, enforcing `max` on the announced payload length.
///
/// Returns `Ok(None)` on clean EOF *at a frame boundary* (the peer closed between
/// messages). Every other shortfall — EOF inside a frame, a non-numeric or oversized
/// length line, a missing trailing newline, non-UTF-8 payload — is an error; callers
/// treat it as a poisoned connection and drop it without touching shared state.
pub fn read_frame(r: &mut impl Read, max: usize) -> io::Result<Option<String>> {
    // Read the length line byte-by-byte: it is at most MAX_LENGTH_DIGITS + 1 bytes, so
    // the byte-wise loop costs nothing, and it lets us use plain `Read` streams without
    // buffering state that would complicate `shutdown`-based wakeups.
    let mut digits = Vec::with_capacity(MAX_LENGTH_DIGITS);
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                return if digits.is_empty() {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed inside a frame length",
                    ))
                };
            }
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        match byte[0] {
            b'\n' => break,
            b'0'..=b'9' if digits.len() < MAX_LENGTH_DIGITS => digits.push(byte[0]),
            b'0'..=b'9' => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "frame length line too long",
                ))
            }
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "malformed frame length line",
                ))
            }
        }
    }
    if digits.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "empty frame length line",
        ));
    }
    let len: usize = std::str::from_utf8(&digits)
        .expect("digits are ASCII")
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "unparsable frame length"))?;
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max}-byte cap"),
        ));
    }
    // Payload plus the trailing delimiter newline.
    let mut buf = vec![0u8; len + 1];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside a frame payload (torn frame)",
            )
        } else {
            e
        }
    })?;
    if buf.pop() != Some(b'\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame payload not terminated by a newline",
        ));
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(payload: &str) -> String {
        let mut wire = Vec::new();
        write_frame(&mut wire, payload).expect("write");
        read_frame(&mut Cursor::new(wire), MAX_REQUEST_FRAME)
            .expect("read")
            .expect("one frame")
    }

    #[test]
    fn frames_round_trip() {
        assert_eq!(roundtrip(""), "");
        assert_eq!(roundtrip("{\"op\":\"ping\"}"), "{\"op\":\"ping\"}");
        assert_eq!(roundtrip("π — 😀"), "π — 😀");
        // Payloads may contain newlines; the length prefix disambiguates.
        assert_eq!(roundtrip("a\nb"), "a\nb");
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let mut wire = Vec::new();
        for p in ["one", "two", "three"] {
            write_frame(&mut wire, p).expect("write");
        }
        let mut cur = Cursor::new(wire);
        for p in ["one", "two", "three"] {
            assert_eq!(read_frame(&mut cur, 64).unwrap().as_deref(), Some(p));
        }
        assert!(read_frame(&mut cur, 64).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_frames_are_errors_not_truncations() {
        // EOF inside the payload.
        let mut wire = Vec::new();
        write_frame(&mut wire, "hello world").expect("write");
        wire.truncate(wire.len() - 4);
        assert!(read_frame(&mut Cursor::new(wire), 64).is_err());
        // EOF inside the length line.
        assert!(read_frame(&mut Cursor::new(b"12".to_vec()), 64).is_err());
    }

    #[test]
    fn garbage_and_oversized_frames_are_rejected() {
        for wire in [
            &b"notanumber\nxx\n"[..],
            &b"\npayload\n"[..],
            &b"999999999\n"[..], // longer than MAX_LENGTH_DIGITS
            &b"-1\nx\n"[..],
        ] {
            assert!(
                read_frame(&mut Cursor::new(wire.to_vec()), MAX_REQUEST_FRAME).is_err(),
                "{wire:?} must be rejected"
            );
        }
        // Announced length over the cap: rejected before reading the payload.
        let mut wire = Vec::new();
        write_frame(&mut wire, &"x".repeat(100)).expect("write");
        assert!(read_frame(&mut Cursor::new(wire), 64).is_err());
    }

    #[test]
    fn missing_delimiter_is_an_error() {
        // Correct length but the byte after the payload is not '\n'.
        let wire = b"3\nabcX".to_vec();
        assert!(read_frame(&mut Cursor::new(wire), 64).is_err());
    }
}
