//! Transport: service addresses and a unified stream/listener over Unix-domain
//! sockets (the default — filesystem permissions gate access) with a TCP loopback
//! fallback for environments without Unix sockets or for port-forwarded access.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};

/// A service address, as written on the command line and in `<cache>.addr` sidecars.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP `host:port` endpoint (loopback intended).
    Tcp(String),
}

impl Addr {
    /// Parses an address:
    ///
    /// - `unix:PATH` / `tcp:HOST:PORT` — explicit scheme;
    /// - anything containing `/` — a socket path;
    /// - anything containing `:` — a TCP endpoint;
    /// - bare names are rejected (ambiguous).
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty socket path after `unix:`".to_string());
            }
            return Ok(Addr::Unix(PathBuf::from(path)));
        }
        if let Some(endpoint) = s.strip_prefix("tcp:") {
            if endpoint.rsplit_once(':').is_none() {
                return Err(format!("`{endpoint}` is not a HOST:PORT endpoint"));
            }
            return Ok(Addr::Tcp(endpoint.to_string()));
        }
        if s.contains('/') {
            Ok(Addr::Unix(PathBuf::from(s)))
        } else if s.contains(':') {
            Ok(Addr::Tcp(s.to_string()))
        } else {
            Err(format!(
                "ambiguous address `{s}`: use `unix:PATH` or `tcp:HOST:PORT`"
            ))
        }
    }

    /// The default address: `marpled.sock` in the system temp directory — the same for
    /// server and client, so `marple daemon start` + `marple check-all --remote` work
    /// with no flags at all.
    pub fn default_socket() -> Addr {
        Addr::Unix(std::env::temp_dir().join("marpled.sock"))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Unix(path) => write!(f, "unix:{}", path.display()),
            Addr::Tcp(endpoint) => write!(f, "tcp:{endpoint}"),
        }
    }
}

/// One connection, either flavour.
#[derive(Debug)]
pub enum Stream {
    /// Over a Unix-domain socket.
    Unix(UnixStream),
    /// Over TCP.
    Tcp(TcpStream),
}

impl Stream {
    /// Connects to `addr`.
    pub fn connect(addr: &Addr) -> io::Result<Stream> {
        match addr {
            Addr::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Addr::Tcp(endpoint) => TcpStream::connect(endpoint.as_str()).map(Stream::Tcp),
        }
    }

    /// A second handle onto the same connection (reader/writer split).
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Shuts down one or both halves (used by the server to interrupt blocked reads at
    /// shutdown, and by tests to tear frames).
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.shutdown(how),
            Stream::Tcp(s) => s.shutdown(how),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound listener, either flavour.
#[derive(Debug)]
pub enum Listener {
    /// On a Unix-domain socket.
    Unix(UnixListener, PathBuf),
    /// On TCP.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds `addr`. A stale socket file from a dead daemon is reclaimed: if nothing
    /// answers a connect on it, it is unlinked and the bind retried.
    pub fn bind(addr: &Addr) -> io::Result<Listener> {
        match addr {
            Addr::Unix(path) => {
                match UnixListener::bind(path) {
                    Ok(l) => Ok(Listener::Unix(l, path.clone())),
                    Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                        if UnixStream::connect(path).is_ok() {
                            return Err(io::Error::new(
                                io::ErrorKind::AddrInUse,
                                format!("a daemon is already listening on {}", path.display()),
                            ));
                        }
                        // Dead socket file: nothing accepts on it, so reclaim.
                        std::fs::remove_file(path)?;
                        UnixListener::bind(path).map(|l| Listener::Unix(l, path.clone()))
                    }
                    Err(e) => Err(e),
                }
            }
            Addr::Tcp(endpoint) => TcpListener::bind(endpoint.as_str()).map(Listener::Tcp),
        }
    }

    /// Accepts one connection.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }

    /// The address the listener is actually bound to. For TCP this resolves port 0 to
    /// the assigned port, which is what in-process test daemons use.
    pub fn local_addr(&self) -> io::Result<Addr> {
        match self {
            Listener::Unix(_, path) => Ok(Addr::Unix(path.clone())),
            Listener::Tcp(l) => l.local_addr().map(|a| Addr::Tcp(a.to_string())),
        }
    }

    /// The socket path to unlink at shutdown, when there is one.
    pub fn socket_path(&self) -> Option<&Path> {
        match self {
            Listener::Unix(_, path) => Some(path),
            Listener::Tcp(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_parse_and_display() {
        assert_eq!(
            Addr::parse("unix:/tmp/m.sock").unwrap(),
            Addr::Unix(PathBuf::from("/tmp/m.sock"))
        );
        assert_eq!(
            Addr::parse("tcp:127.0.0.1:7777").unwrap(),
            Addr::Tcp("127.0.0.1:7777".into())
        );
        assert_eq!(
            Addr::parse("/var/run/marpled.sock").unwrap(),
            Addr::Unix(PathBuf::from("/var/run/marpled.sock"))
        );
        assert_eq!(
            Addr::parse("localhost:7777").unwrap(),
            Addr::Tcp("localhost:7777".into())
        );
        assert!(Addr::parse("marpled").is_err(), "bare names are ambiguous");
        assert!(Addr::parse("unix:").is_err());
        assert!(Addr::parse("tcp:7777").is_err(), "port without host");
        // Display round-trips through parse.
        for a in [
            Addr::Unix(PathBuf::from("/tmp/x.sock")),
            Addr::Tcp("127.0.0.1:1".into()),
        ] {
            assert_eq!(Addr::parse(&a.to_string()).unwrap(), a);
        }
    }

    #[test]
    fn stale_socket_files_are_reclaimed() {
        let path =
            std::env::temp_dir().join(format!("hat-daemon-stale-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let addr = Addr::Unix(path.clone());
        // First bind, then drop the listener *without* unlinking — a crashed daemon.
        let listener = Listener::bind(&addr).expect("first bind");
        drop(listener);
        assert!(path.exists(), "the socket file is left behind");
        let listener = Listener::bind(&addr).expect("rebind over the stale file");
        drop(listener);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn live_sockets_are_not_stolen() {
        let path =
            std::env::temp_dir().join(format!("hat-daemon-live-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let addr = Addr::Unix(path.clone());
        let _listener = Listener::bind(&addr).expect("first bind");
        let err = Listener::bind(&addr).expect_err("second bind must fail");
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        let _ = std::fs::remove_file(&path);
    }
}
