//! A minimal JSON value type with a parser and writer — the build environment has no
//! registry access, so the wire format is hand-rolled like the rest of the workspace's
//! serialisation (`hat-engine::atomio`, `hat-bench`'s JSON writer).
//!
//! Numbers distinguish integers from floats so counters round-trip exactly; floats are
//! written with Rust's shortest-round-trip `Display`, so a `Duration` serialised as
//! seconds parses back to the identical `f64` (this is what lets the remote client
//! render timings through the same code path as a local run).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fractional part or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a usize.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Field accessors composing `get` with the `as_*` casts.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }

    /// `get(key).as_u64()`.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key)?.as_u64()
    }

    /// `get(key).as_usize()`.
    pub fn usize_field(&self, key: &str) -> Option<usize> {
        self.get(key)?.as_usize()
    }

    /// `get(key).as_f64()`.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.get(key)?.as_f64()
    }

    /// `get(key).as_bool()`.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        self.get(key)?.as_bool()
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let s = format!("{f}");
                    out.push_str(&s);
                    // `Display` prints integral floats without a dot; keep the token
                    // unambiguously a float so it parses back to the same variant.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; null is the conventional degradation.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `input`, requiring the whole input to be consumed
    /// (modulo trailing whitespace).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after the JSON value"));
        }
        Ok(value)
    }
}

/// Serialises the value on one line (no insignificant whitespace — the framing layer
/// length-prefixes the result).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, what: &str) -> Result<(), ParseError> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("unrecognised literal"))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let first = self.unicode_escape()?;
                            // Surrogate pairs arrive as two consecutive \u escapes.
                            let c = if (0xD800..0xDC00).contains(&first) {
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let second = self.unicode_escape()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            match char::from_u32(c) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through; the input is a &str so the
                    // bytes are known-valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by the match");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (the caller has consumed the `u`); leaves
    /// `pos` at the final digit so the shared `pos += 1` advances past it.
    fn unicode_escape(&mut self) -> Result<u32, ParseError> {
        let start = self.pos + 1;
        let Some(hex) = self.bytes.get(start..start + 4) else {
            return Err(self.err("truncated unicode escape"));
        };
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("invalid unicode escape"))?;
        let value = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = start + 3;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits and sign characters are ASCII");
        if is_float {
            token
                .parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            token
                .parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

/// Convenience: build an object from (key, value) pairs.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_value_kinds() {
        let value = obj(vec![
            ("null", Json::Null),
            ("yes", Json::Bool(true)),
            ("count", Json::Int(42)),
            ("neg", Json::Int(-7)),
            ("secs", Json::Float(1.25)),
            ("whole", Json::Float(3.0)),
            ("text", Json::Str("a\t\"b\"\nc\\d — π".into())),
            (
                "arr",
                Json::Arr(vec![Json::Int(1), Json::Str("two".into())]),
            ),
            ("nested", obj(vec![("k", Json::Str("v".into()))])),
        ]);
        let text = value.to_string();
        assert_eq!(Json::parse(&text).expect("parses"), value);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [
            0.1,
            1.0 / 3.0,
            123456.789,
            f64::MIN_POSITIVE,
            9_007_199_254_740_993.5,
        ] {
            let text = Json::Float(f).to_string();
            assert_eq!(Json::parse(&text).unwrap(), Json::Float(f), "{text}");
        }
    }

    #[test]
    fn integers_stay_integers() {
        assert_eq!(
            Json::parse("9007199254740993").unwrap(),
            Json::Int(9007199254740993)
        );
        assert_eq!(Json::parse("-1").unwrap(), Json::Int(-1));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""éA""#).unwrap(), Json::Str("éA".into()));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn garbage_is_rejected_with_an_offset() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"k\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{'k':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = Json::parse("[1, @]").unwrap_err();
        assert_eq!(err.at, 4);
    }

    #[test]
    fn accessors_pick_fields() {
        let v = Json::parse(r#"{"a": 1, "b": "x", "c": true, "d": [2], "e": 0.5}"#).unwrap();
        assert_eq!(v.u64_field("a"), Some(1));
        assert_eq!(v.str_field("b"), Some("x"));
        assert_eq!(v.bool_field("c"), Some(true));
        assert_eq!(
            v.get("d").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.f64_field("e"), Some(0.5));
        assert_eq!(v.f64_field("a"), Some(1.0), "ints widen to floats");
        assert_eq!(v.u64_field("missing"), None);
    }
}
