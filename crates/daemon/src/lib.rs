//! # hat-daemon
//!
//! `marpled` — the HAT verifier as a long-lived service — and the thin client behind
//! `marple … --remote`.
//!
//! A batch `marple check-all` pays the engine's startup cost every time: replaying the
//! disk log, spawning the worker pool, re-deriving whatever the log didn't carry
//! (in-memory-only tiers like DFA transitions, and per-worker local tiers, die with
//! the process). `marpled` pays those costs **once**: it owns a persistent
//! [`hat_engine::Engine`] — worker pool, tiered memo store, cache-log writer lock —
//! and serves verification requests over a Unix socket (TCP loopback fallback),
//! streaming per-job verdicts and counters as workers finish them. Clients get warm-
//! cache latency without touching the disk log, and many clients share one warm store
//! concurrently.
//!
//! The layers, bottom up:
//!
//! - [`json`]: a dependency-free JSON value type (parser + shortest-round-trip writer);
//! - [`frame`]: length-prefixed line-JSON framing with per-direction size caps;
//! - [`proto`]: the `marpled v1` handshake and typed request/response envelopes;
//! - [`net`]: service addresses (`unix:PATH` / `tcp:HOST:PORT`) over both transports;
//! - [`server`]: the daemon — accept loop, per-connection handler/writer threads,
//!   per-request runner threads, graceful drain-and-compact shutdown;
//! - [`client`]: the remote client, reassembling streamed reports into the same
//!   [`hat_engine::RunSummary`] a local run produces.
//!
//! `docs/DAEMON.md` documents the wire protocol and operational model.

pub mod client;
pub mod frame;
pub mod json;
pub mod net;
pub mod proto;
pub mod server;

pub use client::{RemoteClient, RemoteRun};
pub use net::{Addr, Listener, Stream};
pub use proto::{
    ClientStats, DaemonStatus, Envelope, Hello, Request, Response, CACHE_VERSION, PROTOCOL_VERSION,
    SERVER_NAME,
};
pub use server::{Daemon, DaemonConfig, DaemonHandle};
