//! `marpled` — the HAT verifier as a long-lived foreground service.
//!
//! ```text
//! marpled [options]
//!
//! options:
//!   --addr ADDR     listen address: `unix:PATH` or `tcp:HOST:PORT`
//!                   (default: unix:<tmpdir>/marpled.sock)
//!   --cache PATH    persist the solver-query cache at PATH; the log is replayed into
//!                   memory before the first connection is accepted, and the daemon
//!                   holds the single-writer lock for its whole lifetime
//!   --jobs N        verification worker threads (default 1)
//!   --max-connections N  open-connection cap; over-cap clients get a structured
//!                   `busy` error instead of service (0 = unlimited, default 64)
//!   --max-client-jobs N  per-connection in-flight job budget; requests over it
//!                   answer `busy` without queueing (0 = unlimited, default 1024)
//!   --quiet         suppress the per-event stderr log
//! ```
//!
//! The daemon runs until a client sends `shutdown` (`marple daemon stop`); it then
//! drains in-flight jobs, compacts the log if crowded, releases the cache lock and
//! removes its socket. Talk to it with `marple check/check-all --remote <ADDR>` or
//! `marple daemon status`.

use hat_daemon::{Addr, Daemon, DaemonConfig};
use std::path::PathBuf;

const USAGE: &str = "usage: marpled [--addr unix:PATH|tcp:HOST:PORT] [--cache PATH] [--jobs N] [--max-connections N] [--max-client-jobs N] [--quiet]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = DaemonConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                let value = it.next().unwrap_or_else(|| fail("--addr needs a value"));
                config.addr = Addr::parse(value).unwrap_or_else(|e| fail(&e));
            }
            "--cache" => {
                let value = it.next().unwrap_or_else(|| fail("--cache needs a path"));
                config.engine.cache_path = Some(PathBuf::from(value));
            }
            "--jobs" | "-j" => {
                let value = it.next().unwrap_or_else(|| fail("--jobs needs a value"));
                config.engine.jobs = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail(&format!("invalid --jobs value `{value}`")));
            }
            "--max-connections" => {
                let value = it
                    .next()
                    .unwrap_or_else(|| fail("--max-connections needs a value"));
                config.max_connections = value.parse::<usize>().unwrap_or_else(|_| {
                    fail(&format!("invalid --max-connections value `{value}`"))
                });
            }
            "--max-client-jobs" => {
                let value = it
                    .next()
                    .unwrap_or_else(|| fail("--max-client-jobs needs a value"));
                config.max_client_jobs = value.parse::<usize>().unwrap_or_else(|_| {
                    fail(&format!("invalid --max-client-jobs value `{value}`"))
                });
            }
            "--quiet" => config.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown option `{other}`")),
        }
    }
    match Daemon::spawn(config) {
        Ok(handle) => handle.join(),
        Err(e) => {
            eprintln!("marpled: {e}");
            std::process::exit(2);
        }
    }
}

fn fail(message: &str) -> ! {
    eprintln!("marpled: {message}\n{USAGE}");
    std::process::exit(2);
}
