//! The `marpled` server: a long-lived process owning one [`Engine`] (worker pool +
//! tiered memo store), serving verification requests over [`crate::frame`] frames.
//!
//! ## Lifecycle
//!
//! [`Daemon::spawn`] builds the engine first — replaying the v6 manifest and its
//! segment files warms the store **before** the listener accepts anything, so the
//! first client already sees a warm cache — then binds the listener, writes the `<cache>.addr` sidecar (which is
//! how lock-contended batch runs learn the daemon's address), and starts the accept
//! loop on a background thread. If the cache lock is held by another process the
//! daemon refuses to start rather than running degraded: a daemon whose verdicts
//! evaporate on exit would defeat its purpose.
//!
//! ## Concurrency and fairness
//!
//! One handler thread per connection reads request frames; one writer thread per
//! connection owns the write half behind a **bounded** channel, so report frames from
//! several in-flight requests (each running on its own runner thread) interleave
//! without tearing — the client demultiplexes by request id. A client that stops
//! reading while reports stream is disconnected after a short grace period instead of
//! buffering frames without limit (`WRITER_CHANNEL_FRAMES`, `STALL_GRACE`).
//!
//! Fairness across clients is the engine scheduler's per-submission round-robin; the
//! server adds **admission control** on top: a `--max-connections` cap (over-cap
//! connections get a `busy` frame and are closed) and a per-client queued-job limit
//! (over-limit verification requests answer `busy` without submitting). Verification
//! requests honour `deadline_ms` and the `cancel` op by polling between reports and
//! dropping the run's queued jobs.
//!
//! Connection state is bounded: the stream handle and the client record of a closed
//! connection are released when its handler exits — only a small window of recent
//! closed-client records is kept verbatim for `cache-stats`, with older ones folded
//! into aggregate totals, so N connect/disconnect cycles leave O(1) retained state.
//!
//! ## Shutdown
//!
//! A `shutdown` request answers `bye`, raises the stop flag and wakes the accept loop
//! with a dummy self-connection (`shutdown --now` first drops every queued job, so
//! only running jobs drain). The accept loop then half-closes (`shutdown(Read)`)
//! every live connection — handlers stop taking *new* requests but writers keep
//! streaming until in-flight runs finish — joins everything, then quiesces the LSM
//! store: the memtable is drained to segments, the background compactor merges the
//! segment families if they are crowded with dead records, and only then does the
//! engine drop (pool joins, the LSM thread joins, the sidecar lock releases) before
//! the `.addr` sidecar and the socket file are unlinked. The socket file
//! disappearing last is what `marple daemon stop` polls.

use crate::frame::{read_frame, write_frame, MAX_REQUEST_FRAME};
use crate::net::{Addr, Listener, Stream};
use crate::proto::{
    ClientStats, DaemonStatus, Envelope, Hello, Request, Response, ResponseEnvelope,
};
use hat_engine::{addr_path_for, Engine, EngineConfig, PollReport};
use hat_suite::Benchmark;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufWriter, Write};
use std::net::Shutdown;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::Scope;
use std::time::{Duration, Instant};

/// Report frames the per-connection writer buffers before the stall policy engages.
/// Small enough that a stalled `check-all` consumer is detected within one stream.
const WRITER_CHANNEL_FRAMES: usize = 64;

/// How long a full writer queue may stay full before the connection is declared
/// stalled and closed.
const STALL_GRACE: Duration = Duration::from_secs(2);

/// Closed-client records retained verbatim for `cache-stats`; older ones fold into
/// aggregate totals so retention is O(1) in the number of connections served.
const CLOSED_CLIENT_WINDOW: usize = 16;

/// Recent per-job queue waits kept for the status percentiles.
const QUEUE_WAIT_WINDOW: usize = 512;

/// How often a streaming run wakes to check its deadline and cancel flag.
const CANCEL_POLL: Duration = Duration::from_millis(50);

/// Configuration of a daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Where to listen.
    pub addr: Addr,
    /// The engine the daemon owns (worker count, cache path, verification knobs).
    pub engine: EngineConfig,
    /// Maximum concurrently open client connections (0 = unlimited). Connections over
    /// the cap receive a `busy` frame after the handshake and are closed.
    pub max_connections: usize,
    /// Maximum (benchmark, method) jobs one connection may have in flight (0 =
    /// unlimited). Verification requests over the limit answer `busy` without
    /// submitting anything.
    pub max_client_jobs: usize,
    /// Suppress the per-event stderr log (tests and benchmarks).
    pub quiet: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: Addr::default_socket(),
            engine: EngineConfig::default(),
            max_connections: 64,
            max_client_jobs: 1024,
            quiet: false,
        }
    }
}

/// Per-connection bookkeeping for the `cache-stats` report.
#[derive(Debug)]
struct ClientRecord {
    connected: Instant,
    /// Connection lifetime, once the handler exits.
    closed_after: Option<f64>,
    requests: u64,
    reports: u64,
    hits: usize,
    misses: usize,
}

impl ClientRecord {
    fn new() -> ClientRecord {
        ClientRecord {
            connected: Instant::now(),
            closed_after: None,
            requests: 0,
            reports: 0,
            hits: 0,
            misses: 0,
        }
    }
}

/// The bounded client registry: every open connection, a fixed window of recently
/// closed ones, and aggregate totals for everything older.
#[derive(Default)]
struct ClientRegistry {
    next_id: u64,
    /// Open connections, in accept order.
    active: Vec<(u64, ClientRecord)>,
    /// The last [`CLOSED_CLIENT_WINDOW`] closed connections, oldest first.
    recent_closed: VecDeque<(u64, ClientRecord)>,
    /// Connections closed over the daemon's lifetime.
    closed_total: u64,
    /// Totals of closed records that aged out of the window — `cache-stats` stays
    /// truthful without retaining per-connection state forever.
    aggregated_requests: u64,
    aggregated_reports: u64,
    aggregated_hits: usize,
    aggregated_misses: usize,
}

/// State shared by the accept loop and every per-connection thread.
struct Shared {
    addr: Addr,
    started: Instant,
    stopping: AtomicBool,
    requests_served: AtomicU64,
    jobs_completed: AtomicU64,
    /// Jobs submitted to the engine and not yet completed or cancelled.
    in_flight_jobs: AtomicU64,
    busy_rejections: AtomicU64,
    runs_cancelled: AtomicU64,
    jobs_cancelled: AtomicU64,
    clients: Mutex<ClientRegistry>,
    /// Read-half clones of every **open** connection, keyed by client id: half-closed
    /// at shutdown to interrupt handlers blocked in `read_frame`, removed (releasing
    /// the fd) when the handler exits.
    conns: Mutex<HashMap<u64, Stream>>,
    /// Recent per-job queue waits in milliseconds, for the status percentiles.
    queue_waits: Mutex<VecDeque<f64>>,
    max_connections: usize,
    max_client_jobs: usize,
    quiet: bool,
}

impl Shared {
    fn log(&self, message: std::fmt::Arguments<'_>) {
        if !self.quiet {
            eprintln!("marpled: {message}");
        }
    }

    /// Registers a connection; returns its 1-based client id.
    fn register_client(&self) -> u64 {
        let mut reg = self.clients.lock().expect("client registry");
        reg.next_id += 1;
        let id = reg.next_id;
        reg.active.push((id, ClientRecord::new()));
        id
    }

    fn with_client(&self, client: u64, f: impl FnOnce(&mut ClientRecord)) {
        let mut reg = self.clients.lock().expect("client registry");
        if let Some((_, record)) = reg.active.iter_mut().find(|(id, _)| *id == client) {
            f(record);
        }
    }

    /// Moves a client record from the active set into the bounded closed window,
    /// folding the record that ages out (if any) into the aggregate totals.
    fn close_client(&self, client: u64) {
        let mut reg = self.clients.lock().expect("client registry");
        let Some(pos) = reg.active.iter().position(|(id, _)| *id == client) else {
            return;
        };
        let (id, mut record) = reg.active.remove(pos);
        record.closed_after = Some(record.connected.elapsed().as_secs_f64());
        reg.closed_total += 1;
        reg.recent_closed.push_back((id, record));
        while reg.recent_closed.len() > CLOSED_CLIENT_WINDOW {
            let (_, old) = reg.recent_closed.pop_front().expect("len checked");
            reg.aggregated_requests += old.requests;
            reg.aggregated_reports += old.reports;
            reg.aggregated_hits += old.hits;
            reg.aggregated_misses += old.misses;
        }
    }

    /// Records one job's queue wait in the bounded reservoir behind the status
    /// percentiles.
    fn record_queue_wait(&self, wait: Duration) {
        let mut waits = self.queue_waits.lock().expect("queue-wait reservoir");
        if waits.len() == QUEUE_WAIT_WINDOW {
            waits.pop_front();
        }
        waits.push_back(wait.as_secs_f64() * 1e3);
    }

    /// Raises the stop flag and wakes the accept loop with a dummy self-connection.
    fn initiate_shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        self.log(format_args!("shutdown requested, draining"));
        let _ = Stream::connect(&self.addr);
    }

    fn status(&self, engine: &Engine) -> DaemonStatus {
        let reg = self.clients.lock().expect("client registry");
        let mut clients: Vec<ClientStats> = reg
            .recent_closed
            .iter()
            .map(|(id, c)| (*id, c, false))
            .chain(reg.active.iter().map(|(id, c)| (*id, c, true)))
            .map(|(id, c, active)| ClientStats {
                client: id,
                connected_secs: c
                    .closed_after
                    .unwrap_or_else(|| c.connected.elapsed().as_secs_f64()),
                requests: c.requests,
                reports: c.reports,
                hits: c.hits,
                misses: c.misses,
                active,
            })
            .collect();
        clients.sort_by_key(|c| c.client);
        // Clients that aged out of the closed window survive as one aggregate row
        // (client id 0) — the totals stay truthful while retention stays O(1).
        if reg.closed_total > reg.recent_closed.len() as u64 {
            clients.insert(
                0,
                ClientStats {
                    client: 0,
                    connected_secs: 0.0,
                    requests: reg.aggregated_requests,
                    reports: reg.aggregated_reports,
                    hits: reg.aggregated_hits,
                    misses: reg.aggregated_misses,
                    active: false,
                },
            );
        }
        let (p50, p95) = {
            let waits = self.queue_waits.lock().expect("queue-wait reservoir");
            let mut sorted: Vec<f64> = waits.iter().copied().collect();
            sorted.sort_by(f64::total_cmp);
            (percentile_ms(&sorted, 50.0), percentile_ms(&sorted, 95.0))
        };
        DaemonStatus {
            addr: self.addr.to_string(),
            pid: std::process::id(),
            uptime_secs: self.started.elapsed().as_secs_f64(),
            workers: engine.config().jobs,
            requests_served: self.requests_served.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            in_flight_jobs: self.in_flight_jobs.load(Ordering::Relaxed),
            dedup_hits: engine.dedup_hits() as u64,
            runs_cancelled: self.runs_cancelled.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            queue_wait_p50_ms: p50,
            queue_wait_p95_ms: p95,
            max_connections: self.max_connections,
            active_connections: reg.active.len() as u64,
            closed_connections: reg.closed_total,
            cache: engine.cache().stats(),
            entries: engine.cache().len(),
            degraded: engine.cache().degraded(),
            cache_path: engine
                .config()
                .cache_path
                .as_ref()
                .map(|p| p.display().to_string()),
            clients,
        }
    }
}

/// Nearest-rank percentile of an already-sorted millisecond sample; zero when empty.
fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A running daemon instance (in-process). The `marpled` binary wraps this; tests and
/// the benchmark harness spawn it directly on a temp socket.
pub struct Daemon;

/// Handle onto a spawned daemon: its bound address plus the serve thread.
pub struct DaemonHandle {
    addr: Addr,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for DaemonHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl Daemon {
    /// Builds the engine (warming the store from disk), binds the listener and starts
    /// serving on a background thread. Returns once the daemon accepts connections.
    pub fn spawn(config: DaemonConfig) -> io::Result<DaemonHandle> {
        let engine = Engine::new(config.engine.clone())?;
        if engine.cache().degraded() {
            let path = config
                .engine
                .cache_path
                .as_ref()
                .map(|p| p.display().to_string())
                .unwrap_or_default();
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                format!(
                    "the cache lock on `{path}` is held by another process; \
                     marpled refuses to run degraded — stop the other writer first"
                ),
            ));
        }
        let listener = Listener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Advertise the service next to the cache log, so lock-contended `marple
        // check` runs can suggest the exact `--remote` address.
        let addr_file = config.engine.cache_path.as_ref().map(|p| addr_path_for(p));
        if let Some(path) = &addr_file {
            std::fs::write(path, format!("{addr}\n"))?;
        }
        let shared = Arc::new(Shared {
            addr: addr.clone(),
            started: Instant::now(),
            stopping: AtomicBool::new(false),
            requests_served: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            in_flight_jobs: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            runs_cancelled: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            clients: Mutex::new(ClientRegistry::default()),
            conns: Mutex::new(HashMap::new()),
            queue_waits: Mutex::new(VecDeque::new()),
            max_connections: config.max_connections,
            max_client_jobs: config.max_client_jobs,
            quiet: config.quiet,
        });
        shared.log(format_args!(
            "listening on {addr} ({} worker{}, {} cache entries warm)",
            engine.config().jobs,
            if engine.config().jobs == 1 { "" } else { "s" },
            engine.cache().len(),
        ));
        let serve_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("marpled-accept".to_string())
            .spawn(move || {
                serve(&serve_shared, &engine, &listener);
                // Every handler, runner and writer has joined: drain the memtable to
                // segments, nudge the compactor if the families are crowded, release
                // the lock by dropping the engine (which joins the LSM thread), then
                // remove the advertisement files — socket last, it is what
                // `marple daemon stop` polls.
                match engine.cache().compact_if_needed() {
                    Ok(Some(report)) => serve_shared.log(format_args!(
                        "compacted the cache segments: {} → {} records",
                        report.records_before, report.records_after
                    )),
                    Ok(None) => {}
                    Err(e) => serve_shared.log(format_args!("cache compaction failed: {e}")),
                }
                drop(engine);
                if let Some(path) = &addr_file {
                    let _ = std::fs::remove_file(path);
                }
                if let Some(path) = listener.socket_path() {
                    let _ = std::fs::remove_file(path);
                }
                serve_shared.log(format_args!("stopped"));
            })
            .expect("spawning the daemon accept thread failed");
        Ok(DaemonHandle {
            addr,
            shared,
            thread: Some(thread),
        })
    }
}

impl DaemonHandle {
    /// The address the daemon is actually bound to (TCP port 0 resolved).
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Whether the serve thread has exited.
    pub fn is_stopped(&self) -> bool {
        self.thread
            .as_ref()
            .map(|t| t.is_finished())
            .unwrap_or(true)
    }

    /// Initiates a graceful shutdown and waits for the daemon to finish draining.
    pub fn stop(mut self) {
        self.shared.initiate_shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }

    /// Waits for the daemon to stop on its own (e.g. by a client's `shutdown`).
    pub fn join(mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.shared.initiate_shutdown();
            let _ = thread.join();
        }
    }
}

/// The benchmark batch a verification request resolves to.
fn resolve_batch(request: &Request) -> Result<Vec<Benchmark>, String> {
    match request {
        // Suite configurations are looked up by name; `gen/s<seed>-i<index>…` names
        // are *regenerated* server-side from the name alone (the name is the recipe),
        // which is how the fuzz harness drives generated configurations over the wire
        // without any protocol change.
        Request::Check { adt, library } => hat_suite::find(adt, library)
            .or_else(|| hat_gen::find(adt, library))
            .map(|b| vec![b])
            .ok_or_else(|| format!("unknown configuration `{adt}/{library}`")),
        // The full suite, in the same order `marple check-all` runs it — remote and
        // local check-all must cover the identical set for identical reports.
        Request::CheckAll | Request::Warmup => Ok(hat_suite::all_benchmarks()),
        _ => unreachable!("not a verification request"),
    }
}

/// The accept loop plus every per-connection thread, all inside one scope: when this
/// function returns, every connection is fully drained.
fn serve(shared: &Shared, engine: &Engine, listener: &Listener) {
    std::thread::scope(|scope| {
        while !shared.stopping.load(Ordering::SeqCst) {
            let stream = match listener.accept() {
                Ok(stream) => stream,
                Err(e) => {
                    if shared.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    shared.log(format_args!("accept failed: {e}"));
                    continue;
                }
            };
            if shared.stopping.load(Ordering::SeqCst) {
                // The shutdown wake-up connection (or a client racing it): drop.
                break;
            }
            // Admission control: over the connection cap, answer with a handshake +
            // `busy` (so the client gets one clear line, not a connection reset) and
            // close. The write happens off the accept loop, which must keep accepting.
            let open = shared.conns.lock().expect("connection registry").len();
            if shared.max_connections > 0 && open >= shared.max_connections {
                shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                let max = shared.max_connections;
                shared.log(format_args!(
                    "connection refused: at the connection limit ({max})"
                ));
                scope.spawn(move || {
                    let mut w = BufWriter::new(stream);
                    let busy = ResponseEnvelope {
                        id: 0,
                        response: Response::Busy {
                            message: format!(
                                "the daemon is at its connection limit ({max}); retry shortly"
                            ),
                        },
                    };
                    let _ = write_frame(&mut w, &Hello::current().to_json().to_string())
                        .and_then(|()| write_frame(&mut w, &busy.to_json().to_string()))
                        .and_then(|()| w.flush());
                });
                continue;
            }
            let client = shared.register_client();
            if let Ok(clone) = stream.try_clone() {
                shared
                    .conns
                    .lock()
                    .expect("connection registry")
                    .insert(client, clone);
            }
            shared.log(format_args!("client {client} connected"));
            scope.spawn(move || handle_connection(scope, shared, engine, stream, client));
        }
        // Half-close every connection: blocked `read_frame`s return, handlers stop
        // taking new requests, but write halves stay open so in-flight runs finish
        // streaming. The scope then joins everything.
        for conn in shared.conns.lock().expect("connection registry").values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
    });
}

/// A connection's outbound lane: the bounded channel to its writer thread, plus the
/// stall policy. Shared between the handler and every runner thread of the connection.
struct ConnTx {
    tx: SyncSender<String>,
    /// A clone of the connection, used only to sever it when the consumer stalls.
    conn: Stream,
    stalled: AtomicBool,
    client: u64,
}

impl ConnTx {
    /// Enqueues one response frame for the writer.
    fn send(&self, shared: &Shared, id: u64, response: Response) {
        self.push(
            shared,
            ResponseEnvelope { id, response }.to_json().to_string(),
        );
    }

    /// Enqueues a payload, applying the disconnect-on-stall policy: when the bounded
    /// queue has stayed full for [`STALL_GRACE`], the client is not reading — sever
    /// the connection (with a logged reason) instead of buffering without limit.
    /// Frames after a stall (or after the client went away) are dropped; runs complete
    /// anyway, since their memo entries are the daemon's whole point.
    fn push(&self, shared: &Shared, payload: String) {
        if self.stalled.load(Ordering::Relaxed) {
            return;
        }
        let mut payload = payload;
        let deadline = Instant::now() + STALL_GRACE;
        loop {
            match self.tx.try_send(payload) {
                Ok(()) => return,
                Err(TrySendError::Disconnected(_)) => return,
                Err(TrySendError::Full(returned)) => {
                    if Instant::now() >= deadline {
                        if !self.stalled.swap(true, Ordering::Relaxed) {
                            shared.log(format_args!(
                                "client {}: not reading its responses (writer full for \
                                 {STALL_GRACE:?}), disconnecting",
                                self.client
                            ));
                            let _ = self.conn.shutdown(Shutdown::Both);
                        }
                        return;
                    }
                    payload = returned;
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }
}

fn handle_connection<'scope>(
    scope: &'scope Scope<'scope, '_>,
    shared: &'scope Shared,
    engine: &'scope Engine,
    mut reader: Stream,
    client: u64,
) {
    let (Ok(write_half), Ok(stall_half)) = (reader.try_clone(), reader.try_clone()) else {
        shared.close_client(client);
        shared
            .conns
            .lock()
            .expect("connection registry")
            .remove(&client);
        return;
    };
    // One writer thread per connection: report frames from several concurrent runner
    // threads (pipelined requests) funnel through this bounded channel, so frames
    // never tear and a stalled consumer cannot buffer unboundedly.
    let (tx, rx) = sync_channel::<String>(WRITER_CHANNEL_FRAMES);
    let tx = Arc::new(ConnTx {
        tx,
        conn: stall_half,
        stalled: AtomicBool::new(false),
        client,
    });
    scope.spawn(move || {
        let mut w = BufWriter::new(write_half);
        while let Ok(payload) = rx.recv() {
            if write_frame(&mut w, &payload).is_err() || w.flush().is_err() {
                break;
            }
        }
        // Closing the write half tells a still-reading client the stream is over.
        let _ = w.get_ref().shutdown(Shutdown::Write);
    });
    // The server speaks first: handshake before any request.
    tx.push(shared, Hello::current().to_json().to_string());
    // Cancel flags of this connection's in-flight verification requests, by id.
    let cancel_flags: Arc<Mutex<HashMap<u64, Arc<AtomicBool>>>> =
        Arc::new(Mutex::new(HashMap::new()));
    // Jobs this connection currently has submitted (the per-client admission gauge;
    // incremented here, decremented by the runner when its batch settles).
    let conn_jobs = Arc::new(AtomicU64::new(0));
    loop {
        let payload = match read_frame(&mut reader, MAX_REQUEST_FRAME) {
            Ok(Some(payload)) => payload,
            Ok(None) => break,
            Err(e) => {
                // Torn, oversized or garbled frame: the connection is poisoned, the
                // store is not. Drop the connection; nothing was mutated.
                shared.log(format_args!("client {client}: bad frame ({e}), closing"));
                break;
            }
        };
        let envelope = match Envelope::parse(&payload) {
            Ok(envelope) => envelope,
            Err(message) => {
                shared.log(format_args!("client {client}: {message}, closing"));
                tx.send(shared, 0, Response::Error { message });
                break;
            }
        };
        shared.requests_served.fetch_add(1, Ordering::Relaxed);
        shared.with_client(client, |c| c.requests += 1);
        let id = envelope.id;
        match envelope.request {
            Request::Ping => tx.send(
                shared,
                id,
                Response::Pong {
                    uptime_secs: shared.started.elapsed().as_secs_f64(),
                },
            ),
            Request::CacheStats => {
                tx.send(shared, id, Response::Stats(Box::new(shared.status(engine))));
            }
            Request::CacheCompact => match engine.cache().compact_if_needed() {
                Ok(report) => tx.send(shared, id, Response::Compacted(report)),
                Err(e) => tx.send(
                    shared,
                    id,
                    Response::Error {
                        message: format!("compaction failed: {e}"),
                    },
                ),
            },
            Request::Cancel { target } => {
                let flag = cancel_flags
                    .lock()
                    .expect("cancel flags")
                    .get(&target)
                    .cloned();
                match flag {
                    Some(flag) => {
                        flag.store(true, Ordering::Relaxed);
                        shared.log(format_args!(
                            "client {client} cancelled its request {target}"
                        ));
                        tx.send(shared, id, Response::Cancelled { target });
                    }
                    None => tx.send(
                        shared,
                        id,
                        Response::Error {
                            message: format!(
                                "no in-flight verification request {target} on this connection"
                            ),
                        },
                    ),
                }
            }
            Request::Shutdown { now } => {
                if now {
                    let dropped = engine.cancel_all_queued();
                    if dropped > 0 {
                        shared.log(format_args!(
                            "shutdown --now: dropped {dropped} queued job{}",
                            if dropped == 1 { "" } else { "s" }
                        ));
                    }
                }
                tx.send(shared, id, Response::Bye);
                shared.initiate_shutdown();
                break;
            }
            request @ (Request::Check { .. } | Request::CheckAll | Request::Warmup) => {
                match resolve_batch(&request) {
                    Err(message) => tx.send(shared, id, Response::Error { message }),
                    Ok(benches) => {
                        // Per-client admission: refuse (rather than queue) a request
                        // that would push this connection over its job budget.
                        let batch: u64 = benches.iter().map(|b| b.methods.len() as u64).sum();
                        let queued = conn_jobs.load(Ordering::Relaxed);
                        if shared.max_client_jobs > 0
                            && queued + batch > shared.max_client_jobs as u64
                        {
                            shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                            tx.send(
                                shared,
                                id,
                                Response::Busy {
                                    message: format!(
                                        "this connection has {queued} jobs in flight and the \
                                         request adds {batch}; the per-client limit is {} — \
                                         wait for a `done` or cancel a stream",
                                        shared.max_client_jobs
                                    ),
                                },
                            );
                            continue;
                        }
                        conn_jobs.fetch_add(batch, Ordering::Relaxed);
                        // Each verification request runs on its own thread so the
                        // handler keeps reading: a client may pipeline a cache-stats
                        // probe, a `cancel`, or a second batch while this one streams.
                        let stream_reports = !matches!(request, Request::Warmup);
                        let deadline = envelope
                            .deadline_ms
                            .map(|ms| Instant::now() + Duration::from_millis(ms));
                        let cancel = Arc::new(AtomicBool::new(false));
                        cancel_flags
                            .lock()
                            .expect("cancel flags")
                            .insert(id, Arc::clone(&cancel));
                        let tx = Arc::clone(&tx);
                        let flags = Arc::clone(&cancel_flags);
                        let conn_jobs = Arc::clone(&conn_jobs);
                        scope.spawn(move || {
                            run_batch(RunCtx {
                                shared,
                                engine,
                                benches: &benches,
                                id,
                                tx: &tx,
                                client,
                                stream_reports,
                                deadline,
                                cancel: &cancel,
                            });
                            conn_jobs.fetch_sub(batch, Ordering::Relaxed);
                            flags.lock().expect("cancel flags").remove(&id);
                        });
                    }
                }
            }
        }
    }
    // Leak-free lifecycle: release the retained stream clone (and its fd) and fold
    // this client's record into the bounded closed window.
    shared
        .conns
        .lock()
        .expect("connection registry")
        .remove(&client);
    shared.close_client(client);
    shared.log(format_args!("client {client} disconnected"));
}

/// Everything one verification batch needs.
struct RunCtx<'a> {
    shared: &'a Shared,
    engine: &'a Engine,
    benches: &'a [Benchmark],
    id: u64,
    tx: &'a ConnTx,
    client: u64,
    /// Warmup runs skip the per-job report frames.
    stream_reports: bool,
    /// When set, the run auto-cancels its queued jobs once the instant passes.
    deadline: Option<Instant>,
    /// Raised by a `cancel` request targeting this run's id.
    cancel: &'a AtomicBool,
}

/// Runs one verification batch on the engine's pool, streaming per-job reports (in
/// completion order) and the terminating `done` frame to the connection's writer.
/// Between reports the run polls its deadline and cancel flag; a trigger drops the
/// batch's queued jobs (running ones finish and still stream), and the `done` frame
/// reports the partial coverage in its `cancelled` counter.
fn run_batch(ctx: RunCtx<'_>) {
    let RunCtx {
        shared,
        engine,
        benches,
        id,
        tx,
        client,
        deadline,
        cancel,
        stream_reports,
    } = ctx;
    let mut in_flight_added: u64 = 0;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut handle = engine.submit(benches);
        let jobs = handle.job_count();
        in_flight_added = jobs as u64;
        shared
            .in_flight_jobs
            .fetch_add(in_flight_added, Ordering::Relaxed);
        loop {
            match handle.poll_report(CANCEL_POLL) {
                PollReport::Report(job) => {
                    shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
                    shared.record_queue_wait(job.queue_wait);
                    if stream_reports {
                        let bench = &benches[job.bench];
                        shared.with_client(client, |c| c.reports += 1);
                        tx.send(
                            shared,
                            id,
                            Response::Report {
                                bench: job.bench,
                                method: job.method,
                                adt: bench.adt.to_string(),
                                library: bench.library.to_string(),
                                policy: bench.policy.to_string(),
                                expect_verified: bench.methods[job.method].expect_verified,
                                report: Box::new(job.report),
                            },
                        );
                    }
                }
                PollReport::Done => break,
                PollReport::TimedOut => {}
            }
            if !handle.cancel_requested()
                && (cancel.load(Ordering::Relaxed) || deadline.is_some_and(|d| Instant::now() >= d))
            {
                let reason = if cancel.load(Ordering::Relaxed) {
                    "cancelled by the client"
                } else {
                    "deadline expired"
                };
                let dropped = handle.cancel();
                shared.log(format_args!(
                    "client {client} request {id}: {reason}, dropped {dropped} queued job{}",
                    if dropped == 1 { "" } else { "s" }
                ));
            }
        }
        let summary = handle.finish();
        shared
            .in_flight_jobs
            .fetch_sub(in_flight_added, Ordering::Relaxed);
        in_flight_added = 0;
        if summary.cancelled > 0 {
            shared.runs_cancelled.fetch_add(1, Ordering::Relaxed);
            shared
                .jobs_cancelled
                .fetch_add(summary.cancelled as u64, Ordering::Relaxed);
        }
        shared.with_client(client, |c| {
            c.hits += summary.cache.hits;
            c.misses += summary.cache.misses;
        });
        tx.send(
            shared,
            id,
            Response::Done {
                wall: summary.wall,
                cache: summary.cache,
                jobs,
                cancelled: summary.cancelled,
                dedup_hits: summary.dedup_hits,
                queue_wait_p50: summary.queue_wait_p50,
                queue_wait_p95: summary.queue_wait_p95,
            },
        );
    }));
    if let Err(panic) = outcome {
        if in_flight_added > 0 {
            shared
                .in_flight_jobs
                .fetch_sub(in_flight_added, Ordering::Relaxed);
        }
        let message = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "verification failed".to_string());
        shared.log(format_args!(
            "client {client} request {id} failed: {message}"
        ));
        tx.send(shared, id, Response::Error { message });
    }
}
