//! The `marpled` server: a long-lived process owning one [`Engine`] (worker pool +
//! tiered memo store), serving verification requests over [`crate::frame`] frames.
//!
//! ## Lifecycle
//!
//! [`Daemon::spawn`] builds the engine first — replaying the v5 disk log warms the
//! store **before** the listener accepts anything, so the first client already sees a
//! warm cache — then binds the listener, writes the `<cache>.addr` sidecar (which is
//! how lock-contended batch runs learn the daemon's address), and starts the accept
//! loop on a background thread. If the cache lock is held by another process the
//! daemon refuses to start rather than running degraded: a daemon whose verdicts
//! evaporate on exit would defeat its purpose.
//!
//! ## Concurrency
//!
//! One handler thread per connection reads request frames; one writer thread per
//! connection owns the write half behind an mpsc channel, so report frames from
//! several in-flight requests (each running on its own runner thread) interleave
//! without tearing — the client demultiplexes by request id. All threads are scoped:
//! the accept loop's scope joins every handler, runner and writer before teardown
//! proceeds, which is what makes shutdown drain in-flight jobs instead of aborting
//! them.
//!
//! ## Shutdown
//!
//! A `shutdown` request answers `bye`, raises the stop flag and wakes the accept loop
//! with a dummy self-connection. The accept loop then half-closes (`shutdown(Read)`)
//! every live connection — handlers stop taking *new* requests but writers keep
//! streaming until in-flight runs finish — joins everything, compacts the log if it is
//! crowded with dead records, drops the engine (pool drains, store flushes, the
//! sidecar lock releases), and finally unlinks the `.addr` sidecar and the socket
//! file. The socket file disappearing last is what `marple daemon stop` polls for.

use crate::frame::{read_frame, write_frame, MAX_REQUEST_FRAME};
use crate::net::{Addr, Listener, Stream};
use crate::proto::{
    ClientStats, DaemonStatus, Envelope, Hello, Request, Response, ResponseEnvelope,
};
use hat_engine::{addr_path_for, Engine, EngineConfig};
use hat_suite::Benchmark;
use std::io::{self, BufWriter, Write};
use std::net::Shutdown;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::Scope;
use std::time::Instant;

/// Configuration of a daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Where to listen.
    pub addr: Addr,
    /// The engine the daemon owns (worker count, cache path, verification knobs).
    pub engine: EngineConfig,
    /// Suppress the per-event stderr log (tests and benchmarks).
    pub quiet: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: Addr::default_socket(),
            engine: EngineConfig::default(),
            quiet: false,
        }
    }
}

/// Per-connection bookkeeping for the `cache-stats` report.
#[derive(Debug)]
struct ClientRecord {
    connected: Instant,
    /// Connection lifetime, once the handler exits.
    closed_after: Option<f64>,
    requests: u64,
    reports: u64,
    hits: usize,
    misses: usize,
}

/// State shared by the accept loop and every per-connection thread.
struct Shared {
    addr: Addr,
    started: Instant,
    stopping: AtomicBool,
    requests_served: AtomicU64,
    jobs_completed: AtomicU64,
    clients: Mutex<Vec<ClientRecord>>,
    /// Read-half clones of every accepted connection, half-closed at shutdown to
    /// interrupt handlers blocked in `read_frame`.
    conns: Mutex<Vec<Stream>>,
    quiet: bool,
}

impl Shared {
    fn log(&self, message: std::fmt::Arguments<'_>) {
        if !self.quiet {
            eprintln!("marpled: {message}");
        }
    }

    /// Registers a connection; returns its 1-based client number.
    fn register_client(&self) -> usize {
        let mut clients = self.clients.lock().expect("client registry");
        clients.push(ClientRecord {
            connected: Instant::now(),
            closed_after: None,
            requests: 0,
            reports: 0,
            hits: 0,
            misses: 0,
        });
        clients.len()
    }

    fn with_client(&self, client: usize, f: impl FnOnce(&mut ClientRecord)) {
        let mut clients = self.clients.lock().expect("client registry");
        f(&mut clients[client - 1]);
    }

    /// Raises the stop flag and wakes the accept loop with a dummy self-connection.
    fn initiate_shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        self.log(format_args!("shutdown requested, draining"));
        let _ = Stream::connect(&self.addr);
    }

    fn status(&self, engine: &Engine) -> DaemonStatus {
        let clients = self.clients.lock().expect("client registry");
        DaemonStatus {
            addr: self.addr.to_string(),
            pid: std::process::id(),
            uptime_secs: self.started.elapsed().as_secs_f64(),
            workers: engine.config().jobs,
            requests_served: self.requests_served.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            cache: engine.cache().stats(),
            entries: engine.cache().len(),
            degraded: engine.cache().degraded(),
            cache_path: engine
                .config()
                .cache_path
                .as_ref()
                .map(|p| p.display().to_string()),
            clients: clients
                .iter()
                .enumerate()
                .map(|(i, c)| ClientStats {
                    client: (i + 1) as u64,
                    connected_secs: c
                        .closed_after
                        .unwrap_or_else(|| c.connected.elapsed().as_secs_f64()),
                    requests: c.requests,
                    reports: c.reports,
                    hits: c.hits,
                    misses: c.misses,
                    active: c.closed_after.is_none(),
                })
                .collect(),
        }
    }
}

/// A running daemon instance (in-process). The `marpled` binary wraps this; tests and
/// the benchmark harness spawn it directly on a temp socket.
pub struct Daemon;

/// Handle onto a spawned daemon: its bound address plus the serve thread.
pub struct DaemonHandle {
    addr: Addr,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for DaemonHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl Daemon {
    /// Builds the engine (warming the store from disk), binds the listener and starts
    /// serving on a background thread. Returns once the daemon accepts connections.
    pub fn spawn(config: DaemonConfig) -> io::Result<DaemonHandle> {
        let engine = Engine::new(config.engine.clone())?;
        if engine.cache().degraded() {
            let path = config
                .engine
                .cache_path
                .as_ref()
                .map(|p| p.display().to_string())
                .unwrap_or_default();
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                format!(
                    "the cache lock on `{path}` is held by another process; \
                     marpled refuses to run degraded — stop the other writer first"
                ),
            ));
        }
        let listener = Listener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Advertise the service next to the cache log, so lock-contended `marple
        // check` runs can suggest the exact `--remote` address.
        let addr_file = config.engine.cache_path.as_ref().map(|p| addr_path_for(p));
        if let Some(path) = &addr_file {
            std::fs::write(path, format!("{addr}\n"))?;
        }
        let shared = Arc::new(Shared {
            addr: addr.clone(),
            started: Instant::now(),
            stopping: AtomicBool::new(false),
            requests_served: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            clients: Mutex::new(Vec::new()),
            conns: Mutex::new(Vec::new()),
            quiet: config.quiet,
        });
        shared.log(format_args!(
            "listening on {addr} ({} worker{}, {} cache entries warm)",
            engine.config().jobs,
            if engine.config().jobs == 1 { "" } else { "s" },
            engine.cache().len(),
        ));
        let serve_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("marpled-accept".to_string())
            .spawn(move || {
                serve(&serve_shared, &engine, &listener);
                // Every handler, runner and writer has joined: flush the log through a
                // compaction check, release the lock by dropping the engine, then
                // remove the advertisement files — socket last, it is what
                // `marple daemon stop` polls.
                match engine.cache().compact_if_needed() {
                    Ok(Some(report)) => serve_shared.log(format_args!(
                        "compacted the cache log: {} → {} records",
                        report.records_before, report.records_after
                    )),
                    Ok(None) => {}
                    Err(e) => serve_shared.log(format_args!("cache compaction failed: {e}")),
                }
                drop(engine);
                if let Some(path) = &addr_file {
                    let _ = std::fs::remove_file(path);
                }
                if let Some(path) = listener.socket_path() {
                    let _ = std::fs::remove_file(path);
                }
                serve_shared.log(format_args!("stopped"));
            })
            .expect("spawning the daemon accept thread failed");
        Ok(DaemonHandle {
            addr,
            shared,
            thread: Some(thread),
        })
    }
}

impl DaemonHandle {
    /// The address the daemon is actually bound to (TCP port 0 resolved).
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Whether the serve thread has exited.
    pub fn is_stopped(&self) -> bool {
        self.thread
            .as_ref()
            .map(|t| t.is_finished())
            .unwrap_or(true)
    }

    /// Initiates a graceful shutdown and waits for the daemon to finish draining.
    pub fn stop(mut self) {
        self.shared.initiate_shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }

    /// Waits for the daemon to stop on its own (e.g. by a client's `shutdown`).
    pub fn join(mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.shared.initiate_shutdown();
            let _ = thread.join();
        }
    }
}

/// The benchmark batch a verification request resolves to.
fn resolve_batch(request: &Request) -> Result<Vec<Benchmark>, String> {
    match request {
        Request::Check { adt, library } => hat_suite::find(adt, library)
            .map(|b| vec![b])
            .ok_or_else(|| format!("unknown configuration `{adt}/{library}`")),
        // The full suite, in the same order `marple check-all` runs it — remote and
        // local check-all must cover the identical set for identical reports.
        Request::CheckAll | Request::Warmup => Ok(hat_suite::all_benchmarks()),
        _ => unreachable!("not a verification request"),
    }
}

/// The accept loop plus every per-connection thread, all inside one scope: when this
/// function returns, every connection is fully drained.
fn serve(shared: &Shared, engine: &Engine, listener: &Listener) {
    std::thread::scope(|scope| {
        while !shared.stopping.load(Ordering::SeqCst) {
            let stream = match listener.accept() {
                Ok(stream) => stream,
                Err(e) => {
                    if shared.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    shared.log(format_args!("accept failed: {e}"));
                    continue;
                }
            };
            if shared.stopping.load(Ordering::SeqCst) {
                // The shutdown wake-up connection (or a client racing it): drop.
                break;
            }
            let client = shared.register_client();
            if let Ok(clone) = stream.try_clone() {
                shared
                    .conns
                    .lock()
                    .expect("connection registry")
                    .push(clone);
            }
            shared.log(format_args!("client {client} connected"));
            scope.spawn(move || handle_connection(scope, shared, engine, stream, client));
        }
        // Half-close every connection: blocked `read_frame`s return, handlers stop
        // taking new requests, but write halves stay open so in-flight runs finish
        // streaming. The scope then joins everything.
        for conn in shared.conns.lock().expect("connection registry").iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
    });
}

/// Sends one response frame through the connection's writer channel.
fn send(tx: &Sender<String>, id: u64, response: Response) {
    let envelope = ResponseEnvelope { id, response };
    // A dropped writer means the client went away; runs complete anyway (their memo
    // entries are the daemon's whole point) and the sends become no-ops.
    let _ = tx.send(envelope.to_json().to_string());
}

fn handle_connection<'scope>(
    scope: &'scope Scope<'scope, '_>,
    shared: &'scope Shared,
    engine: &'scope Engine,
    mut reader: Stream,
    client: usize,
) {
    let Ok(write_half) = reader.try_clone() else {
        return;
    };
    // One writer thread per connection: report frames from several concurrent runner
    // threads (pipelined requests) funnel through this channel, so frames never tear.
    let (tx, rx) = channel::<String>();
    scope.spawn(move || {
        let mut w = BufWriter::new(write_half);
        while let Ok(payload) = rx.recv() {
            if write_frame(&mut w, &payload).is_err() || w.flush().is_err() {
                break;
            }
        }
        // Closing the write half tells a still-reading client the stream is over.
        let _ = w.get_ref().shutdown(Shutdown::Write);
    });
    // The server speaks first: handshake before any request.
    let _ = tx.send(Hello::current().to_json().to_string());
    loop {
        let payload = match read_frame(&mut reader, MAX_REQUEST_FRAME) {
            Ok(Some(payload)) => payload,
            Ok(None) => break,
            Err(e) => {
                // Torn, oversized or garbled frame: the connection is poisoned, the
                // store is not. Drop the connection; nothing was mutated.
                shared.log(format_args!("client {client}: bad frame ({e}), closing"));
                break;
            }
        };
        let envelope = match Envelope::parse(&payload) {
            Ok(envelope) => envelope,
            Err(message) => {
                shared.log(format_args!("client {client}: {message}, closing"));
                send(&tx, 0, Response::Error { message });
                break;
            }
        };
        shared.requests_served.fetch_add(1, Ordering::Relaxed);
        shared.with_client(client, |c| c.requests += 1);
        let id = envelope.id;
        match envelope.request {
            Request::Ping => send(
                &tx,
                id,
                Response::Pong {
                    uptime_secs: shared.started.elapsed().as_secs_f64(),
                },
            ),
            Request::CacheStats => send(&tx, id, Response::Stats(Box::new(shared.status(engine)))),
            Request::CacheCompact => match engine.cache().compact_if_needed() {
                Ok(report) => send(&tx, id, Response::Compacted(report)),
                Err(e) => send(
                    &tx,
                    id,
                    Response::Error {
                        message: format!("compaction failed: {e}"),
                    },
                ),
            },
            Request::Shutdown => {
                send(&tx, id, Response::Bye);
                shared.initiate_shutdown();
                break;
            }
            request @ (Request::Check { .. } | Request::CheckAll | Request::Warmup) => {
                match resolve_batch(&request) {
                    Err(message) => send(&tx, id, Response::Error { message }),
                    Ok(benches) => {
                        // Each verification request runs on its own thread so the
                        // handler keeps reading: a client may pipeline a cache-stats
                        // probe (or a second batch) while this one streams.
                        let stream_reports = !matches!(request, Request::Warmup);
                        let tx = tx.clone();
                        scope.spawn(move || {
                            run_batch(shared, engine, &benches, id, &tx, client, stream_reports)
                        });
                    }
                }
            }
        }
    }
    shared.with_client(client, |c| {
        c.closed_after = Some(c.connected.elapsed().as_secs_f64());
    });
    shared.log(format_args!("client {client} disconnected"));
}

/// Runs one verification batch on the engine's pool, streaming per-job reports (in
/// completion order) and the terminating `done` frame to the connection's writer.
fn run_batch(
    shared: &Shared,
    engine: &Engine,
    benches: &[Benchmark],
    id: u64,
    tx: &Sender<String>,
    client: usize,
    stream_reports: bool,
) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut handle = engine.submit(benches);
        let jobs = handle.job_count();
        while let Some(job) = handle.next_report() {
            shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            if stream_reports {
                let bench = &benches[job.bench];
                shared.with_client(client, |c| c.reports += 1);
                send(
                    tx,
                    id,
                    Response::Report {
                        bench: job.bench,
                        method: job.method,
                        adt: bench.adt.to_string(),
                        library: bench.library.to_string(),
                        policy: bench.policy.to_string(),
                        expect_verified: bench.methods[job.method].expect_verified,
                        report: Box::new(job.report),
                    },
                );
            }
        }
        let summary = handle.finish();
        shared.with_client(client, |c| {
            c.hits += summary.cache.hits;
            c.misses += summary.cache.misses;
        });
        send(
            tx,
            id,
            Response::Done {
                wall: summary.wall,
                cache: summary.cache,
                jobs,
            },
        );
    }));
    if let Err(panic) = outcome {
        let message = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "verification failed".to_string());
        shared.log(format_args!(
            "client {client} request {id} failed: {message}"
        ));
        send(tx, id, Response::Error { message });
    }
}
