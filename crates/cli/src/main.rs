//! `marple` — the command-line driver of the HAT representation-invariant verifier.
//!
//! ```text
//! marple list                  # list the benchmark configurations
//! marple check <adt> <lib>     # verify one configuration and print a report
//! marple check-all             # verify every configuration
//! ```

use hat_suite::{all_benchmarks, find, Benchmark};

fn report(bench: &Benchmark) -> bool {
    println!("== {} / {} — {}", bench.adt, bench.library, bench.policy);
    let reports = bench.check_all();
    let mut ok = true;
    for (m, r) in bench.methods.iter().zip(&reports) {
        let status = match (r.verified, m.expect_verified) {
            (true, true) => "verified",
            (false, false) => "rejected (as expected)",
            (true, false) => "VERIFIED BUT EXPECTED REJECTION",
            (false, true) => "FAILED",
        };
        ok &= r.verified == m.expect_verified;
        println!(
            "   {:<22} {:<32} #SAT={:<5} #FA⊆={:<3} t={:.2}s",
            m.sig.name,
            status,
            r.stats.sat_queries,
            r.stats.fa_inclusions,
            r.stats.total_time.as_secs_f64()
        );
        for f in &r.failures {
            if m.expect_verified {
                println!("        failure: {f}");
            }
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") | None => {
            println!("Available benchmark configurations (ADT / library):");
            for b in all_benchmarks() {
                println!("  {:<15} {:<11} — {}", b.adt, b.library, b.invariant_description);
            }
            println!("\nRun `marple check <adt> <library>` to verify one of them.");
        }
        Some("check") => {
            let (Some(adt), Some(lib)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: marple check <adt> <library>");
                std::process::exit(2);
            };
            match find(adt, lib) {
                Some(b) => {
                    let ok = report(&b);
                    std::process::exit(if ok { 0 } else { 1 });
                }
                None => {
                    eprintln!("unknown configuration `{adt}/{lib}`; try `marple list`");
                    std::process::exit(2);
                }
            }
        }
        Some("check-all") => {
            let mut ok = true;
            for b in all_benchmarks() {
                ok &= report(&b);
            }
            std::process::exit(if ok { 0 } else { 1 });
        }
        Some(other) => {
            eprintln!("unknown command `{other}`; commands: list, check, check-all");
            std::process::exit(2);
        }
    }
}
