//! `marple` — the command-line driver of the HAT representation-invariant verifier.
//!
//! ```text
//! marple list                             # list the benchmark configurations
//! marple check <adt> <lib> [options]      # verify one configuration and print a report
//!                                         # (<adt> `gen` + <lib> `s<seed>-i<index>…`
//!                                         # regenerates a fuzz configuration by name)
//! marple check-all [options]              # verify every configuration
//! marple fuzz [--seed S] [--count N]      # generate N verdict-known configurations
//!        [--exhaustive] [options]         # and verify every verdict end-to-end:
//!                                         # plain checker, an engine knob combination
//!                                         # (rotating through all 96; --exhaustive
//!                                         # runs all 96 per configuration), warm
//!                                         # memo-tier resubmission, LSM store when
//!                                         # --cache is given, and the daemon wire
//!                                         # when --remote is given. On the first
//!                                         # disagreement the configuration is shrunk
//!                                         # to a minimal named reproducer.
//! marple cache stats <path>               # per-record-kind counts + live/dead ratio
//! marple cache compact <path>             # rewrite the log without dead records
//! marple daemon start [options]           # run a marpled daemon in the foreground
//! marple daemon status [--remote ADDR]    # uptime, counters and per-client stats
//! marple daemon stop [--now] [--remote ADDR]  # graceful shutdown (drain, compact,
//!                                         # unlock); --now drops queued jobs first
//!
//! options:
//!   --jobs N        verify on N worker threads (default 1; verdicts are identical)
//!   --cache PATH    persist the solver-query cache at PATH so repeated runs start warm
//!   --remote [ADDR] send the run to a marpled daemon instead of verifying locally
//!                   (default address: unix:<tmpdir>/marpled.sock); the report is
//!                   rendered exactly as a local run's
//!   --deadline-ms N give a remote run N milliseconds: when they elapse the daemon
//!                   drops its queued jobs and the partial report is marked cancelled
//!   --max-connections N  (daemon start) open-connection cap; over-cap clients get a
//!                   `busy` error instead of service (0 = unlimited, default 64)
//!   --max-client-jobs N  (daemon start) per-connection in-flight job budget; requests
//!                   over it answer `busy` (0 = unlimited, default 1024)
//!   --enum MODE     minterm enumeration: `incremental` (default) or `naive`
//!                   (verdicts are identical; naive is the paper-faithful baseline)
//!   --prune MODE    per-group alphabet pruning before DFA construction: `on` (default)
//!                   or `off` (verdict- and state-count-identical; off is the
//!                   measurement baseline)
//!   --inclusion M   how language inclusion is decided: `onthefly` (default — walk the
//!                   product A × complement(B) lazily, exit at the first counterexample)
//!                   or `materialise` (build both complete DFAs first; verdict-identical,
//!                   kept as the measurement baseline)
//!   --subsume M     antichain subsumption pruning of the on-the-fly product frontier:
//!                   `simulation` (default — syntactic rules plus a memoised simulation
//!                   preorder over already-derived transition rows, persisted as `U`
//!                   records), `syntactic` (structural rules only, zero extra memo
//!                   traffic) or `off` (the measurement baseline). All three are
//!                   verdict-identical; ignored by `--inclusion materialise`
//!   --local-tier M  per-worker lock-free read-through tiers in front of the shared
//!                   memo store: `on` (default) or `off` (verdict-identical; off is the
//!                   lock-traffic measurement baseline)
//! ```

use hat_daemon::{Addr, Daemon, DaemonConfig, RemoteClient, Request};
use hat_engine::{BenchmarkRun, Engine, EngineConfig, MemoStore, RecordKind, RunSummary};
use hat_sfa::{EnumerationMode, InclusionMode, SubsumptionMode};
use hat_suite::{all_benchmarks, find, Benchmark};
use std::path::PathBuf;

struct Options {
    jobs: usize,
    cache_path: Option<PathBuf>,
    enumeration: EnumerationMode,
    prune: bool,
    inclusion: InclusionMode,
    subsume: SubsumptionMode,
    local_tiers: bool,
    remote: Option<Addr>,
    deadline_ms: Option<u64>,
    max_connections: usize,
    max_client_jobs: usize,
    now: bool,
    seed: u64,
    count: u64,
    exhaustive: bool,
    positional: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let defaults = DaemonConfig::default();
    let mut opts = Options {
        jobs: 1,
        cache_path: None,
        enumeration: EnumerationMode::default(),
        prune: true,
        inclusion: InclusionMode::default(),
        subsume: SubsumptionMode::default(),
        local_tiers: true,
        remote: None,
        deadline_ms: None,
        max_connections: defaults.max_connections,
        max_client_jobs: defaults.max_client_jobs,
        now: false,
        seed: 1,
        count: 100,
        exhaustive: false,
        positional: Vec::new(),
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--remote" => {
                // The address is optional: `--remote` alone means the default socket.
                // A following token is taken as the address only if it parses as one
                // (contains `/` or `:`), so positionals like ADT names stay untouched.
                opts.remote = match it.peek() {
                    Some(next) if Addr::parse(next).is_ok() => {
                        Some(Addr::parse(it.next().expect("peeked")).expect("just parsed"))
                    }
                    _ => Some(Addr::default_socket()),
                };
            }
            "--jobs" | "-j" => {
                let value = it.next().ok_or("--jobs needs a value")?;
                opts.jobs = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("invalid --jobs value `{value}`"))?;
            }
            "--cache" => {
                let value = it.next().ok_or("--cache needs a path")?;
                opts.cache_path = Some(PathBuf::from(value));
            }
            "--enum" => {
                let value = it.next().ok_or("--enum needs a mode")?;
                opts.enumeration = match value.as_str() {
                    "naive" => EnumerationMode::Naive,
                    "incremental" => EnumerationMode::Incremental,
                    other => {
                        return Err(format!("invalid --enum mode `{other}` (naive|incremental)"))
                    }
                };
            }
            "--prune" => {
                let value = it.next().ok_or("--prune needs a mode")?;
                opts.prune = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("invalid --prune mode `{other}` (on|off)")),
                };
            }
            "--inclusion" => {
                let value = it.next().ok_or("--inclusion needs a mode")?;
                opts.inclusion = match value.as_str() {
                    "onthefly" => InclusionMode::OnTheFly,
                    "materialise" => InclusionMode::Materialise,
                    other => {
                        return Err(format!(
                            "invalid --inclusion mode `{other}` (onthefly|materialise)"
                        ))
                    }
                };
            }
            "--subsume" => {
                let value = it.next().ok_or("--subsume needs a mode")?;
                opts.subsume = SubsumptionMode::parse(value).ok_or_else(|| {
                    format!("invalid --subsume mode `{value}` (off|syntactic|simulation)")
                })?;
            }
            "--deadline-ms" => {
                let value = it.next().ok_or("--deadline-ms needs a value")?;
                opts.deadline_ms = Some(
                    value
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("invalid --deadline-ms value `{value}`"))?,
                );
            }
            "--max-connections" => {
                let value = it.next().ok_or("--max-connections needs a value")?;
                opts.max_connections = value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --max-connections value `{value}`"))?;
            }
            "--max-client-jobs" => {
                let value = it.next().ok_or("--max-client-jobs needs a value")?;
                opts.max_client_jobs = value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --max-client-jobs value `{value}`"))?;
            }
            "--now" => opts.now = true,
            "--seed" => {
                let value = it.next().ok_or("--seed needs a value")?;
                opts.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("invalid --seed value `{value}`"))?;
            }
            "--count" => {
                let value = it.next().ok_or("--count needs a value")?;
                opts.count = value
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("invalid --count value `{value}`"))?;
            }
            "--exhaustive" => opts.exhaustive = true,
            "--local-tier" => {
                let value = it.next().ok_or("--local-tier needs a mode")?;
                opts.local_tiers = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("invalid --local-tier mode `{other}` (on|off)")),
                };
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            other => opts.positional.push(other.to_string()),
        }
    }
    Ok(opts)
}

fn print_run(bench: &Benchmark, run: &BenchmarkRun) -> bool {
    println!("== {} / {} — {}", bench.adt, bench.library, bench.policy);
    let mut ok = true;
    for m in &bench.methods {
        // Match reports by method name, not position: a cancelled remote run delivers
        // a partial report set, and a positional zip would mislabel what remains.
        let Some(r) = run.reports.iter().find(|r| r.name == m.sig.name) else {
            ok = false;
            println!(
                "   {:<22} {:<32}",
                m.sig.name, "cancelled (dropped before running)"
            );
            continue;
        };
        let status = match (r.verified, m.expect_verified) {
            (true, true) => "verified",
            (false, false) => "rejected (as expected)",
            (true, false) => "VERIFIED BUT EXPECTED REJECTION",
            (false, true) => "FAILED",
        };
        ok &= r.verified == m.expect_verified;
        println!(
            "   {:<22} {:<32} #SAT={:<5} #enum={:<5} #FA⊆={:<3} t={:.2}s",
            m.sig.name,
            status,
            r.stats.sat_queries,
            r.stats.enum_queries,
            r.stats.fa_inclusions,
            r.stats.total_time.as_secs_f64()
        );
        for f in &r.failures {
            if m.expect_verified {
                println!("        failure: {f}");
            }
        }
    }
    ok
}

fn print_cache_line(summary: &RunSummary, lifetime: hat_engine::CacheStatsSnapshot) {
    let c = &summary.cache;
    let pruned: usize = summary.benchmarks.iter().map(|b| b.alphabet_pruned()).sum();
    let dfa_states: usize = summary.benchmarks.iter().map(|b| b.dfa_states()).sum();
    let product_states: usize = summary.benchmarks.iter().map(|b| b.product_states()).sum();
    let shape_hits: usize = summary.benchmarks.iter().map(|b| b.shape_memo_hits()).sum();
    let subsumed: usize = summary.benchmarks.iter().map(|b| b.subsumed_pairs()).sum();
    let subsume_checks: usize = summary
        .benchmarks
        .iter()
        .map(|b| b.subsumption_checks())
        .sum();
    let simulation_hits: usize = summary
        .benchmarks
        .iter()
        .map(|b| b.simulation_memo_hits())
        .sum();
    println!(
        "cache: {} hits / {} misses ({:.1}% hit rate), {} minterm-set hits, {} transition-memo hits, {} shape-memo hits, {} simulation-memo hits, {} shared-tier locks, {} loaded from disk, {} stale; dfa: {} states, {} product states, {} pairs subsumed ({} probes), {} alphabet symbols pruned; wall {:.2}s",
        c.hits,
        c.misses,
        100.0 * c.hit_rate(),
        c.minterm_hits,
        c.transition_hits,
        shape_hits,
        simulation_hits,
        c.lock_acquisitions,
        lifetime.disk_loaded,
        lifetime.stale,
        dfa_states,
        product_states,
        subsumed,
        subsume_checks,
        pruned,
        summary.wall.as_secs_f64()
    );
}

/// Runs a verification request on a marpled daemon and renders the report through the
/// same `print_run`/`print_cache_line` paths as a local run — the output format is
/// identical, only the work happens in the daemon's warm, shared engine.
fn run_remote(
    benches: &[Benchmark],
    request: Request,
    addr: &Addr,
    deadline_ms: Option<u64>,
) -> Result<bool, String> {
    let mut client = RemoteClient::connect(addr)?;
    let outcome = client.verify_with_deadline(request, deadline_ms, |_, _, _| {})?;
    // The lifetime counters a local run reads off its own store (disk-loaded/stale)
    // come from the daemon's status instead.
    let lifetime = client.cache_stats()?.cache;
    let mut ok = true;
    for bench in benches {
        // Match by configuration, not position: a cancelled run may be missing whole
        // benchmarks, not just trailing methods.
        match outcome
            .summary
            .benchmarks
            .iter()
            .find(|r| r.adt == bench.adt && r.library == bench.library)
        {
            Some(run) => ok &= print_run(bench, run),
            None => {
                ok = false;
                println!(
                    "== {} / {} — cancelled before any method ran",
                    bench.adt, bench.library
                );
            }
        }
    }
    if outcome.summary.was_cancelled() {
        ok = false;
        println!(
            "run cancelled: {} queued job{} dropped (deadline or explicit cancel)",
            outcome.summary.cancelled,
            if outcome.summary.cancelled == 1 {
                ""
            } else {
                "s"
            }
        );
    }
    print_cache_line(&outcome.summary, lifetime);
    Ok(ok)
}

fn run(benches: Vec<Benchmark>, opts: &Options, request: Request) -> bool {
    if let Some(addr) = &opts.remote {
        match run_remote(&benches, request, addr, opts.deadline_ms) {
            Ok(ok) => return ok,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    let engine = match Engine::new(EngineConfig {
        jobs: opts.jobs,
        cache_path: opts.cache_path.clone(),
        enumeration: opts.enumeration,
        prune: opts.prune,
        inclusion: opts.inclusion,
        subsume: opts.subsume,
        local_tiers: opts.local_tiers,
        memtable_bytes: None,
    }) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("cannot open cache: {e}");
            std::process::exit(2);
        }
    };
    let summary = engine.check_benchmarks(&benches);
    let mut ok = true;
    for (bench, run) in benches.iter().zip(&summary.benchmarks) {
        ok &= print_run(bench, run);
    }
    print_cache_line(&summary, engine.cache().stats());
    ok
}

/// `marple cache stats <path>` — read-only scan of manifest + segments: per-kind
/// counts, segment and torn-segment counts, live/dead ratio, header version. Never
/// takes the writer lock, so it prints honest numbers even while a daemon holds the
/// store.
fn cache_stats(path: &str) -> Result<(), String> {
    let stats = MemoStore::inspect(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    match (&stats.header, stats.version) {
        (None, _) => {
            println!("{path}: empty file (a fresh store will start at v6)");
            return Ok(());
        }
        (Some(h), None) => {
            println!("{path}: foreign header `{h}` — not a hat-engine cache this binary can read");
            return Ok(());
        }
        (Some(h), Some(v)) => println!("{path}: header `{h}` (v{v}), {} bytes", stats.bytes),
    }
    for (kind, count) in [
        (RecordKind::Solver, stats.solver),
        (RecordKind::Inclusion, stats.inclusion),
        (RecordKind::Shape, stats.shape),
        (RecordKind::Minterms, stats.minterms),
        (RecordKind::Transition, stats.transitions),
        (RecordKind::Subsumption, stats.subsumption),
    ] {
        println!("  {:<24} {:>8}", format!("{}:", kind.label()), count);
    }
    if stats.version == Some(6) {
        let torn = if stats.torn_segments > 0 {
            format!(" ({} torn, degraded to cold)", stats.torn_segments)
        } else {
            String::new()
        };
        println!("  {:<24} {:>8}{torn}", "segment files:", stats.segments);
    }
    println!(
        "  live: {} / dead: {} ({} duplicate, {} malformed) — {:.1}% dead",
        stats.live(),
        stats.dead(),
        stats.duplicates,
        stats.malformed,
        100.0 * stats.dead_ratio()
    );
    if stats.dead() > 0 {
        println!("  run `marple cache compact {path}` to drop the dead records");
    }
    Ok(())
}

/// `marple cache compact <path>` — nudge the background compactor: drain the memtable
/// and merge every segment family with more than one segment, dropping dead records.
fn cache_compact(path: &str) -> Result<(), String> {
    // with_disk_log would happily create a fresh log at a mistyped path; compacting
    // only makes sense for a file that exists.
    if !std::path::Path::new(path).is_file() {
        return Err(format!("cannot compact `{path}`: no such file"));
    }
    let store = MemoStore::with_disk_log(path).map_err(|e| format!("cannot open `{path}`: {e}"))?;
    if store.degraded() {
        return Err(format!(
            "`{path}` is locked by another process; retry when its run finishes"
        ));
    }
    let report = store
        .compact()
        .map_err(|e| format!("compaction failed: {e}"))?;
    println!(
        "{path}: {} records / {} bytes -> {} records / {} bytes",
        report.records_before, report.bytes_before, report.records_after, report.bytes_after
    );
    Ok(())
}

/// `marple daemon start` — run a marpled daemon in the foreground (background it with
/// `&` or a service manager; `marpled` is the same server as a standalone binary).
fn daemon_start(opts: &Options) -> Result<(), String> {
    let config = DaemonConfig {
        addr: opts.remote.clone().unwrap_or_else(Addr::default_socket),
        engine: EngineConfig {
            jobs: opts.jobs,
            cache_path: opts.cache_path.clone(),
            enumeration: opts.enumeration,
            prune: opts.prune,
            inclusion: opts.inclusion,
            subsume: opts.subsume,
            local_tiers: opts.local_tiers,
            memtable_bytes: None,
        },
        max_connections: opts.max_connections,
        max_client_jobs: opts.max_client_jobs,
        quiet: false,
    };
    let handle = Daemon::spawn(config).map_err(|e| format!("cannot start the daemon: {e}"))?;
    handle.join();
    Ok(())
}

/// `marple daemon status` — one status line plus per-client statistics.
fn daemon_status(addr: &Addr) -> Result<(), String> {
    let mut client = RemoteClient::connect(addr)?;
    let status = client.cache_stats()?;
    println!(
        "{} — pid {}, up {:.0}s, {} worker{}",
        status.addr,
        status.pid,
        status.uptime_secs,
        status.workers,
        if status.workers == 1 { "" } else { "s" }
    );
    match (&status.cache_path, status.degraded) {
        (Some(path), false) => println!(
            "store: {} entries, log `{path}` (lock held)",
            status.entries
        ),
        (Some(path), true) => {
            println!("store: {} entries, log `{path}` (DEGRADED)", status.entries)
        }
        (None, _) => println!("store: {} entries, in memory only", status.entries),
    }
    println!(
        "served: {} requests, {} verification jobs; lifetime cache: {} hits / {} misses, {} loaded from disk, {} stale",
        status.requests_served,
        status.jobs_completed,
        status.cache.hits,
        status.cache.misses,
        status.cache.disk_loaded,
        status.cache.stale
    );
    println!(
        "scheduler: {} job{} in flight, {} dedup hit{}, {} run{} / {} job{} cancelled, queue wait p50 {:.1}ms / p95 {:.1}ms",
        status.in_flight_jobs,
        if status.in_flight_jobs == 1 { "" } else { "s" },
        status.dedup_hits,
        if status.dedup_hits == 1 { "" } else { "s" },
        status.runs_cancelled,
        if status.runs_cancelled == 1 { "" } else { "s" },
        status.jobs_cancelled,
        if status.jobs_cancelled == 1 { "" } else { "s" },
        status.queue_wait_p50_ms,
        status.queue_wait_p95_ms
    );
    println!(
        "connections: {} active / {} closed, cap {}, {} busy rejection{}",
        status.active_connections,
        status.closed_connections,
        if status.max_connections == 0 {
            "unlimited".to_string()
        } else {
            status.max_connections.to_string()
        },
        status.busy_rejections,
        if status.busy_rejections == 1 { "" } else { "s" }
    );
    for c in &status.clients {
        if c.client == 0 {
            // The aggregate row of closed clients beyond the retention window.
            println!(
                "  older closed clients (aggregated): {} requests, {} reports, {} hits / {} misses contributed",
                c.requests, c.reports, c.hits, c.misses
            );
            continue;
        }
        println!(
            "  client {} [{}] up {:.0}s: {} requests, {} reports, {} hits / {} misses contributed",
            c.client,
            if c.active { "active" } else { "closed" },
            c.connected_secs,
            c.requests,
            c.reports,
            c.hits,
            c.misses
        );
    }
    Ok(())
}

/// `marple daemon stop [--now]` — graceful shutdown, then wait for the daemon to
/// finish draining (its socket disappearing is the last step of its teardown). The
/// wait is not silent: a status probe *before* the shutdown reports how much work is
/// in flight (afterwards the daemon accepts no new connections, so it cannot be asked
/// any more), and a progress line is printed while the drain runs. `--now` asks the
/// daemon to drop its queued jobs so only running ones drain.
fn daemon_stop(addr: &Addr, now: bool) -> Result<(), String> {
    let mut client = RemoteClient::connect(addr)?;
    let status = client.cache_stats()?;
    // `active_connections` includes this very probe.
    let others = status.active_connections.saturating_sub(1);
    if status.in_flight_jobs > 0 || others > 0 {
        println!(
            "daemon at {addr}: {} job{} in flight, {} other client{} connected — stopping{}",
            status.in_flight_jobs,
            if status.in_flight_jobs == 1 { "" } else { "s" },
            others,
            if others == 1 { "" } else { "s" },
            if now {
                " now (queued jobs will be dropped)"
            } else {
                " after the drain (use --now to drop queued jobs)"
            }
        );
    }
    client.shutdown(now)?;
    let started = std::time::Instant::now();
    let deadline = started + std::time::Duration::from_secs(600);
    let mut next_progress = started + std::time::Duration::from_secs(5);
    loop {
        let stopped = match addr {
            Addr::Unix(path) => !path.exists(),
            // TCP leaves no file behind; gone means nothing accepts any more.
            Addr::Tcp(_) => RemoteClient::connect(addr).is_err(),
        };
        if stopped {
            println!("daemon at {addr} stopped");
            return Ok(());
        }
        let t = std::time::Instant::now();
        if t > deadline {
            return Err(format!(
                "the daemon at {addr} acknowledged the shutdown but is still draining; \
                 check it with `marple daemon status`"
            ));
        }
        if t >= next_progress {
            println!(
                "still draining after {:.0}s (running jobs must finish{})",
                started.elapsed().as_secs_f64(),
                if now { "" } else { "; --now skips queued ones" }
            );
            next_progress += std::time::Duration::from_secs(5);
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

/// `marple fuzz` — run generated verdict-known configurations through the stack and
/// assert every observed verdict against the constructed one. Returns `true` when the
/// run is clean.
fn fuzz(opts: &Options) -> bool {
    let mut cfg = hat_gen::fuzz::FuzzConfig::new(opts.seed, opts.count);
    cfg.cache_path = opts.cache_path.clone();
    cfg.exhaustive_knobs = opts.exhaustive;
    println!(
        "fuzzing {} configuration{} from seed {} ({} knob combination{} per configuration{}{})",
        opts.count,
        if opts.count == 1 { "" } else { "s" },
        opts.seed,
        if opts.exhaustive { 96 } else { 1 },
        if opts.exhaustive { "s" } else { "" },
        if opts.exhaustive {
            ""
        } else {
            ", rotating through all 96"
        },
        if opts.cache_path.is_some() {
            "; LSM store attached"
        } else {
            ""
        },
    );
    let outcome = hat_gen::fuzz::fuzz(&cfg, &mut |line| println!("{line}"));
    let local_ok = match &outcome.failure {
        None => {
            println!(
                "clean: {} configurations, {} verdicts asserted, 0 disagreements",
                outcome.checked, outcome.verdicts
            );
            true
        }
        Some(f) => {
            println!("DISAGREEMENT in gen/{}:", f.spec.library_name());
            for d in &f.disagreements {
                println!("  {d}");
            }
            println!(
                "shrunk reproducer: gen/{} ({} method{})",
                f.shrunk.library_name(),
                f.shrunk.live_methods().len(),
                if f.shrunk.live_methods().len() == 1 {
                    ""
                } else {
                    "s"
                }
            );
            println!(
                "  replay with: marple check gen {}",
                f.shrunk.library_name()
            );
            for d in &f.shrunk_disagreements {
                println!("  {d}");
            }
            false
        }
    };
    if !local_ok {
        return false;
    }
    match &opts.remote {
        None => true,
        Some(addr) => match fuzz_remote(opts, addr) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("{e}");
                false
            }
        },
    }
}

/// The daemon-wire stage of `marple fuzz --remote`: re-check each generated
/// configuration *by name* over the socket (the daemon regenerates it server-side)
/// and hold the wire reports to the same constructed verdicts.
fn fuzz_remote(opts: &Options, addr: &Addr) -> Result<bool, String> {
    let mut client = RemoteClient::connect(addr)?;
    let mut verdicts = 0u64;
    for index in 0..opts.count {
        let spec = hat_gen::spec(opts.seed, index);
        let bench = spec.build();
        let request = Request::Check {
            adt: bench.adt.clone(),
            library: bench.library.clone(),
        };
        let outcome = client.verify_with_deadline(request, opts.deadline_ms, |_, _, _| {})?;
        let Some(run) = outcome
            .summary
            .benchmarks
            .iter()
            .find(|r| r.adt == bench.adt && r.library == bench.library)
        else {
            println!(
                "DISAGREEMENT in gen/{}: the daemon returned no report for it",
                bench.library
            );
            return Ok(false);
        };
        let disagreements = hat_gen::fuzz::disagreements_in("remote", &bench, &run.reports);
        verdicts += bench.methods.len() as u64;
        if !disagreements.is_empty() {
            println!("DISAGREEMENT in gen/{} over the wire:", bench.library);
            for d in &disagreements {
                println!("  {d}");
            }
            let shrunk = hat_gen::shrink::shrink(&spec, |cand| {
                let b = cand.build();
                let req = Request::Check {
                    adt: b.adt.clone(),
                    library: b.library.clone(),
                };
                client
                    .verify_with_deadline(req, opts.deadline_ms, |_, _, _| {})
                    .ok()
                    .and_then(|o| {
                        o.summary
                            .benchmarks
                            .iter()
                            .find(|r| r.library == b.library)
                            .map(|r| {
                                !hat_gen::fuzz::disagreements_in("remote", &b, &r.reports)
                                    .is_empty()
                            })
                    })
                    .unwrap_or(false)
            });
            println!(
                "shrunk reproducer: gen/{} — replay with: marple check gen {} --remote",
                shrunk.library_name(),
                shrunk.library_name()
            );
            return Ok(false);
        }
    }
    println!(
        "remote stage clean: {} configurations, {} wire verdicts asserted",
        opts.count, verdicts
    );
    Ok(true)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") | None => {
            println!("Available benchmark configurations (ADT / library):");
            for b in all_benchmarks() {
                println!(
                    "  {:<15} {:<11} — {}",
                    b.adt, b.library, b.invariant_description
                );
            }
            println!("\nRun `marple check <adt> <library>` to verify one of them.");
        }
        Some("check") => {
            let opts = parse_options(&args[1..]).unwrap_or_else(|e| {
                eprintln!("{e}\nusage: marple check <adt> <library> [--remote [ADDR]] [--deadline-ms N] [--jobs N] [--cache PATH] [--enum naive|incremental] [--prune on|off] [--inclusion onthefly|materialise] [--subsume off|syntactic|simulation] [--local-tier on|off]");
                std::process::exit(2);
            });
            let (Some(adt), Some(lib)) = (opts.positional.first(), opts.positional.get(1)) else {
                eprintln!("usage: marple check <adt> <library> [--remote [ADDR]] [--deadline-ms N] [--jobs N] [--cache PATH] [--enum naive|incremental] [--prune on|off] [--inclusion onthefly|materialise] [--subsume off|syntactic|simulation] [--local-tier on|off]");
                std::process::exit(2);
            };
            // Suite configurations by name; `gen/s<seed>-i<index>…` regenerates a
            // fuzz configuration (including shrunk reproducers) from the name alone.
            match find(adt, lib).or_else(|| hat_gen::find(adt, lib)) {
                Some(b) => {
                    let request = Request::Check {
                        adt: b.adt.to_string(),
                        library: b.library.to_string(),
                    };
                    let ok = run(vec![b], &opts, request);
                    std::process::exit(if ok { 0 } else { 1 });
                }
                None => {
                    eprintln!("unknown configuration `{adt}/{lib}`; try `marple list`");
                    std::process::exit(2);
                }
            }
        }
        Some("check-all") => {
            let opts = parse_options(&args[1..]).unwrap_or_else(|e| {
                eprintln!("{e}\nusage: marple check-all [--remote [ADDR]] [--deadline-ms N] [--jobs N] [--cache PATH] [--enum naive|incremental] [--prune on|off] [--inclusion onthefly|materialise] [--subsume off|syntactic|simulation] [--local-tier on|off]");
                std::process::exit(2);
            });
            let ok = run(all_benchmarks(), &opts, Request::CheckAll);
            std::process::exit(if ok { 0 } else { 1 });
        }
        Some("fuzz") => {
            let opts = parse_options(&args[1..]).unwrap_or_else(|e| {
                eprintln!("{e}\nusage: marple fuzz [--seed S] [--count N] [--exhaustive] [--cache PATH] [--remote [ADDR]] [--deadline-ms N]");
                std::process::exit(2);
            });
            std::process::exit(if fuzz(&opts) { 0 } else { 1 });
        }
        Some("cache") => {
            let usage = "usage: marple cache stats <path> | marple cache compact <path>";
            let result = match (args.get(1).map(String::as_str), args.get(2)) {
                (Some("stats"), Some(path)) => cache_stats(path),
                (Some("compact"), Some(path)) => cache_compact(path),
                _ => Err(usage.to_string()),
            };
            if let Err(e) = result {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
        Some("daemon") => {
            let usage = "usage: marple daemon start [--remote ADDR] [--cache PATH] [--jobs N] [--max-connections N] [--max-client-jobs N] | marple daemon status [--remote ADDR] | marple daemon stop [--now] [--remote ADDR]";
            let opts = parse_options(&args[2..]).unwrap_or_else(|e| {
                eprintln!("{e}\n{usage}");
                std::process::exit(2);
            });
            let addr = opts.remote.clone().unwrap_or_else(Addr::default_socket);
            let result = match args.get(1).map(String::as_str) {
                Some("start") => daemon_start(&opts),
                Some("status") => daemon_status(&addr),
                Some("stop") => daemon_stop(&addr, opts.now),
                _ => Err(usage.to_string()),
            };
            if let Err(e) = result {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
        Some(other) => {
            eprintln!(
                "unknown command `{other}`; commands: list, check, check-all, fuzz, cache, daemon"
            );
            std::process::exit(2);
        }
    }
}
