//! Ground evaluation of terms and formulas.
//!
//! The interpreter (`hat-lang`) and the trace-acceptance judgement (`hat-sfa`) both need to
//! decide whether a *ground* qualifier holds for concrete event arguments. Method predicates
//! and uninterpreted pure functions are given meaning by an [`Interpretation`].

use crate::constant::Constant;
use crate::formula::{Atom, Formula};
use crate::term::{FuncSym, Term};
use crate::Ident;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors raised during ground evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable had no binding in the evaluation context.
    UnboundVariable(Ident),
    /// A function or predicate was applied to values outside its domain.
    TypeMismatch(String),
    /// The interpretation does not define a symbol.
    UnknownSymbol(String),
    /// Quantification over an infinite sort cannot be evaluated.
    UnevaluableQuantifier(Ident),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            EvalError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EvalError::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
            EvalError::UnevaluableQuantifier(x) => {
                write!(
                    f,
                    "cannot evaluate quantifier over infinite sort (variable `{x}`)"
                )
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Implementation of a named pure function.
pub type FuncImpl = Arc<dyn Fn(&[Constant]) -> Option<Constant> + Send + Sync>;
/// Implementation of a method predicate.
pub type PredImpl = Arc<dyn Fn(&[Constant]) -> Option<bool> + Send + Sync>;

/// An interpretation of uninterpreted symbols: named pure functions (e.g. `parent`)
/// and method predicates (e.g. `isDir`).
#[derive(Clone, Default)]
pub struct Interpretation {
    funcs: BTreeMap<String, FuncImpl>,
    preds: BTreeMap<String, PredImpl>,
}

impl fmt::Debug for Interpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interpretation")
            .field("funcs", &self.funcs.keys().collect::<Vec<_>>())
            .field("preds", &self.preds.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Interpretation {
    /// An interpretation with no symbols defined.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a pure function.
    pub fn define_func<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: Fn(&[Constant]) -> Option<Constant> + Send + Sync + 'static,
    {
        self.funcs.insert(name.into(), Arc::new(f));
        self
    }

    /// Registers a method predicate.
    pub fn define_pred<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: Fn(&[Constant]) -> Option<bool> + Send + Sync + 'static,
    {
        self.preds.insert(name.into(), Arc::new(f));
        self
    }

    /// Evaluates a named function.
    pub fn func(&self, name: &str, args: &[Constant]) -> Result<Constant, EvalError> {
        match self.funcs.get(name) {
            Some(f) => f(args).ok_or_else(|| {
                EvalError::TypeMismatch(format!("function `{name}` rejected its arguments"))
            }),
            None => Err(EvalError::UnknownSymbol(name.to_string())),
        }
    }

    /// Evaluates a method predicate.
    pub fn pred(&self, name: &str, args: &[Constant]) -> Result<bool, EvalError> {
        match self.preds.get(name) {
            Some(f) => f(args).ok_or_else(|| {
                EvalError::TypeMismatch(format!("predicate `{name}` rejected its arguments"))
            }),
            None => Err(EvalError::UnknownSymbol(name.to_string())),
        }
    }

    /// The "path" interpretation used by the file-system benchmarks: paths are atoms whose
    /// textual form is a `/`-separated path, `parent` strips the last component, `isRoot`
    /// recognises `/`, and byte-blob predicates recognise the atoms produced by the
    /// `File` library model (`dir:*`, `file:*`, `del:*`).
    pub fn filesystem() -> Self {
        let mut i = Interpretation::new();
        i.define_func("parent", |args| match args {
            [Constant::Atom(p)] => Some(Constant::Atom(parent_path(p))),
            _ => None,
        });
        i.define_pred("isRoot", |args| match args {
            [Constant::Atom(p)] => Some(p == "/"),
            _ => None,
        });
        i.define_pred("isDir", |args| match args {
            [Constant::Atom(b)] => Some(b.starts_with("dir:")),
            _ => None,
        });
        i.define_pred("isFile", |args| match args {
            [Constant::Atom(b)] => Some(b.starts_with("file:")),
            _ => None,
        });
        i.define_pred("isDel", |args| match args {
            [Constant::Atom(b)] => Some(b.starts_with("del:")),
            _ => None,
        });
        i
    }
}

/// Computes the parent of a `/`-separated path ("/a/b" ↦ "/a", "/a" ↦ "/", "/" ↦ "/").
pub fn parent_path(p: &str) -> String {
    if p == "/" {
        return "/".to_string();
    }
    match p.rfind('/') {
        Some(0) => "/".to_string(),
        Some(i) => p[..i].to_string(),
        None => "/".to_string(),
    }
}

/// A ground evaluation context: variable bindings plus an interpretation.
#[derive(Debug, Clone, Default)]
pub struct EvalCtx {
    /// Variable bindings.
    pub bindings: BTreeMap<Ident, Constant>,
    /// Interpretation of uninterpreted symbols.
    pub interp: Interpretation,
}

impl EvalCtx {
    /// Creates a context with the given interpretation and no bindings.
    pub fn new(interp: Interpretation) -> Self {
        EvalCtx {
            bindings: BTreeMap::new(),
            interp,
        }
    }

    /// Adds a variable binding.
    pub fn bind(&mut self, var: impl Into<Ident>, c: Constant) -> &mut Self {
        self.bindings.insert(var.into(), c);
        self
    }

    /// Evaluates a term to a constant.
    pub fn eval_term(&self, t: &Term) -> Result<Constant, EvalError> {
        match t {
            Term::Var(x) => self
                .bindings
                .get(x)
                .cloned()
                .ok_or_else(|| EvalError::UnboundVariable(x.clone())),
            Term::Const(c) => Ok(c.clone()),
            Term::App(sym, args) => {
                let vals: Vec<Constant> = args
                    .iter()
                    .map(|a| self.eval_term(a))
                    .collect::<Result<_, _>>()?;
                match sym {
                    FuncSym::Add | FuncSym::Sub | FuncSym::Mul | FuncSym::Mod => {
                        let (a, b) = match (&vals[..], sym) {
                            ([Constant::Int(a), Constant::Int(b)], _) => (*a, *b),
                            _ => {
                                return Err(EvalError::TypeMismatch(format!(
                                    "arithmetic on non-integers in `{t}`"
                                )))
                            }
                        };
                        let r = match sym {
                            FuncSym::Add => a.wrapping_add(b),
                            FuncSym::Sub => a.wrapping_sub(b),
                            FuncSym::Mul => a.wrapping_mul(b),
                            FuncSym::Mod => {
                                if b == 0 {
                                    return Err(EvalError::TypeMismatch("mod by zero".into()));
                                }
                                a.rem_euclid(b)
                            }
                            _ => unreachable!(),
                        };
                        Ok(Constant::Int(r))
                    }
                    FuncSym::Neg => match &vals[..] {
                        [Constant::Int(a)] => Ok(Constant::Int(-a)),
                        _ => Err(EvalError::TypeMismatch("negation of non-integer".into())),
                    },
                    FuncSym::Named(name) => self.interp.func(name, &vals),
                }
            }
        }
    }

    /// Evaluates an atom to a boolean.
    pub fn eval_atom(&self, a: &Atom) -> Result<bool, EvalError> {
        match a {
            Atom::Eq(l, r) => Ok(self.eval_term(l)? == self.eval_term(r)?),
            Atom::Lt(l, r) => match (self.eval_term(l)?, self.eval_term(r)?) {
                (Constant::Int(a), Constant::Int(b)) => Ok(a < b),
                _ => Err(EvalError::TypeMismatch("ordering on non-integers".into())),
            },
            Atom::Le(l, r) => match (self.eval_term(l)?, self.eval_term(r)?) {
                (Constant::Int(a), Constant::Int(b)) => Ok(a <= b),
                _ => Err(EvalError::TypeMismatch("ordering on non-integers".into())),
            },
            Atom::Pred(p, args) => {
                let vals: Vec<Constant> = args
                    .iter()
                    .map(|t| self.eval_term(t))
                    .collect::<Result<_, _>>()?;
                self.interp.pred(p, &vals)
            }
            Atom::BoolTerm(t) => match self.eval_term(t)? {
                Constant::Bool(b) => Ok(b),
                other => Err(EvalError::TypeMismatch(format!(
                    "expected boolean, got `{other}`"
                ))),
            },
        }
    }

    /// Evaluates a formula to a boolean. Quantifiers over finite sorts are expanded;
    /// quantifiers over infinite sorts are an error.
    pub fn eval_formula(&self, f: &Formula) -> Result<bool, EvalError> {
        match f {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Atom(a) => self.eval_atom(a),
            Formula::Not(g) => Ok(!self.eval_formula(g)?),
            Formula::And(fs) => {
                for g in fs {
                    if !self.eval_formula(g)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(fs) => {
                for g in fs {
                    if self.eval_formula(g)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Implies(p, q) => Ok(!self.eval_formula(p)? || self.eval_formula(q)?),
            Formula::Iff(p, q) => Ok(self.eval_formula(p)? == self.eval_formula(q)?),
            Formula::Forall(x, sort, body) => {
                let domain: Vec<Constant> = match sort {
                    crate::sort::Sort::Unit => vec![Constant::Unit],
                    crate::sort::Sort::Bool => vec![Constant::Bool(false), Constant::Bool(true)],
                    _ => return Err(EvalError::UnevaluableQuantifier(x.clone())),
                };
                let mut ctx = self.clone();
                for c in domain {
                    ctx.bind(x.clone(), c);
                    if !ctx.eval_formula(body)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    #[test]
    fn arithmetic_evaluation() {
        let ctx = EvalCtx::default();
        let t = Term::add(Term::int(2), Term::sub(Term::int(10), Term::int(3)));
        assert_eq!(ctx.eval_term(&t).unwrap(), Constant::Int(9));
    }

    #[test]
    fn unbound_variable_errors() {
        let ctx = EvalCtx::default();
        assert_eq!(
            ctx.eval_term(&Term::var("x")),
            Err(EvalError::UnboundVariable("x".into()))
        );
    }

    #[test]
    fn filesystem_interpretation_models_paths() {
        let mut ctx = EvalCtx::new(Interpretation::filesystem());
        ctx.bind("p", Constant::atom("/a/b.txt"));
        let parent = Term::app("parent", vec![Term::var("p")]);
        assert_eq!(ctx.eval_term(&parent).unwrap(), Constant::atom("/a"));
        assert!(!ctx
            .eval_formula(&Formula::pred("isRoot", vec![Term::var("p")]))
            .unwrap());
        ctx.bind("q", Constant::atom("/"));
        assert!(ctx
            .eval_formula(&Formula::pred("isRoot", vec![Term::var("q")]))
            .unwrap());
        ctx.bind("b", Constant::atom("dir:1"));
        assert!(ctx
            .eval_formula(&Formula::pred("isDir", vec![Term::var("b")]))
            .unwrap());
        assert!(!ctx
            .eval_formula(&Formula::pred("isFile", vec![Term::var("b")]))
            .unwrap());
    }

    #[test]
    fn parent_path_edge_cases() {
        assert_eq!(parent_path("/"), "/");
        assert_eq!(parent_path("/a"), "/");
        assert_eq!(parent_path("/a/b"), "/a");
        assert_eq!(parent_path("/a/b/c.txt"), "/a/b");
    }

    #[test]
    fn finite_quantifier_expansion() {
        let ctx = EvalCtx::default();
        // forall b:bool. b || !b
        let f = Formula::forall(
            "b",
            Sort::Bool,
            Formula::or(vec![
                Formula::bool_term(Term::var("b")),
                Formula::not(Formula::bool_term(Term::var("b"))),
            ]),
        );
        assert!(ctx.eval_formula(&f).unwrap());
        // forall b:bool. b  is false
        let g = Formula::forall("b", Sort::Bool, Formula::bool_term(Term::var("b")));
        assert!(!ctx.eval_formula(&g).unwrap());
    }

    #[test]
    fn infinite_quantifier_is_rejected() {
        let ctx = EvalCtx::default();
        let f = Formula::forall("n", Sort::Int, Formula::le(Term::int(0), Term::var("n")));
        assert!(matches!(
            ctx.eval_formula(&f),
            Err(EvalError::UnevaluableQuantifier(_))
        ));
    }

    #[test]
    fn ordering_atoms() {
        let ctx = EvalCtx::default();
        assert!(ctx
            .eval_formula(&Formula::lt(Term::int(1), Term::int(2)))
            .unwrap());
        assert!(!ctx
            .eval_formula(&Formula::lt(Term::int(2), Term::int(2)))
            .unwrap());
        assert!(ctx
            .eval_formula(&Formula::le(Term::int(2), Term::int(2)))
            .unwrap());
    }
}
