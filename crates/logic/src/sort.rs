//! Base sorts of the qualifier logic and of λᴱ base types.

use std::fmt;

/// A base sort (the `b` of the paper's grammar).
///
/// Beyond the built-in sorts the verifier uses *named* uninterpreted sorts for the
/// datatypes manipulated by the stateful libraries (`Path.t`, `Bytes.t`, `Elem.t`,
/// `Node.t`, ...). Values of a named sort support only equality and method predicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// The unit sort with a single inhabitant.
    Unit,
    /// Booleans.
    Bool,
    /// Unbounded integers (the paper's `int` / `nat`).
    Int,
    /// An uninterpreted, named sort (e.g. `Path.t`).
    Named(String),
}

impl Sort {
    /// A named sort; `Sort::named("Path.t")`.
    pub fn named(name: impl Into<String>) -> Self {
        Sort::Named(name.into())
    }

    /// Returns `true` for sorts whose values the arithmetic theory understands.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Sort::Int)
    }

    /// Returns `true` if this sort has finitely many inhabitants (unit, bool).
    pub fn is_finite(&self) -> bool {
        matches!(self, Sort::Unit | Sort::Bool)
    }

    /// A human-readable name, used in error messages and pretty printing.
    pub fn name(&self) -> &str {
        match self {
            Sort::Unit => "unit",
            Sort::Bool => "bool",
            Sort::Int => "int",
            Sort::Named(n) => n,
        }
    }

    /// Parses a sort name as written in the surface syntax.
    pub fn parse(name: &str) -> Self {
        match name {
            "unit" => Sort::Unit,
            "bool" => Sort::Bool,
            "int" | "nat" => Sort::Int,
            other => Sort::Named(other.to_string()),
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_builtin_sorts() {
        assert_eq!(Sort::parse("unit"), Sort::Unit);
        assert_eq!(Sort::parse("bool"), Sort::Bool);
        assert_eq!(Sort::parse("int"), Sort::Int);
        assert_eq!(Sort::parse("nat"), Sort::Int);
    }

    #[test]
    fn parse_named_sort_roundtrips() {
        let s = Sort::parse("Path.t");
        assert_eq!(s, Sort::Named("Path.t".into()));
        assert_eq!(s.to_string(), "Path.t");
        assert!(!s.is_numeric());
        assert!(!s.is_finite());
    }

    #[test]
    fn finite_and_numeric_classification() {
        assert!(Sort::Bool.is_finite());
        assert!(Sort::Unit.is_finite());
        assert!(!Sort::Int.is_finite());
        assert!(Sort::Int.is_numeric());
        assert!(!Sort::Bool.is_numeric());
    }
}
