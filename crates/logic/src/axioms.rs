//! Method predicates and their axiomatisation.
//!
//! The paper pins down the meaning of *method predicates* (`isDir`, `isDel`, ...) with a set
//! of first-order lemmas, e.g. `∀x. isDir(x) ⇒ ¬isDel(x)`. The solver instantiates these
//! axioms over the ground terms of each query (EPR-style Herbrand instantiation), which is
//! sufficient for the verification conditions produced by the type checker.

use crate::formula::Formula;
use crate::sort::Sort;
use crate::Ident;
use std::collections::BTreeMap;
use std::fmt;

/// Declaration of a method predicate: name and argument sorts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodPredicate {
    /// Predicate name, e.g. `isDir`.
    pub name: Ident,
    /// Argument sorts.
    pub args: Vec<Sort>,
}

impl MethodPredicate {
    /// Declares a method predicate.
    pub fn new(name: impl Into<Ident>, args: Vec<Sort>) -> Self {
        MethodPredicate {
            name: name.into(),
            args,
        }
    }
}

impl fmt::Display for MethodPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} : (", self.name)?;
        for (i, s) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ") -> bool")
    }
}

/// A universally quantified axiom: `∀ vars. body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axiom {
    /// Human-readable name used in diagnostics.
    pub name: String,
    /// Quantified variables and their sorts.
    pub vars: Vec<(Ident, Sort)>,
    /// The quantifier-free body.
    pub body: Formula,
}

impl Axiom {
    /// Creates an axiom.
    pub fn new(name: impl Into<String>, vars: Vec<(Ident, Sort)>, body: Formula) -> Self {
        Axiom {
            name: name.into(),
            vars,
            body,
        }
    }
}

/// Declarations of method predicates, uninterpreted function signatures and axioms,
/// shared by the solver and the front-end.
#[derive(Debug, Clone, Default)]
pub struct AxiomSet {
    /// Declared method predicates.
    pub predicates: BTreeMap<Ident, MethodPredicate>,
    /// Declared uninterpreted function result sorts, e.g. `parent : Path.t -> Path.t`.
    pub functions: BTreeMap<Ident, (Vec<Sort>, Sort)>,
    /// Axioms relating the predicates and functions.
    pub axioms: Vec<Axiom>,
}

impl AxiomSet {
    /// An empty axiom set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a method predicate.
    pub fn declare_pred(&mut self, name: impl Into<Ident>, args: Vec<Sort>) -> &mut Self {
        let name = name.into();
        self.predicates
            .insert(name.clone(), MethodPredicate::new(name, args));
        self
    }

    /// Declares an uninterpreted function.
    pub fn declare_func(
        &mut self,
        name: impl Into<Ident>,
        args: Vec<Sort>,
        ret: Sort,
    ) -> &mut Self {
        self.functions.insert(name.into(), (args, ret));
        self
    }

    /// Adds an axiom.
    pub fn add_axiom(&mut self, ax: Axiom) -> &mut Self {
        self.axioms.push(ax);
        self
    }

    /// Merges another axiom set into this one (later declarations win).
    pub fn extend(&mut self, other: &AxiomSet) -> &mut Self {
        for (k, v) in &other.predicates {
            self.predicates.insert(k.clone(), v.clone());
        }
        for (k, v) in &other.functions {
            self.functions.insert(k.clone(), v.clone());
        }
        self.axioms.extend(other.axioms.iter().cloned());
        self
    }

    /// Whether a predicate is declared.
    pub fn has_pred(&self, name: &str) -> bool {
        self.predicates.contains_key(name)
    }

    /// Result sort of an uninterpreted function, if declared.
    pub fn func_ret_sort(&self, name: &str) -> Option<&Sort> {
        self.functions.get(name).map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn declare_and_query() {
        let mut ax = AxiomSet::new();
        ax.declare_pred("isDir", vec![Sort::named("Bytes.t")]);
        ax.declare_func("parent", vec![Sort::named("Path.t")], Sort::named("Path.t"));
        assert!(ax.has_pred("isDir"));
        assert!(!ax.has_pred("isFile"));
        assert_eq!(ax.func_ret_sort("parent"), Some(&Sort::named("Path.t")));
    }

    #[test]
    fn axiom_construction_and_extend() {
        let mut a = AxiomSet::new();
        a.add_axiom(Axiom::new(
            "dir-not-del",
            vec![("x".into(), Sort::named("Bytes.t"))],
            Formula::implies(
                Formula::pred("isDir", vec![Term::var("x")]),
                Formula::not(Formula::pred("isDel", vec![Term::var("x")])),
            ),
        ));
        let mut b = AxiomSet::new();
        b.declare_pred("isDel", vec![Sort::named("Bytes.t")]);
        b.extend(&a);
        assert_eq!(b.axioms.len(), 1);
        assert!(b.has_pred("isDel"));
    }

    #[test]
    fn display_of_predicate_declaration() {
        let p = MethodPredicate::new("isDir", vec![Sort::named("Bytes.t")]);
        assert_eq!(p.to_string(), "isDir : (Bytes.t) -> bool");
    }
}
