//! First-order terms appearing in qualifiers.

use crate::constant::Constant;
use crate::Ident;
use std::collections::BTreeSet;
use std::fmt;

/// Function symbols usable inside qualifier terms.
///
/// Arithmetic symbols are interpreted by both the evaluator and the solver's
/// difference-bound theory (where expressible); `Named` symbols (e.g. `parent`)
/// are treated as uninterpreted functions handled by congruence closure, with
/// their intended meaning pinned down by [`crate::AxiomSet`] lemmas.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuncSym {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Euclidean remainder.
    Mod,
    /// Unary negation.
    Neg,
    /// An uninterpreted pure function such as `parent : Path.t -> Path.t`.
    Named(String),
}

impl FuncSym {
    /// A named (uninterpreted) function symbol.
    pub fn named(name: impl Into<String>) -> Self {
        FuncSym::Named(name.into())
    }

    /// The display name of this symbol.
    pub fn name(&self) -> &str {
        match self {
            FuncSym::Add => "+",
            FuncSym::Sub => "-",
            FuncSym::Mul => "*",
            FuncSym::Mod => "mod",
            FuncSym::Neg => "neg",
            FuncSym::Named(n) => n,
        }
    }
}

impl fmt::Display for FuncSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A first-order term: variable, constant or function application.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable reference.
    Var(Ident),
    /// A constant literal.
    Const(Constant),
    /// Application of a function symbol to argument terms.
    App(FuncSym, Vec<Term>),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl Into<Ident>) -> Self {
        Term::Var(name.into())
    }

    /// The distinguished value variable `ν` used by refinement types.
    pub fn nu() -> Self {
        Term::Var("v".into())
    }

    /// An integer constant term.
    pub fn int(i: i64) -> Self {
        Term::Const(Constant::Int(i))
    }

    /// A boolean constant term.
    pub fn bool(b: bool) -> Self {
        Term::Const(Constant::Bool(b))
    }

    /// The unit constant term.
    pub fn unit() -> Self {
        Term::Const(Constant::Unit)
    }

    /// An atom constant term (value of a named sort).
    pub fn atom(s: impl Into<String>) -> Self {
        Term::Const(Constant::Atom(s.into()))
    }

    /// Application of a named uninterpreted function.
    pub fn app(name: impl Into<String>, args: Vec<Term>) -> Self {
        Term::App(FuncSym::named(name), args)
    }

    /// `lhs + rhs`.
    #[allow(clippy::should_implement_trait)] // associated constructor, not operator overloading
    pub fn add(lhs: Term, rhs: Term) -> Self {
        Term::App(FuncSym::Add, vec![lhs, rhs])
    }

    /// `lhs - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: Term, rhs: Term) -> Self {
        Term::App(FuncSym::Sub, vec![lhs, rhs])
    }

    /// Collects the free variables of the term into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<Ident>) {
        match self {
            Term::Var(x) => {
                out.insert(x.clone());
            }
            Term::Const(_) => {}
            Term::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// The set of free variables of the term.
    pub fn free_vars(&self) -> BTreeSet<Ident> {
        let mut s = BTreeSet::new();
        self.collect_vars(&mut s);
        s
    }

    /// Returns the constant payload if the term is a constant.
    pub fn as_const(&self) -> Option<&Constant> {
        match self {
            Term::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Returns true if the term mentions the given variable.
    pub fn mentions(&self, var: &str) -> bool {
        match self {
            Term::Var(x) => x == var,
            Term::Const(_) => false,
            Term::App(_, args) => args.iter().any(|a| a.mentions(var)),
        }
    }

    /// Capture-avoiding substitution of a variable by a term
    /// (terms have no binders, so this is plain substitution).
    pub fn subst_var(&self, var: &str, replacement: &Term) -> Term {
        match self {
            Term::Var(x) if x == var => replacement.clone(),
            Term::Var(_) | Term::Const(_) => self.clone(),
            Term::App(f, args) => Term::App(
                f.clone(),
                args.iter().map(|a| a.subst_var(var, replacement)).collect(),
            ),
        }
    }

    /// Renames every variable through `f`.
    pub fn rename_vars(&self, f: &dyn Fn(&str) -> Option<Ident>) -> Term {
        match self {
            Term::Var(x) => match f(x) {
                Some(y) => Term::Var(y),
                None => self.clone(),
            },
            Term::Const(_) => self.clone(),
            Term::App(sym, args) => {
                Term::App(sym.clone(), args.iter().map(|a| a.rename_vars(f)).collect())
            }
        }
    }

    /// Size of the term (number of AST nodes), used for ranking heuristics.
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Const(_) => 1,
            Term::App(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(x) => write!(f, "{x}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::App(FuncSym::Add, args) if args.len() == 2 => {
                write!(f, "({} + {})", args[0], args[1])
            }
            Term::App(FuncSym::Sub, args) if args.len() == 2 => {
                write!(f, "({} - {})", args[0], args[1])
            }
            Term::App(FuncSym::Mul, args) if args.len() == 2 => {
                write!(f, "({} * {})", args[0], args[1])
            }
            Term::App(FuncSym::Mod, args) if args.len() == 2 => {
                write!(f, "({} mod {})", args[0], args[1])
            }
            Term::App(sym, args) => {
                write!(f, "{sym}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<Constant> for Term {
    fn from(c: Constant) -> Self {
        Term::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_of_nested_application() {
        let t = Term::app("parent", vec![Term::var("p")]);
        let t2 = Term::add(t, Term::var("q"));
        let fv = t2.free_vars();
        assert!(fv.contains("p"));
        assert!(fv.contains("q"));
        assert_eq!(fv.len(), 2);
    }

    #[test]
    fn substitution_replaces_all_occurrences() {
        let t = Term::add(Term::var("x"), Term::app("f", vec![Term::var("x")]));
        let r = t.subst_var("x", &Term::int(1));
        assert!(!r.mentions("x"));
        assert_eq!(r.to_string(), "(1 + f(1))");
    }

    #[test]
    fn substitution_leaves_other_vars() {
        let t = Term::var("y");
        assert_eq!(t.subst_var("x", &Term::int(0)), Term::var("y"));
    }

    #[test]
    fn display_is_reasonable() {
        let t = Term::sub(Term::var("a"), Term::int(2));
        assert_eq!(t.to_string(), "(a - 2)");
        assert_eq!(
            Term::app("parent", vec![Term::var("p")]).to_string(),
            "parent(p)"
        );
    }

    #[test]
    fn size_counts_nodes() {
        let t = Term::add(Term::var("x"), Term::int(1));
        assert_eq!(t.size(), 3);
    }

    #[test]
    fn rename_vars_applies_mapping() {
        let t = Term::app("f", vec![Term::var("x"), Term::var("y")]);
        let r = t.rename_vars(&|v| {
            if v == "x" {
                Some("z".to_string())
            } else {
                None
            }
        });
        assert_eq!(r.to_string(), "f(z, y)");
    }
}
