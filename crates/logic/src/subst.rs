//! Simultaneous substitutions (the closing substitutions `σ` of the paper).

use crate::formula::Formula;
use crate::term::Term;
use crate::Ident;
use std::collections::BTreeMap;
use std::fmt;

/// A finite map from variables to terms, applied simultaneously.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: BTreeMap<Ident, Term>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-binding substitution.
    pub fn single(var: impl Into<Ident>, t: Term) -> Self {
        let mut s = Self::new();
        s.bind(var, t);
        s
    }

    /// Adds (or overwrites) a binding.
    pub fn bind(&mut self, var: impl Into<Ident>, t: Term) -> &mut Self {
        self.map.insert(var.into(), t);
        self
    }

    /// Looks up a binding.
    pub fn get(&self, var: &str) -> Option<&Term> {
        self.map.get(var)
    }

    /// Whether the substitution has no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Ident, &Term)> {
        self.map.iter()
    }

    /// Applies the substitution to a term (sequentially over bindings;
    /// bindings are expected to have disjoint domains and ranges).
    pub fn apply_term(&self, t: &Term) -> Term {
        let mut out = t.clone();
        for (v, r) in &self.map {
            out = out.subst_var(v, r);
        }
        out
    }

    /// Applies the substitution to a formula.
    pub fn apply_formula(&self, f: &Formula) -> Formula {
        let mut out = f.clone();
        for (v, r) in &self.map {
            out = out.subst_var(v, r);
        }
        out
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (v, t)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} ↦ {t}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<(Ident, Term)> for Subst {
    fn from_iter<I: IntoIterator<Item = (Ident, Term)>>(iter: I) -> Self {
        Subst {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_to_formula() {
        let f = Formula::eq(Term::var("x"), Term::var("y"));
        let s = Subst::single("x", Term::int(1));
        assert_eq!(
            s.apply_formula(&f),
            Formula::eq(Term::int(1), Term::var("y"))
        );
    }

    #[test]
    fn multiple_bindings_apply_simultaneously_enough() {
        let f = Formula::eq(Term::var("x"), Term::var("y"));
        let s: Subst = vec![
            ("x".to_string(), Term::int(1)),
            ("y".to_string(), Term::int(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.apply_formula(&f), Formula::eq(Term::int(1), Term::int(2)));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn display_lists_bindings() {
        let s = Subst::single("p", Term::atom("/"));
        assert_eq!(s.to_string(), "[p ↦ \"/\"]");
    }
}
