//! # hat-logic
//!
//! First-order logic infrastructure for the HAT (Hoare Automata Types) verifier:
//! sorts, constants, terms, quantifier-free-ish formulas ("qualifiers" in the paper),
//! ground evaluation, simplification, and an SMT-lite decision procedure
//! (DPLL + congruence closure + integer difference bounds + method-predicate axiom
//! instantiation) that plays the role Z3 plays in the original Marple implementation.
//!
//! The fragment handled is exactly the fragment the paper's verification conditions
//! fall into: boolean combinations of literals over equality, integer orderings and
//! uninterpreted *method predicates*, universally closed over the typing context
//! (effectively propositional / EPR after grounding).
//!
//! ```
//! use hat_logic::{Formula, Term, Sort, solver::Solver};
//!
//! // x:int, x > 0 ⊢ x ≥ 0
//! let x = Term::var("x");
//! let hyp = Formula::lt(Term::int(0), x.clone());
//! let goal = Formula::le(Term::int(0), x.clone());
//! let mut solver = Solver::default();
//! assert!(solver.entails(&[("x".into(), Sort::Int)], &[hyp], &goal));
//! ```

pub mod axioms;
pub mod constant;
pub mod eval;
pub mod formula;
pub mod simplify;
pub mod solver;
pub mod sort;
pub mod subst;
pub mod term;

pub use axioms::{AxiomSet, MethodPredicate};
pub use constant::Constant;
pub use eval::{EvalCtx, EvalError, Interpretation};
pub use formula::{Atom, Formula};
pub use solver::{ScopedSession, Solver, SolverStats};
pub use sort::Sort;
pub use subst::Subst;
pub use term::{FuncSym, Term};

/// Identifiers used throughout the verifier (variables, operators, predicates).
pub type Ident = String;
