//! Theory consistency checking: congruence closure over uninterpreted functions and
//! predicates, plus integer difference-bound reasoning.

use crate::axioms::AxiomSet;
use crate::constant::Constant;
use crate::formula::Atom;
use crate::sort::Sort;
use crate::term::{FuncSym, Term};
use crate::Ident;
use std::collections::BTreeMap;

/// A theory consistency checker for a fixed sort environment and axiom set.
#[derive(Debug)]
pub struct TheoryCheck<'a> {
    env: &'a BTreeMap<Ident, Sort>,
    axioms: &'a AxiomSet,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Var(Ident),
    Const(Constant),
    App(String, Vec<usize>),
}

#[derive(Debug, Default)]
struct Egraph {
    nodes: Vec<Node>,
    parent: Vec<usize>,
}

impl Egraph {
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }

    fn intern(&mut self, node: Node) -> usize {
        if let Some(i) = self.nodes.iter().position(|n| *n == node) {
            return i;
        }
        self.nodes.push(node);
        self.parent.push(self.nodes.len() - 1);
        self.nodes.len() - 1
    }

    fn intern_term(&mut self, t: &Term) -> usize {
        match t {
            Term::Var(x) => self.intern(Node::Var(x.clone())),
            Term::Const(c) => self.intern(Node::Const(c.clone())),
            Term::App(sym, args) => {
                let arg_ids: Vec<usize> = args.iter().map(|a| self.intern_term(a)).collect();
                self.intern(Node::App(format!("f:{}", sym.name()), arg_ids))
            }
        }
    }

    /// Closes the relation under congruence: apps with the same symbol and congruent
    /// arguments are merged. Quadratic fixpoint; fine at this scale.
    fn congruence_closure(&mut self) {
        loop {
            let mut merged = false;
            let apps: Vec<(usize, String, Vec<usize>)> = self
                .nodes
                .iter()
                .enumerate()
                .filter_map(|(i, n)| match n {
                    Node::App(s, args) => Some((i, s.clone(), args.clone())),
                    _ => None,
                })
                .collect();
            for i in 0..apps.len() {
                for j in (i + 1)..apps.len() {
                    let (ni, si, ai) = &apps[i];
                    let (nj, sj, aj) = &apps[j];
                    if si != sj || ai.len() != aj.len() {
                        continue;
                    }
                    if self.find(*ni) == self.find(*nj) {
                        continue;
                    }
                    let congruent = ai
                        .iter()
                        .zip(aj.iter())
                        .all(|(a, b)| self.find(*a) == self.find(*b));
                    if congruent && self.union(*ni, *nj) {
                        merged = true;
                    }
                }
            }
            if !merged {
                break;
            }
        }
    }

    /// Returns a conflict if two distinct constants ended up in the same class.
    fn constant_conflict(&mut self) -> bool {
        let n = self.nodes.len();
        let mut class_const: BTreeMap<usize, Constant> = BTreeMap::new();
        for i in 0..n {
            if let Node::Const(c) = self.nodes[i].clone() {
                let r = self.find(i);
                match class_const.get(&r) {
                    Some(existing) if *existing != c => return true,
                    _ => {
                        class_const.insert(r, c);
                    }
                }
            }
        }
        false
    }
}

impl<'a> TheoryCheck<'a> {
    /// Creates a checker for the given variable sorts and axioms.
    pub fn new(env: &'a BTreeMap<Ident, Sort>, axioms: &'a AxiomSet) -> Self {
        TheoryCheck { env, axioms }
    }

    fn term_is_int(&self, t: &Term) -> bool {
        match t {
            Term::Var(x) => self.env.get(x) == Some(&Sort::Int),
            Term::Const(Constant::Int(_)) => true,
            Term::Const(_) => false,
            Term::App(FuncSym::Named(f), _) => self.axioms.func_ret_sort(f) == Some(&Sort::Int),
            Term::App(_, _) => true,
        }
    }

    /// Checks whether the literal set is consistent with the theory.
    ///
    /// On conflict, returns a *minimised* conflict core: a subset of the literals that is
    /// still theory-inconsistent and from which no single literal can be removed. Small
    /// cores matter enormously for the lazy-SMT loop: a blocking clause built from the
    /// full literal set excludes exactly one propositional model, so the loop can cycle
    /// through exponentially many theory-equivalent models; a blocking clause built from
    /// a minimal core excludes the whole family at once.
    pub fn consistent(&self, lits: &[(Atom, bool)]) -> Result<(), Vec<(Atom, bool)>> {
        if self.check(lits) {
            Ok(())
        } else {
            Err(self.minimise_core(lits.to_vec()))
        }
    }

    /// Deletion-based core minimisation: drop each literal whose removal keeps the set
    /// inconsistent. Deterministic (literals are visited in order), so cached verdicts
    /// and parallel runs see identical blocking behaviour.
    fn minimise_core(&self, mut core: Vec<(Atom, bool)>) -> Vec<(Atom, bool)> {
        let mut i = 0;
        while i < core.len() {
            let removed = core.remove(i);
            if self.check(&core) {
                // The literal is load-bearing; put it back and move on.
                core.insert(i, removed);
                i += 1;
            }
        }
        core
    }

    fn check(&self, lits: &[(Atom, bool)]) -> bool {
        let mut eg = Egraph::default();
        let true_node = eg.intern(Node::Const(Constant::Bool(true)));
        let false_node = eg.intern(Node::Const(Constant::Bool(false)));

        let mut disequalities: Vec<(usize, usize)> = Vec::new();
        let mut ordering: Vec<(Term, Term, bool, bool)> = Vec::new(); // (a, b, strict, positive)

        for (atom, value) in lits {
            match atom {
                Atom::Eq(l, r) => {
                    let (a, b) = (eg.intern_term(l), eg.intern_term(r));
                    if *value {
                        eg.union(a, b);
                    } else {
                        disequalities.push((a, b));
                    }
                }
                Atom::Lt(l, r) => ordering.push((l.clone(), r.clone(), true, *value)),
                Atom::Le(l, r) => ordering.push((l.clone(), r.clone(), false, *value)),
                Atom::Pred(p, args) => {
                    let arg_ids: Vec<usize> = args.iter().map(|a| eg.intern_term(a)).collect();
                    let node = eg.intern(Node::App(format!("p:{p}"), arg_ids));
                    eg.union(node, if *value { true_node } else { false_node });
                }
                Atom::BoolTerm(t) => {
                    let node = eg.intern_term(t);
                    eg.union(node, if *value { true_node } else { false_node });
                }
            }
        }

        eg.congruence_closure();

        if eg.constant_conflict() {
            return false;
        }
        for (a, b) in &disequalities {
            if eg.find(*a) == eg.find(*b) {
                return false;
            }
        }

        // Integer difference-bound reasoning on top of the equivalence classes.
        self.check_orderings(&mut eg, &ordering, &disequalities, lits)
    }

    fn check_orderings(
        &self,
        eg: &mut Egraph,
        ordering: &[(Term, Term, bool, bool)],
        disequalities: &[(usize, usize)],
        lits: &[(Atom, bool)],
    ) -> bool {
        // Collect integer-sorted terms: those in ordering atoms plus integer constants and
        // arithmetic offsets appearing anywhere.
        let mut int_terms: Vec<Term> = Vec::new();
        let push = |t: &Term, v: &mut Vec<Term>| {
            if !v.contains(t) {
                v.push(t.clone());
            }
        };
        for (a, b, _, _) in ordering {
            push(a, &mut int_terms);
            push(b, &mut int_terms);
        }
        for (atom, _) in lits {
            if let Atom::Eq(l, r) = atom {
                if self.term_is_int(l) || self.term_is_int(r) {
                    push(l, &mut int_terms);
                    push(r, &mut int_terms);
                }
            }
        }
        if int_terms.is_empty() {
            return true;
        }

        // Node mapping: congruence class representative of each int term, plus a zero node.
        let mut ids: Vec<usize> = Vec::new();
        let class_of = |eg: &mut Egraph, t: &Term, ids: &mut Vec<usize>| -> usize {
            let n = eg.intern_term(t);
            let r = eg.find(n);
            if let Some(i) = ids.iter().position(|x| *x == r) {
                i
            } else {
                ids.push(r);
                ids.len() - 1
            }
        };

        #[derive(Clone)]
        struct Edge {
            from: usize,
            to: usize,
            weight: i64,
        }
        let mut edges: Vec<Edge> = Vec::new();
        // constraint: to - from <= weight
        let add_le = |to: usize, from: usize, weight: i64, edges: &mut Vec<Edge>| {
            edges.push(Edge { from, to, weight });
        };

        let zero = {
            ids.push(usize::MAX); // sentinel representative for the zero node
            ids.len() - 1
        };

        let mut term_node: BTreeMap<Term, usize> = BTreeMap::new();
        for t in &int_terms {
            let idx = class_of(eg, t, &mut ids);
            term_node.insert(t.clone(), idx);
            // Integer constants pin the class to a value.
            if let Term::Const(Constant::Int(k)) = t {
                add_le(idx, zero, *k, &mut edges);
                add_le(zero, idx, -*k, &mut edges);
            }
            // Arithmetic offsets t' ± k.
            if let Term::App(sym, args) = t {
                if args.len() == 2 {
                    let (base, k, sign) = match (&args[0], &args[1], sym) {
                        (b, Term::Const(Constant::Int(k)), FuncSym::Add) => (Some(b), *k, 1),
                        (Term::Const(Constant::Int(k)), b, FuncSym::Add) => (Some(b), *k, 1),
                        (b, Term::Const(Constant::Int(k)), FuncSym::Sub) => (Some(b), *k, -1),
                        _ => (None, 0, 0),
                    };
                    if let Some(base) = base {
                        let b_idx = class_of(eg, base, &mut ids);
                        let off = k * sign as i64;
                        // t - base <= off and base - t <= -off
                        add_le(idx, b_idx, off, &mut edges);
                        add_le(b_idx, idx, -off, &mut edges);
                    }
                }
            }
        }

        for (a, b, strict, positive) in ordering {
            let ia = *term_node.get(a).expect("collected above");
            let ib = *term_node.get(b).expect("collected above");
            match (strict, positive) {
                // a < b  ⇒ a - b <= -1
                (true, true) => add_le(ia, ib, -1, &mut edges),
                // ¬(a < b) ⇒ b <= a ⇒ b - a <= 0
                (true, false) => add_le(ib, ia, 0, &mut edges),
                // a <= b ⇒ a - b <= 0
                (false, true) => add_le(ia, ib, 0, &mut edges),
                // ¬(a <= b) ⇒ b < a ⇒ b - a <= -1
                (false, false) => add_le(ib, ia, -1, &mut edges),
            }
        }

        // Equal classes collapse to the same node already (class_of uses representatives).

        // Bellman-Ford negative-cycle detection from a virtual source.
        let n = ids.len();
        let mut dist = vec![0i64; n];
        for _ in 0..n {
            let mut changed = false;
            for e in &edges {
                if dist[e.from].saturating_add(e.weight) < dist[e.to] {
                    dist[e.to] = dist[e.from].saturating_add(e.weight);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for e in &edges {
            if dist[e.from].saturating_add(e.weight) < dist[e.to] {
                return false; // negative cycle
            }
        }

        // Disequalities between integer classes that the bounds force equal.
        if !disequalities.is_empty() {
            // all-pairs tightest bounds (Floyd–Warshall); n is small.
            const INF: i64 = i64::MAX / 4;
            let mut d = vec![vec![INF; n]; n];
            for (i, row) in d.iter_mut().enumerate() {
                row[i] = 0;
            }
            for e in &edges {
                // bound on (to - from)
                if e.weight < d[e.from][e.to] {
                    d[e.from][e.to] = e.weight;
                }
            }
            for k in 0..n {
                for i in 0..n {
                    for j in 0..n {
                        let via = d[i][k].saturating_add(d[k][j]);
                        if via < d[i][j] {
                            d[i][j] = via;
                        }
                    }
                }
            }
            for (a, b) in disequalities {
                let (ra, rb) = (eg.find(*a), eg.find(*b));
                let ia = ids.iter().position(|x| *x == ra);
                let ib = ids.iter().position(|x| *x == rb);
                if let (Some(ia), Some(ib)) = (ia, ib) {
                    if d[ia][ib] == 0 && d[ib][ia] == 0 {
                        return false; // forced equal but asserted distinct
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> BTreeMap<Ident, Sort> {
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), Sort::Int);
        m.insert("y".to_string(), Sort::Int);
        m.insert("a".to_string(), Sort::named("T"));
        m.insert("b".to_string(), Sort::named("T"));
        m
    }

    fn check(lits: Vec<(Atom, bool)>) -> bool {
        let e = env();
        let ax = AxiomSet::new();
        TheoryCheck::new(&e, &ax).consistent(&lits).is_ok()
    }

    #[test]
    fn transitive_equality_conflict() {
        // a = b, b = "k1", a = "k2" is inconsistent.
        let lits = vec![
            (Atom::Eq(Term::var("a"), Term::var("b")), true),
            (Atom::Eq(Term::var("b"), Term::atom("k1")), true),
            (Atom::Eq(Term::var("a"), Term::atom("k2")), true),
        ];
        assert!(!check(lits));
    }

    #[test]
    fn congruence_propagates_through_functions() {
        // a = b ∧ f(a) ≠ f(b) is inconsistent.
        let lits = vec![
            (Atom::Eq(Term::var("a"), Term::var("b")), true),
            (
                Atom::Eq(
                    Term::app("f", vec![Term::var("a")]),
                    Term::app("f", vec![Term::var("b")]),
                ),
                false,
            ),
        ];
        assert!(!check(lits));
    }

    #[test]
    fn predicate_congruence() {
        // a = b ∧ p(a) ∧ ¬p(b) is inconsistent.
        let lits = vec![
            (Atom::Eq(Term::var("a"), Term::var("b")), true),
            (Atom::Pred("p".into(), vec![Term::var("a")]), true),
            (Atom::Pred("p".into(), vec![Term::var("b")]), false),
        ];
        assert!(!check(lits));
    }

    #[test]
    fn ordering_cycle_detected() {
        // x < y ∧ y < x inconsistent.
        let lits = vec![
            (Atom::Lt(Term::var("x"), Term::var("y")), true),
            (Atom::Lt(Term::var("y"), Term::var("x")), true),
        ];
        assert!(!check(lits));
        // x < y ∧ y <= x inconsistent.
        let lits = vec![
            (Atom::Lt(Term::var("x"), Term::var("y")), true),
            (Atom::Le(Term::var("y"), Term::var("x")), true),
        ];
        assert!(!check(lits));
        // x <= y ∧ y <= x consistent.
        let lits = vec![
            (Atom::Le(Term::var("x"), Term::var("y")), true),
            (Atom::Le(Term::var("y"), Term::var("x")), true),
        ];
        assert!(check(lits));
    }

    #[test]
    fn bounds_with_constants() {
        // x < 3 ∧ 5 < x inconsistent.
        let lits = vec![
            (Atom::Lt(Term::var("x"), Term::int(3)), true),
            (Atom::Lt(Term::int(5), Term::var("x")), true),
        ];
        assert!(!check(lits));
        // x < 3 ∧ 1 < x consistent (x = 2).
        let lits = vec![
            (Atom::Lt(Term::var("x"), Term::int(3)), true),
            (Atom::Lt(Term::int(1), Term::var("x")), true),
        ];
        assert!(check(lits));
    }

    #[test]
    fn forced_equality_vs_disequality() {
        // x <= y ∧ y <= x ∧ x ≠ y inconsistent.
        let lits = vec![
            (Atom::Le(Term::var("x"), Term::var("y")), true),
            (Atom::Le(Term::var("y"), Term::var("x")), true),
            (Atom::Eq(Term::var("x"), Term::var("y")), false),
        ];
        assert!(!check(lits));
        // x <= y ∧ x ≠ y consistent.
        let lits = vec![
            (Atom::Le(Term::var("x"), Term::var("y")), true),
            (Atom::Eq(Term::var("x"), Term::var("y")), false),
        ];
        assert!(check(lits));
    }

    #[test]
    fn equality_feeds_arithmetic() {
        // x = 3 ∧ x < 2 inconsistent (equality merges class with the constant 3).
        let lits = vec![
            (Atom::Eq(Term::var("x"), Term::int(3)), true),
            (Atom::Lt(Term::var("x"), Term::int(2)), true),
        ];
        assert!(!check(lits));
    }

    #[test]
    fn negated_ordering() {
        // ¬(x < y) ∧ ¬(y < x) ∧ x ≠ y inconsistent (x = y forced).
        let lits = vec![
            (Atom::Lt(Term::var("x"), Term::var("y")), false),
            (Atom::Lt(Term::var("y"), Term::var("x")), false),
            (Atom::Eq(Term::var("x"), Term::var("y")), false),
        ];
        assert!(!check(lits));
    }

    #[test]
    fn arithmetic_offsets() {
        // x + 1 <= y ∧ y <= x inconsistent.
        let xp1 = Term::add(Term::var("x"), Term::int(1));
        let lits = vec![
            (Atom::Le(xp1, Term::var("y")), true),
            (Atom::Le(Term::var("y"), Term::var("x")), true),
        ];
        assert!(!check(lits));
    }

    #[test]
    fn consistent_mixed_assignment() {
        let lits = vec![
            (Atom::Pred("isDir".into(), vec![Term::var("a")]), true),
            (Atom::Pred("isDir".into(), vec![Term::var("b")]), false),
            (Atom::Eq(Term::var("x"), Term::int(0)), true),
            (Atom::Lt(Term::var("x"), Term::var("y")), true),
        ];
        assert!(check(lits));
    }
}
