//! Tseitin encoding of quantifier-free formulas into CNF.

use crate::formula::{Atom, Formula};

/// A propositional literal over solver variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// Zero-based variable index.
    pub var: usize,
    /// Polarity.
    pub positive: bool,
}

impl Lit {
    /// The negation of this literal.
    pub fn negate(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }
}

/// Builds a CNF (Tseitin encoding) from quantifier-free formulas.
///
/// Theory atoms are mapped to dedicated variables (retrievable through [`CnfBuilder::atoms`]);
/// internal connective variables are fresh and carry no theory meaning.
#[derive(Debug, Default)]
pub struct CnfBuilder {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    atoms: Vec<(Atom, usize)>,
}

impl CnfBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of propositional variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The accumulated clauses (consuming).
    pub fn take_clauses(&mut self) -> Vec<Vec<Lit>> {
        std::mem::take(&mut self.clauses)
    }

    /// The theory atoms and their variable indices.
    pub fn atoms(&self) -> &[(Atom, usize)] {
        &self.atoms
    }

    fn fresh(&mut self) -> usize {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    fn atom_var(&mut self, a: &Atom) -> usize {
        if let Some((_, v)) = self.atoms.iter().find(|(x, _)| x == a) {
            return *v;
        }
        let v = self.fresh();
        self.atoms.push((a.clone(), v));
        v
    }

    /// Adds a unit clause asserting the literal.
    pub fn assert_lit(&mut self, l: Lit) {
        self.clauses.push(vec![l]);
    }

    /// Encodes a quantifier-free formula, returning a literal equivalent to it.
    ///
    /// # Panics
    ///
    /// Panics if the formula still contains quantifiers (the caller must eliminate them).
    pub fn encode(&mut self, f: &Formula) -> Lit {
        match f {
            Formula::True => {
                let v = self.fresh();
                let l = Lit {
                    var: v,
                    positive: true,
                };
                self.clauses.push(vec![l]);
                l
            }
            Formula::False => {
                let v = self.fresh();
                let l = Lit {
                    var: v,
                    positive: true,
                };
                self.clauses.push(vec![l.negate()]);
                l
            }
            Formula::Atom(a) => Lit {
                var: self.atom_var(a),
                positive: true,
            },
            Formula::Not(g) => self.encode(g).negate(),
            Formula::And(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|g| self.encode(g)).collect();
                let v = self.fresh();
                let out = Lit {
                    var: v,
                    positive: true,
                };
                // out -> li
                for l in &lits {
                    self.clauses.push(vec![out.negate(), *l]);
                }
                // (l1 ∧ ... ∧ ln) -> out
                let mut clause: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
                clause.push(out);
                self.clauses.push(clause);
                out
            }
            Formula::Or(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|g| self.encode(g)).collect();
                let v = self.fresh();
                let out = Lit {
                    var: v,
                    positive: true,
                };
                // li -> out
                for l in &lits {
                    self.clauses.push(vec![l.negate(), out]);
                }
                // out -> (l1 ∨ ... ∨ ln)
                let mut clause: Vec<Lit> = lits.clone();
                clause.push(out.negate());
                self.clauses.push(clause);
                out
            }
            Formula::Implies(p, q) => {
                let expanded = Formula::Or(vec![Formula::Not(p.clone()), (**q).clone()]);
                self.encode(&expanded)
            }
            Formula::Iff(p, q) => {
                let expanded = Formula::And(vec![
                    Formula::Or(vec![Formula::Not(p.clone()), (**q).clone()]),
                    Formula::Or(vec![Formula::Not(q.clone()), (**p).clone()]),
                ]);
                self.encode(&expanded)
            }
            Formula::Forall(_, _, _) => {
                panic!("CnfBuilder::encode called on a quantified formula; eliminate quantifiers first")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn atoms_are_shared() {
        let mut b = CnfBuilder::new();
        let p = Formula::pred("p", vec![Term::var("x")]);
        let f = Formula::And(vec![p.clone(), Formula::Not(Box::new(p.clone()))]);
        let _ = b.encode(&f);
        assert_eq!(
            b.atoms().len(),
            1,
            "the same atom must get a single variable"
        );
    }

    #[test]
    fn encode_true_false() {
        let mut b = CnfBuilder::new();
        let t = b.encode(&Formula::True);
        let f = b.encode(&Formula::False);
        assert_ne!(t.var, f.var);
        assert!(b.num_vars() >= 2);
    }

    #[test]
    fn negation_flips_polarity() {
        let mut b = CnfBuilder::new();
        let p = Formula::pred("p", vec![]);
        let l1 = b.encode(&p);
        let l2 = b.encode(&Formula::Not(Box::new(p)));
        assert_eq!(l1.var, l2.var);
        assert_ne!(l1.positive, l2.positive);
    }

    #[test]
    #[should_panic(expected = "quantified")]
    fn encoding_quantifier_panics() {
        let mut b = CnfBuilder::new();
        let f = Formula::forall("x", crate::sort::Sort::Int, Formula::True);
        let _ = b.encode(&f);
    }
}
