//! A small DPLL SAT solver used as the propositional core of the lazy-SMT loop.

use super::cnf::Lit;

/// A satisfying assignment.
#[derive(Debug, Clone)]
pub struct Model {
    assignment: Vec<Option<bool>>,
}

impl Model {
    /// The value of a variable in the model, if assigned.
    pub fn get(&self, var: usize) -> Option<bool> {
        self.assignment.get(var).copied().flatten()
    }
}

/// DPLL solver with unit propagation and chronological backtracking.
///
/// Clauses may be added between calls to [`SatSolver::solve`] (used for theory blocking
/// clauses); each call solves from scratch, which is plenty fast for the clause counts the
/// type checker produces.
#[derive(Debug)]
pub struct SatSolver {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl SatSolver {
    /// Creates a solver over `num_vars` variables with initial clauses.
    pub fn new(num_vars: usize, clauses: Vec<Vec<Lit>>) -> Self {
        SatSolver { num_vars, clauses }
    }

    /// Adds a clause (e.g. a theory blocking clause).
    pub fn add_clause(&mut self, clause: Vec<Lit>) {
        self.clauses.push(clause);
    }

    /// Finds a satisfying assignment, or `None` if the clause set is unsatisfiable.
    pub fn solve(&self) -> Option<Model> {
        self.solve_with(&[])
    }

    /// Finds a satisfying assignment extending the given assumptions, or `None` if the
    /// clause set is unsatisfiable under them. Assumptions are scoped to this call: the
    /// clause database is untouched, so a caller can probe many assumption sets against
    /// one (growing) set of clauses — the core of the scoped-solver API.
    pub fn solve_with(&self, assumptions: &[Lit]) -> Option<Model> {
        let mut assignment: Vec<Option<bool>> = vec![None; self.num_vars];
        for l in assumptions {
            match assignment[l.var] {
                Some(v) if v != l.positive => return None,
                _ => assignment[l.var] = Some(l.positive),
            }
        }
        if self.dpll(&mut assignment) {
            Some(Model { assignment })
        } else {
            None
        }
    }

    fn clause_status(&self, clause: &[Lit], assignment: &[Option<bool>]) -> ClauseStatus {
        let mut unassigned = None;
        let mut unassigned_count = 0;
        for l in clause {
            match assignment[l.var] {
                Some(v) if v == l.positive => return ClauseStatus::Satisfied,
                Some(_) => {}
                None => {
                    unassigned = Some(*l);
                    unassigned_count += 1;
                }
            }
        }
        match unassigned_count {
            0 => ClauseStatus::Conflict,
            1 => ClauseStatus::Unit(unassigned.expect("counted above")),
            _ => ClauseStatus::Unresolved,
        }
    }

    /// Unit propagation; returns false on conflict, recording assigned vars in `trail`.
    fn propagate(&self, assignment: &mut [Option<bool>], trail: &mut Vec<usize>) -> bool {
        loop {
            let mut changed = false;
            for clause in &self.clauses {
                match self.clause_status(clause, assignment) {
                    ClauseStatus::Conflict => return false,
                    ClauseStatus::Unit(l) => {
                        assignment[l.var] = Some(l.positive);
                        trail.push(l.var);
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return true;
            }
        }
    }

    fn dpll(&self, assignment: &mut Vec<Option<bool>>) -> bool {
        let mut trail = Vec::new();
        if !self.propagate(assignment, &mut trail) {
            for v in trail {
                assignment[v] = None;
            }
            return false;
        }
        // Pick an unassigned variable, preferring ones that occur in clauses.
        let var = (0..self.num_vars).find(|&v| assignment[v].is_none());
        let var = match var {
            None => return true,
            Some(v) => v,
        };
        for value in [true, false] {
            assignment[var] = Some(value);
            if self.dpll(assignment) {
                return true;
            }
            assignment[var] = None;
        }
        for v in trail {
            assignment[v] = None;
        }
        false
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClauseStatus {
    Satisfied,
    Conflict,
    Unit(Lit),
    Unresolved,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(var: usize, positive: bool) -> Lit {
        Lit { var, positive }
    }

    #[test]
    fn satisfiable_instance() {
        // (a ∨ b) ∧ (¬a ∨ b) — satisfiable with b = true.
        let s = SatSolver::new(
            2,
            vec![
                vec![lit(0, true), lit(1, true)],
                vec![lit(0, false), lit(1, true)],
            ],
        );
        let m = s.solve().expect("should be satisfiable");
        assert_eq!(m.get(1), Some(true));
    }

    #[test]
    fn unsatisfiable_instance() {
        // a ∧ ¬a
        let s = SatSolver::new(1, vec![vec![lit(0, true)], vec![lit(0, false)]]);
        assert!(s.solve().is_none());
    }

    #[test]
    fn unit_propagation_chains() {
        // a, a→b, b→c  (as clauses) forces c.
        let s = SatSolver::new(
            3,
            vec![
                vec![lit(0, true)],
                vec![lit(0, false), lit(1, true)],
                vec![lit(1, false), lit(2, true)],
            ],
        );
        let m = s.solve().unwrap();
        assert_eq!(m.get(0), Some(true));
        assert_eq!(m.get(1), Some(true));
        assert_eq!(m.get(2), Some(true));
    }

    #[test]
    fn blocking_clause_changes_model() {
        let mut s = SatSolver::new(1, vec![]);
        let m = s.solve().unwrap();
        let first = m.get(0);
        // Block whatever was found (unassigned counts as "either", so force both ways).
        if let Some(v) = first {
            s.add_clause(vec![lit(0, !v)]);
            let m2 = s.solve().unwrap();
            assert_eq!(m2.get(0), Some(!v));
            s.add_clause(vec![lit(0, v)]);
            assert!(s.solve().is_none());
        }
    }

    #[test]
    fn assumptions_scope_to_one_call() {
        // (a ∨ b) with assumption ¬a forces b; the clause set itself stays satisfiable
        // with a = true afterwards.
        let s = SatSolver::new(2, vec![vec![lit(0, true), lit(1, true)]]);
        let m = s.solve_with(&[lit(0, false)]).expect("sat under ¬a");
        assert_eq!(m.get(0), Some(false));
        assert_eq!(m.get(1), Some(true));
        // Conflicting assumptions are unsat without touching the clause database.
        assert!(s.solve_with(&[lit(0, true), lit(0, false)]).is_none());
        // And a plain solve is unaffected by earlier assumption probes.
        assert!(s.solve().is_some());
    }

    #[test]
    fn assumptions_conflicting_with_units_are_unsat() {
        let s = SatSolver::new(1, vec![vec![lit(0, true)]]);
        assert!(s.solve_with(&[lit(0, false)]).is_none());
        assert!(s.solve_with(&[lit(0, true)]).is_some());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let s = SatSolver::new(1, vec![vec![]]);
        assert!(s.solve().is_none());
    }

    #[test]
    fn pigeonhole_small_unsat() {
        // 3 pigeons, 2 holes: vars p_ij = pigeon i in hole j (i in 0..3, j in 0..2).
        let var = |i: usize, j: usize| i * 2 + j;
        let mut clauses = Vec::new();
        for i in 0..3 {
            clauses.push(vec![lit(var(i, 0), true), lit(var(i, 1), true)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![lit(var(i1, j), false), lit(var(i2, j), false)]);
                }
            }
        }
        let s = SatSolver::new(6, clauses);
        assert!(s.solve().is_none());
    }
}
