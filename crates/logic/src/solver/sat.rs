//! A small SAT solver used as the propositional core of the lazy-SMT loop.
//!
//! Iterative DPLL with two-watched-literal propagation, saved phases and chronological
//! backtracking. The watch scheme makes propagation cost proportional to the clauses a
//! new assignment actually touches instead of the whole database — the difference that
//! matters for AllSAT minterm enumeration, where hundreds of solves run against a clause
//! set that grows by one blocking clause per model. Search order (decision variable and
//! polarity) never affects a sat/unsat verdict, and AllSAT callers block every witness
//! until exhaustion, so the heuristics here are free to chase speed.

use super::cnf::Lit;

/// A satisfying assignment.
#[derive(Debug, Clone)]
pub struct Model {
    assignment: Vec<Option<bool>>,
}

impl Model {
    /// The value of a variable in the model, if assigned.
    pub fn get(&self, var: usize) -> Option<bool> {
        self.assignment.get(var).copied().flatten()
    }
}

/// Index of a literal in the watch table: two slots per variable, one per polarity.
fn lit_index(l: Lit) -> usize {
    2 * l.var + usize::from(l.positive)
}

/// DPLL solver with two-watched-literal unit propagation and chronological backtracking.
///
/// Clauses may be added between calls to [`SatSolver::solve`] (used for theory blocking
/// clauses); the watch lists persist across calls, so each solve pays only for the search
/// itself, not for re-indexing the database.
#[derive(Debug)]
pub struct SatSolver {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    /// For every literal index, the clauses currently watching that literal. A clause
    /// watches its first two positions; propagation visits the list of a literal the
    /// moment it becomes false.
    watches: Vec<Vec<usize>>,
    /// Unit clauses, asserted at the root of every solve.
    units: Vec<Lit>,
    /// An empty clause was added: everything is unsatisfiable.
    unsat: bool,
    /// Saved polarity per variable: decisions retry the phase that last satisfied the
    /// search, which keeps consecutive AllSAT models close together. Initialised to
    /// `true`, matching the polarity the enumeration's depth-first order explores first.
    phase: Vec<bool>,
}

/// One entry of the iterative decision stack.
struct Decision {
    var: usize,
    /// Length of the trail before this decision was made.
    trail_len: usize,
    /// Both polarities tried: a conflict below this point backtracks past it.
    flipped: bool,
}

impl SatSolver {
    /// Creates a solver over `num_vars` variables with initial clauses.
    pub fn new(num_vars: usize, clauses: Vec<Vec<Lit>>) -> Self {
        let mut solver = SatSolver {
            num_vars,
            clauses: Vec::with_capacity(clauses.len()),
            watches: vec![Vec::new(); 2 * num_vars],
            units: Vec::new(),
            unsat: false,
            phase: vec![true; num_vars],
        };
        for clause in clauses {
            solver.add_clause(clause);
        }
        solver
    }

    /// Adds a clause (e.g. a theory blocking clause), attaching watches immediately.
    pub fn add_clause(&mut self, mut clause: Vec<Lit>) {
        // Normalise: a duplicated literal must not occupy both watch slots, and a
        // tautological clause constrains nothing.
        clause.sort_by_key(|l| (l.var, l.positive));
        clause.dedup();
        if clause
            .windows(2)
            .any(|w| w[0].var == w[1].var && w[0].positive != w[1].positive)
        {
            return;
        }
        match clause.len() {
            0 => self.unsat = true,
            1 => self.units.push(clause[0]),
            _ => {
                let idx = self.clauses.len();
                self.watches[lit_index(clause[0])].push(idx);
                self.watches[lit_index(clause[1])].push(idx);
                self.clauses.push(clause);
            }
        }
    }

    /// Finds a satisfying assignment, or `None` if the clause set is unsatisfiable.
    pub fn solve(&mut self) -> Option<Model> {
        self.solve_with(&[])
    }

    /// Finds a satisfying assignment extending the given assumptions, or `None` if the
    /// clause set is unsatisfiable under them. Assumptions are scoped to this call: the
    /// clause database is untouched, so a caller can probe many assumption sets against
    /// one (growing) set of clauses — the core of the scoped-solver API.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> Option<Model> {
        self.solve_prioritised(assumptions, &[])
    }

    /// [`SatSolver::solve_with`] with a branching hint: decisions try `priority` (in
    /// order) before the remaining variables. Purely heuristic — verdicts are
    /// order-independent — but AllSAT enumerations that branch on their literal pool
    /// first hit each fresh blocking clause within the pool prefix of the search instead
    /// of deep inside the Tseitin encoding.
    pub fn solve_prioritised(&mut self, assumptions: &[Lit], priority: &[usize]) -> Option<Model> {
        if self.unsat {
            return None;
        }
        let mut assignment: Vec<Option<bool>> = vec![None; self.num_vars];
        let mut trail: Vec<usize> = Vec::new();

        // Root level: assumptions and unit clauses are permanent for this solve; a
        // conflict among or below them (before any decision) is final.
        for l in assumptions.iter().chain(&self.units) {
            match assignment[l.var] {
                Some(v) if v != l.positive => return None,
                Some(_) => {}
                None => {
                    assignment[l.var] = Some(l.positive);
                    trail.push(l.var);
                }
            }
        }
        let mut propagate_from = 0;
        if !self.propagate(&mut assignment, &mut trail, &mut propagate_from) {
            return None;
        }

        let mut stack: Vec<Decision> = Vec::new();
        loop {
            // Decide: first unassigned priority variable, else first unassigned.
            let var = priority
                .iter()
                .copied()
                .find(|&v| assignment[v].is_none())
                .or_else(|| (0..self.num_vars).find(|&v| assignment[v].is_none()));
            let Some(var) = var else {
                return Some(Model { assignment });
            };
            let value = self.phase[var];
            stack.push(Decision {
                var,
                trail_len: trail.len(),
                flipped: false,
            });
            assignment[var] = Some(value);
            trail.push(var);
            propagate_from = trail.len() - 1;

            while !self.propagate(&mut assignment, &mut trail, &mut propagate_from) {
                // Chronological backtracking: flip the deepest unflipped decision.
                loop {
                    let top = stack.last_mut()?;
                    for &v in &trail[top.trail_len..] {
                        assignment[v] = None;
                    }
                    trail.truncate(top.trail_len);
                    if top.flipped {
                        stack.pop();
                        continue;
                    }
                    top.flipped = true;
                    let var = top.var;
                    let value = !self.phase[var];
                    assignment[var] = Some(value);
                    trail.push(var);
                    propagate_from = trail.len() - 1;
                    break;
                }
            }
            // Remember the polarities that survived propagation.
            for &v in &trail[stack.last().map_or(0, |d| d.trail_len)..] {
                if let Some(val) = assignment[v] {
                    self.phase[v] = val;
                }
            }
        }
    }

    /// Two-watched-literal unit propagation from `trail[*from..]`; returns `false` on
    /// conflict. On success `*from` is advanced past the propagated suffix.
    fn propagate(
        &mut self,
        assignment: &mut [Option<bool>],
        trail: &mut Vec<usize>,
        from: &mut usize,
    ) -> bool {
        while *from < trail.len() {
            let var = trail[*from];
            *from += 1;
            let value = assignment[var].expect("trail entries are assigned");
            // The literal that just became false.
            let falsified = Lit {
                var,
                positive: !value,
            };
            let watch_idx = lit_index(falsified);
            let mut list = std::mem::take(&mut self.watches[watch_idx]);
            let mut keep = 0;
            let mut conflict = false;
            'clauses: for li in 0..list.len() {
                let ci = list[li];
                let clause = &mut self.clauses[ci];
                // Normalise so the falsified literal sits at position 1.
                if clause[0] == falsified {
                    clause.swap(0, 1);
                }
                let other = clause[0];
                if assignment[other.var] == Some(other.positive) {
                    // Clause already satisfied through its other watch.
                    list[keep] = ci;
                    keep += 1;
                    continue;
                }
                // Look for a replacement watch.
                for k in 2..clause.len() {
                    let cand = clause[k];
                    if assignment[cand.var] != Some(!cand.positive) {
                        clause.swap(1, k);
                        self.watches[lit_index(cand)].push(ci);
                        continue 'clauses;
                    }
                }
                // No replacement: the other watch is unit or the clause conflicts.
                list[keep] = ci;
                keep += 1;
                match assignment[other.var] {
                    None => {
                        assignment[other.var] = Some(other.positive);
                        trail.push(other.var);
                    }
                    Some(v) if v != other.positive => {
                        conflict = true;
                        // Keep the rest of the list watched before bailing out.
                        list.copy_within(li + 1.., keep);
                        keep += list.len() - (li + 1);
                        break;
                    }
                    Some(_) => unreachable!("satisfied case handled above"),
                }
            }
            list.truncate(keep);
            debug_assert!(self.watches[watch_idx].is_empty());
            self.watches[watch_idx] = list;
            if conflict {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(var: usize, positive: bool) -> Lit {
        Lit { var, positive }
    }

    #[test]
    fn satisfiable_instance() {
        // (a ∨ b) ∧ (¬a ∨ b) — satisfiable with b = true.
        let mut s = SatSolver::new(
            2,
            vec![
                vec![lit(0, true), lit(1, true)],
                vec![lit(0, false), lit(1, true)],
            ],
        );
        let m = s.solve().expect("should be satisfiable");
        assert_eq!(m.get(1), Some(true));
    }

    #[test]
    fn unsatisfiable_instance() {
        // a ∧ ¬a
        let mut s = SatSolver::new(1, vec![vec![lit(0, true)], vec![lit(0, false)]]);
        assert!(s.solve().is_none());
    }

    #[test]
    fn unit_propagation_chains() {
        // a, a→b, b→c  (as clauses) forces c.
        let mut s = SatSolver::new(
            3,
            vec![
                vec![lit(0, true)],
                vec![lit(0, false), lit(1, true)],
                vec![lit(1, false), lit(2, true)],
            ],
        );
        let m = s.solve().unwrap();
        assert_eq!(m.get(0), Some(true));
        assert_eq!(m.get(1), Some(true));
        assert_eq!(m.get(2), Some(true));
    }

    #[test]
    fn blocking_clause_changes_model() {
        let mut s = SatSolver::new(1, vec![]);
        let m = s.solve().unwrap();
        let first = m.get(0);
        // Block whatever was found (unassigned counts as "either", so force both ways).
        if let Some(v) = first {
            s.add_clause(vec![lit(0, !v)]);
            let m2 = s.solve().unwrap();
            assert_eq!(m2.get(0), Some(!v));
            s.add_clause(vec![lit(0, v)]);
            assert!(s.solve().is_none());
        }
    }

    #[test]
    fn assumptions_scope_to_one_call() {
        // (a ∨ b) with assumption ¬a forces b; the clause set itself stays satisfiable
        // with a = true afterwards.
        let mut s = SatSolver::new(2, vec![vec![lit(0, true), lit(1, true)]]);
        let m = s.solve_with(&[lit(0, false)]).expect("sat under ¬a");
        assert_eq!(m.get(0), Some(false));
        assert_eq!(m.get(1), Some(true));
        // Conflicting assumptions are unsat without touching the clause database.
        assert!(s.solve_with(&[lit(0, true), lit(0, false)]).is_none());
        // And a plain solve is unaffected by earlier assumption probes.
        assert!(s.solve().is_some());
    }

    #[test]
    fn assumptions_conflicting_with_units_are_unsat() {
        let mut s = SatSolver::new(1, vec![vec![lit(0, true)]]);
        assert!(s.solve_with(&[lit(0, false)]).is_none());
        assert!(s.solve_with(&[lit(0, true)]).is_some());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new(1, vec![vec![]]);
        assert!(s.solve().is_none());
    }

    #[test]
    fn tautologies_and_duplicate_literals_are_normalised() {
        // (a ∨ ¬a) constrains nothing; (a ∨ a) is just a.
        let mut s = SatSolver::new(2, vec![vec![lit(0, true), lit(0, false)]]);
        assert!(s.solve().is_some());
        s.add_clause(vec![lit(1, true), lit(1, true)]);
        let m = s.solve().unwrap();
        assert_eq!(m.get(1), Some(true));
        s.add_clause(vec![lit(1, false)]);
        assert!(s.solve().is_none());
    }

    #[test]
    fn priority_variables_are_decided_first() {
        // Unconstrained vars: priority order decides assignment order, phases default
        // to true either way.
        let mut s = SatSolver::new(4, vec![vec![lit(2, false), lit(3, true)]]);
        let m = s.solve_prioritised(&[lit(2, true)], &[2, 3]).unwrap();
        assert_eq!(m.get(2), Some(true));
        assert_eq!(m.get(3), Some(true));
    }

    #[test]
    fn pigeonhole_small_unsat() {
        // 3 pigeons, 2 holes: vars p_ij = pigeon i in hole j (i in 0..3, j in 0..2).
        let var = |i: usize, j: usize| i * 2 + j;
        let mut clauses = Vec::new();
        for i in 0..3 {
            clauses.push(vec![lit(var(i, 0), true), lit(var(i, 1), true)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![lit(var(i1, j), false), lit(var(i2, j), false)]);
                }
            }
        }
        let mut s = SatSolver::new(6, clauses);
        assert!(s.solve().is_none());
    }

    #[test]
    fn allsat_blocking_enumerates_every_model_once() {
        // 3 free variables: exactly 8 models, each blocked as found.
        let mut s = SatSolver::new(3, vec![]);
        let mut seen = std::collections::BTreeSet::new();
        while let Some(m) = s.solve() {
            let proj: Vec<bool> = (0..3).map(|v| m.get(v).unwrap()).collect();
            assert!(seen.insert(proj.clone()), "model repeated: {proj:?}");
            s.add_clause(
                (0..3)
                    .map(|v| lit(v, !m.get(v).unwrap()))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(seen.len(), 8);
    }
}
