//! An SMT-lite decision procedure for HAT verification conditions.
//!
//! The original Marple tool discharges its verification conditions with Z3. The conditions
//! fall into a small fragment: boolean combinations of literals over equality, integer
//! orderings, and uninterpreted method predicates, universally closed over the typing
//! context, with method-predicate axioms as background lemmas. This module decides that
//! fragment with a classical lazy-SMT loop:
//!
//! 1. method-predicate axioms are ground-instantiated over the query's terms (EPR style);
//! 2. quantifiers are eliminated (skolemisation for existential strength, finite
//!    instantiation for universal strength — sound for entailment);
//! 3. the propositional skeleton is Tseitin-encoded and searched by DPLL;
//! 4. each propositional model is checked against the theory (congruence closure over
//!    uninterpreted functions + integer difference bounds); theory conflicts become
//!    blocking clauses.
//!
//! Verdicts are a pure function of the query: the fresh-name counter restarts per query,
//! so a canonically renamed query reproduces the same computation — the invariant the
//! `hat-engine` cache relies on. For incremental workloads (minterm enumeration),
//! [`Solver::scoped`] opens a [`ScopedSession`] that preprocesses the context and a
//! literal pool once and answers each assumption-stack check with one DPLL+theory pass.
//!
//! ```
//! use hat_logic::{Formula, Solver, Sort, Term};
//!
//! let mut solver = Solver::default();
//! let vars = vec![("x".to_string(), Sort::Int), ("y".to_string(), Sort::Int)];
//! // x < y ∧ y < x is unsatisfiable...
//! let cycle = Formula::and(vec![
//!     Formula::lt(Term::var("x"), Term::var("y")),
//!     Formula::lt(Term::var("y"), Term::var("x")),
//! ]);
//! assert!(!solver.is_satisfiable(&vars, &cycle));
//! // ...and transitivity is entailed.
//! let hyps = [
//!     Formula::lt(Term::var("x"), Term::var("y")),
//!     Formula::lt(Term::var("y"), Term::int(7)),
//! ];
//! assert!(solver.entails(&vars, &hyps, &Formula::lt(Term::var("x"), Term::int(7))));
//! assert_eq!(solver.stats.queries, 2);
//! ```

mod cnf;
mod sat;
mod theory;

pub use cnf::{CnfBuilder, Lit};
pub use sat::SatSolver;
pub use theory::TheoryCheck;

use crate::axioms::AxiomSet;
use crate::formula::{Atom, Formula};
use crate::simplify::{simplify, to_nnf};
use crate::sort::Sort;
use crate::term::{FuncSym, Term};
use crate::Ident;
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// Counters describing solver work, mirroring the `#SAT` / `t_SAT` columns of the paper.
#[derive(Debug, Clone, Default)]
pub struct SolverStats {
    /// Number of satisfiability queries answered.
    pub queries: usize,
    /// Number of queries answered "satisfiable".
    pub sat: usize,
    /// Number of queries answered "unsatisfiable".
    pub unsat: usize,
    /// Total time spent inside the solver.
    pub time: Duration,
    /// Number of theory (congruence/difference-bound) consistency checks performed.
    pub theory_checks: usize,
    /// Number of incremental checks answered by scoped sessions ([`Solver::scoped`]).
    /// These are *not* counted in `queries`: a scoped check reuses a preprocessed CNF
    /// and is orders of magnitude cheaper than a standalone query.
    pub scoped_checks: usize,
}

impl SolverStats {
    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = SolverStats::default();
    }
}

/// The solver. Construction is cheap; axioms can be shared across queries.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    /// Background axioms (method-predicate lemmas and function signatures).
    pub axioms: AxiomSet,
    /// Work counters.
    pub stats: SolverStats,
    /// Maximum number of axiom instantiations per query (guards against blow-up).
    pub max_instantiations: usize,
    fresh: usize,
}

/// Declared sorts of the free variables of a query.
pub type SortEnv = [(Ident, Sort)];

impl Solver {
    /// Creates a solver with the given background axioms.
    pub fn with_axioms(axioms: AxiomSet) -> Self {
        Solver {
            axioms,
            stats: SolverStats::default(),
            max_instantiations: 4096,
            fresh: 0,
        }
    }

    fn fresh_var(&mut self, prefix: &str) -> Ident {
        self.fresh += 1;
        format!("{prefix}%{}", self.fresh)
    }

    /// Is `f` satisfiable, treating the given variables as free constants of their sorts?
    pub fn is_satisfiable(&mut self, vars: &SortEnv, f: &Formula) -> bool {
        let start = Instant::now();
        self.stats.queries += 1;
        // Fresh names are scoped to one query; restarting the counter makes every answer a
        // pure function of (axioms, vars, f), which result caches and parallel verification
        // rely on (instantiation order depends on generated names).
        self.fresh = 0;
        let result = self.check_sat(vars, f);
        if result {
            self.stats.sat += 1;
        } else {
            self.stats.unsat += 1;
        }
        self.stats.time += start.elapsed();
        result
    }

    /// Is `f` valid (true under every interpretation of the free variables)?
    pub fn is_valid(&mut self, vars: &SortEnv, f: &Formula) -> bool {
        !self.is_satisfiable(vars, &Formula::not(f.clone()))
    }

    /// Does the conjunction of `hyps` entail `goal`?
    pub fn entails(&mut self, vars: &SortEnv, hyps: &[Formula], goal: &Formula) -> bool {
        let hyp = Formula::and(hyps.to_vec());
        self.is_valid(vars, &Formula::implies(hyp, goal.clone()))
    }

    fn check_sat(&mut self, vars: &SortEnv, f: &Formula) -> bool {
        let simplified = simplify(f);
        match simplified {
            Formula::True => return true,
            Formula::False => return false,
            _ => {}
        }

        // Quantifier elimination.
        let mut env: BTreeMap<Ident, Sort> = vars.iter().cloned().collect();
        let nnf = to_nnf(&simplified, false);
        let ground = self.collect_ground_terms(&nnf, &env);
        let qfree = self.eliminate_quantifiers(&nnf, &mut env, &ground);

        // Axiom instantiation.
        let with_axioms = {
            let insts = self.instantiate_axioms(&qfree, &env);
            Formula::and(std::iter::once(qfree).chain(insts).collect())
        };
        let final_formula = simplify(&with_axioms);
        match final_formula {
            Formula::True => return true,
            Formula::False => return false,
            _ => {}
        }

        // Propositional encoding.
        let mut builder = CnfBuilder::new();
        let root = builder.encode(&final_formula);
        builder.assert_lit(root);
        let atoms = builder.atoms().to_vec();
        let mut sat = SatSolver::new(builder.num_vars(), builder.take_clauses());

        // Lazy theory loop.
        loop {
            match sat.solve() {
                None => return false,
                Some(model) => {
                    self.stats.theory_checks += 1;
                    let lits: Vec<(Atom, bool)> = atoms
                        .iter()
                        .filter_map(|(atom, var)| model.get(*var).map(|b| (atom.clone(), b)))
                        .collect();
                    let check = TheoryCheck::new(&env, &self.axioms);
                    match check.consistent(&lits) {
                        Ok(()) => return true,
                        Err(core) => {
                            // Block this (partial) assignment.
                            let clause: Vec<Lit> = core
                                .iter()
                                .filter_map(|(atom, val)| {
                                    atoms.iter().find(|(a, _)| a == atom).map(|(_, var)| Lit {
                                        var: *var,
                                        positive: !*val,
                                    })
                                })
                                .collect();
                            if clause.is_empty() {
                                return false;
                            }
                            sat.add_clause(clause);
                        }
                    }
                }
            }
        }
    }

    /// Collects ground-ish terms of the formula bucketed by (best-effort) sort,
    /// used for quantifier and axiom instantiation.
    fn collect_ground_terms(
        &self,
        f: &Formula,
        env: &BTreeMap<Ident, Sort>,
    ) -> BTreeMap<Sort, BTreeSet<Term>> {
        let mut atoms = Vec::new();
        f.collect_atoms(&mut atoms);
        let mut out: BTreeMap<Sort, BTreeSet<Term>> = BTreeMap::new();
        let mut add = |sort: Sort, t: Term| {
            out.entry(sort).or_default().insert(t);
        };
        let mut terms = Vec::new();
        for a in &atoms {
            match a {
                Atom::Eq(l, r) | Atom::Lt(l, r) | Atom::Le(l, r) => {
                    terms.push(l.clone());
                    terms.push(r.clone());
                }
                Atom::Pred(_, args) => terms.extend(args.iter().cloned()),
                Atom::BoolTerm(t) => terms.push(t.clone()),
            }
        }
        // Also include all subterms.
        let mut all = Vec::new();
        while let Some(t) = terms.pop() {
            if let Term::App(_, args) = &t {
                for a in args {
                    terms.push(a.clone());
                }
            }
            all.push(t);
        }
        for t in all {
            if let Some(sort) = self.guess_sort(&t, env) {
                add(sort, t);
            } else {
                add(Sort::Named("?".into()), t);
            }
        }
        out
    }

    /// Best-effort sort inference for instantiation purposes.
    pub(crate) fn guess_sort(&self, t: &Term, env: &BTreeMap<Ident, Sort>) -> Option<Sort> {
        match t {
            Term::Var(x) => env.get(x).cloned(),
            Term::Const(c) => match c {
                crate::constant::Constant::Atom(_) => None,
                other => Some(other.sort()),
            },
            Term::App(FuncSym::Named(f), _) => self.axioms.func_ret_sort(f).cloned(),
            Term::App(_, _) => Some(Sort::Int),
        }
    }

    /// Eliminates quantifiers from an NNF formula.
    ///
    /// * `∀x. φ` in positive position is replaced by a finite conjunction of instances over
    ///   the known ground terms of a compatible sort plus one fresh constant (a sound
    ///   weakening for entailment checking);
    /// * `¬∀x. φ` is skolemised: `¬φ[x ↦ fresh]`.
    fn eliminate_quantifiers(
        &mut self,
        f: &Formula,
        env: &mut BTreeMap<Ident, Sort>,
        ground: &BTreeMap<Sort, BTreeSet<Term>>,
    ) -> Formula {
        match f {
            Formula::True | Formula::False | Formula::Atom(_) => f.clone(),
            Formula::Not(inner) => match inner.as_ref() {
                Formula::Forall(x, s, body) => {
                    let fresh = self.fresh_var(x);
                    env.insert(fresh.clone(), s.clone());
                    let skolemised = body.subst_var(x, &Term::Var(fresh));
                    let neg = to_nnf(&Formula::not(skolemised), false);
                    self.eliminate_quantifiers(&neg, env, ground)
                }
                _ => Formula::not(self.eliminate_quantifiers(inner, env, ground)),
            },
            Formula::And(fs) => Formula::and(
                fs.iter()
                    .map(|g| self.eliminate_quantifiers(g, env, ground))
                    .collect(),
            ),
            Formula::Or(fs) => Formula::or(
                fs.iter()
                    .map(|g| self.eliminate_quantifiers(g, env, ground))
                    .collect(),
            ),
            Formula::Implies(p, q) => Formula::implies(
                self.eliminate_quantifiers(p, env, ground),
                self.eliminate_quantifiers(q, env, ground),
            ),
            Formula::Iff(p, q) => Formula::iff(
                self.eliminate_quantifiers(p, env, ground),
                self.eliminate_quantifiers(q, env, ground),
            ),
            Formula::Forall(x, s, body) => {
                let mut instances: Vec<Term> = Vec::new();
                if let Some(set) = ground.get(s) {
                    instances.extend(set.iter().cloned());
                }
                if let Some(set) = ground.get(&Sort::Named("?".into())) {
                    instances.extend(set.iter().cloned());
                }
                let fresh = self.fresh_var(x);
                env.insert(fresh.clone(), s.clone());
                instances.push(Term::Var(fresh));
                let parts: Vec<Formula> = instances
                    .into_iter()
                    .take(64)
                    .map(|t| {
                        let inst = body.subst_var(x, &t);
                        self.eliminate_quantifiers(&to_nnf(&inst, false), env, ground)
                    })
                    .collect();
                Formula::and(parts)
            }
        }
    }

    /// Opens a scoped incremental session over a fixed base formula and a pool of
    /// candidate literals.
    ///
    /// The expensive, per-query part of [`Solver::is_satisfiable`] — simplification,
    /// quantifier elimination, axiom instantiation and CNF construction — is performed
    /// exactly once here, over the *union* of the base facts and every candidate literal
    /// (the same ground-term basis a standalone query over a full literal assignment
    /// would use, which is what makes session verdicts coincide with standalone
    /// verdicts on full assignments). Afterwards each [`ScopedSession::check`] costs one
    /// DPLL search plus theory validation: candidate literals are pushed and retracted
    /// as *assumptions* ([`ScopedSession::assume`] / [`ScopedSession::retract`]) without
    /// rebuilding any state, so an enumeration can walk a search tree and abandon a
    /// subtree the moment a partial assignment is unsatisfiable.
    ///
    /// Theory conflicts discovered during any check are learned as blocking clauses and
    /// persist for the lifetime of the session (they are assumption-independent facts),
    /// so later checks never re-discover them.
    pub fn scoped<'a>(
        &'a mut self,
        vars: &SortEnv,
        base: &[Formula],
        literals: &[Atom],
    ) -> ScopedSession<'a> {
        // Fresh names are scoped to the session, exactly as they are scoped to one
        // standalone query: the counter restarts so session construction is a pure
        // function of (axioms, vars, base, literals).
        self.fresh = 0;
        let mut env: BTreeMap<Ident, Sort> = vars.iter().cloned().collect();

        // Ground-term basis: the base facts *and* every candidate literal, mirroring what
        // a standalone query over a full literal assignment would collect (literal signs
        // do not matter — ground terms are sign-blind).
        let atom_formulas: Vec<Formula> =
            literals.iter().map(|a| Formula::Atom(a.clone())).collect();
        let basis = Formula::and(
            base.iter()
                .cloned()
                .chain(atom_formulas.iter().cloned())
                .collect(),
        );
        let basis_nnf = to_nnf(&simplify(&basis), false);
        let ground = self.collect_ground_terms(&basis_nnf, &env);

        // Assert only the base facts (quantifier-eliminated over the full basis); the
        // literals themselves enter and leave through assumptions.
        let base_nnf = to_nnf(&simplify(&Formula::and(base.to_vec())), false);
        let qfree_base = self.eliminate_quantifiers(&base_nnf, &mut env, &ground);
        let inst_source = Formula::and(
            std::iter::once(qfree_base.clone())
                .chain(atom_formulas)
                .collect(),
        );
        let insts = self.instantiate_axioms(&inst_source, &env);
        let asserted = simplify(&Formula::and(
            std::iter::once(qfree_base).chain(insts).collect(),
        ));

        let base_false = matches!(asserted, Formula::False);
        let mut builder = CnfBuilder::new();
        if !base_false {
            let root = builder.encode(&asserted);
            builder.assert_lit(root);
        }
        // Register a propositional variable for every candidate literal, whether or not
        // it occurs in the asserted base.
        let literal_vars: Vec<usize> = literals
            .iter()
            .map(|a| builder.encode(&Formula::Atom(a.clone())).var)
            .collect();
        let atoms = builder.atoms().to_vec();
        let sat = SatSolver::new(builder.num_vars(), builder.take_clauses());
        ScopedSession {
            solver: self,
            env,
            sat,
            atoms,
            literal_vars,
            assumptions: Vec::new(),
            base_false,
            checks: 0,
            conflicts: 0,
        }
    }

    /// Instantiates background axioms over the ground terms of the query.
    fn instantiate_axioms(&self, f: &Formula, env: &BTreeMap<Ident, Sort>) -> Vec<Formula> {
        if self.axioms.axioms.is_empty() {
            return Vec::new();
        }
        let ground = self.collect_ground_terms(f, env);
        let unknown = Sort::Named("?".into());
        let mut out = Vec::new();
        let mut count = 0usize;
        for ax in &self.axioms.axioms {
            // Candidate terms per quantified variable.
            let candidates: Vec<Vec<Term>> = ax
                .vars
                .iter()
                .map(|(_, s)| {
                    let mut v: Vec<Term> = ground.get(s).into_iter().flatten().cloned().collect();
                    v.extend(ground.get(&unknown).into_iter().flatten().cloned());
                    v
                })
                .collect();
            if candidates.iter().any(|c| c.is_empty()) {
                continue;
            }
            let mut indices = vec![0usize; candidates.len()];
            'outer: loop {
                let mut inst = ax.body.clone();
                for (i, (x, _)) in ax.vars.iter().enumerate() {
                    inst = inst.subst_var(x, &candidates[i][indices[i]]);
                }
                out.push(inst);
                count += 1;
                if count >= self.max_instantiations {
                    return out;
                }
                // advance odometer
                let mut k = 0;
                loop {
                    indices[k] += 1;
                    if indices[k] < candidates[k].len() {
                        break;
                    }
                    indices[k] = 0;
                    k += 1;
                    if k == candidates.len() {
                        break 'outer;
                    }
                }
            }
        }
        out
    }
}

/// An incremental solving session opened with [`Solver::scoped`]: a fixed base formula,
/// a pool of candidate literals, and a stack of assumed literal polarities.
///
/// The session owns one SAT solver instance whose clause database (base CNF, axiom
/// instances, learned theory conflicts) persists across checks. Assumptions are scoped to
/// each check, so `assume`/`retract` are O(1): nothing is rebuilt when the search moves
/// between branches.
pub struct ScopedSession<'a> {
    solver: &'a mut Solver,
    env: BTreeMap<Ident, Sort>,
    sat: SatSolver,
    atoms: Vec<(Atom, usize)>,
    literal_vars: Vec<usize>,
    assumptions: Vec<Lit>,
    base_false: bool,
    checks: usize,
    conflicts: usize,
}

impl std::fmt::Debug for ScopedSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedSession")
            .field("literals", &self.literal_vars.len())
            .field("depth", &self.assumptions.len())
            .field("checks", &self.checks)
            .field("conflicts", &self.conflicts)
            .finish_non_exhaustive()
    }
}

impl ScopedSession<'_> {
    /// Number of candidate literals in the session's pool.
    pub fn num_literals(&self) -> usize {
        self.literal_vars.len()
    }

    /// Current assumption depth (number of `assume`s not yet retracted).
    pub fn depth(&self) -> usize {
        self.assumptions.len()
    }

    /// Number of incremental checks issued so far.
    pub fn checks(&self) -> usize {
        self.checks
    }

    /// Number of theory conflicts discovered (and learned) so far.
    pub fn conflicts(&self) -> usize {
        self.conflicts
    }

    /// Pushes an assumption: candidate literal `index` takes polarity `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range of the literal pool.
    pub fn assume(&mut self, index: usize, value: bool) {
        let var = self.literal_vars[index];
        self.assumptions.push(Lit {
            var,
            positive: value,
        });
    }

    /// Pops the most recent assumption.
    ///
    /// # Panics
    ///
    /// Panics if no assumption is active.
    pub fn retract(&mut self) {
        self.assumptions
            .pop()
            .expect("retract without a matching assume");
    }

    /// Is the base formula together with the current assumptions satisfiable?
    ///
    /// On success, returns a *witness projection*: the polarity the satisfying model
    /// assigns to every candidate literal (index-aligned with the pool). The witness is a
    /// full, theory-consistent assignment, so it certifies an entire satisfiable leaf of
    /// the enumeration tree, not just the current partial assignment. On failure the
    /// whole subtree under the current assumptions is unsatisfiable.
    pub fn check(&mut self) -> Option<Vec<bool>> {
        let start = Instant::now();
        self.checks += 1;
        self.solver.stats.scoped_checks += 1;
        let result = self.check_inner();
        self.solver.stats.time += start.elapsed();
        result
    }

    fn check_inner(&mut self) -> Option<Vec<bool>> {
        if self.base_false {
            return None;
        }
        loop {
            // Branch on the candidate pool first: blocking clauses live entirely within
            // the pool variables, so AllSAT enumeration conflicts surface within the
            // first |pool| decisions instead of deep inside the Tseitin encoding.
            let solved = self
                .sat
                .solve_prioritised(&self.assumptions, &self.literal_vars);
            match solved {
                None => return None,
                Some(model) => {
                    self.solver.stats.theory_checks += 1;
                    let lits: Vec<(Atom, bool)> = self
                        .atoms
                        .iter()
                        .filter_map(|(atom, var)| model.get(*var).map(|b| (atom.clone(), b)))
                        .collect();
                    let check = TheoryCheck::new(&self.env, &self.solver.axioms);
                    match check.consistent(&lits) {
                        Ok(()) => {
                            return Some(
                                self.literal_vars
                                    .iter()
                                    // Totality is load-bearing: a defaulted polarity
                                    // would bypass the theory check just performed.
                                    .map(|v| model.get(*v).expect("dpll models are total"))
                                    .collect(),
                            );
                        }
                        Err(core) => {
                            // A theory conflict is assumption-independent: the blocked
                            // assignment is inconsistent with the theory itself, so the
                            // learned clause is sound for every later check too.
                            let clause: Vec<Lit> =
                                core.iter()
                                    .filter_map(|(atom, val)| {
                                        self.atoms.iter().find(|(a, _)| a == atom).map(
                                            |(_, var)| Lit {
                                                var: *var,
                                                positive: !*val,
                                            },
                                        )
                                    })
                                    .collect();
                            if clause.is_empty() {
                                return None;
                            }
                            self.conflicts += 1;
                            self.sat.add_clause(clause);
                        }
                    }
                }
            }
        }
    }

    /// Permanently excludes a full literal projection from all later checks (AllSAT-style
    /// enumeration: block each witness as it is emitted). With an empty literal pool this
    /// adds the empty clause, making every later check unsatisfiable — the enumeration of
    /// zero literals has exactly one leaf.
    pub fn block(&mut self, projection: &[bool]) {
        assert_eq!(
            projection.len(),
            self.literal_vars.len(),
            "projection must cover the whole literal pool"
        );
        let clause: Vec<Lit> = self
            .literal_vars
            .iter()
            .zip(projection)
            .map(|(var, value)| Lit {
                var: *var,
                positive: !value,
            })
            .collect();
        self.sat.add_clause(clause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::Axiom;
    use crate::constant::Constant;

    fn int_env() -> Vec<(Ident, Sort)> {
        vec![
            ("x".into(), Sort::Int),
            ("y".into(), Sort::Int),
            ("z".into(), Sort::Int),
        ]
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::default();
        assert!(s.is_satisfiable(&[], &Formula::True));
        assert!(!s.is_satisfiable(&[], &Formula::False));
        assert!(s.is_valid(&[], &Formula::True));
    }

    #[test]
    fn propositional_reasoning() {
        let mut s = Solver::default();
        let p = Formula::pred("p", vec![Term::var("x")]);
        let q = Formula::pred("q", vec![Term::var("x")]);
        // (p ∧ (p ⇒ q)) ⇒ q is valid.
        let f = Formula::implies(
            Formula::and(vec![p.clone(), Formula::implies(p.clone(), q.clone())]),
            q.clone(),
        );
        let env = vec![("x".to_string(), Sort::named("T"))];
        assert!(s.is_valid(&env, &f));
        // p ∧ ¬p unsat.
        assert!(!s.is_satisfiable(&env, &Formula::and(vec![p.clone(), Formula::not(p)])));
    }

    #[test]
    fn equality_reasoning_with_congruence() {
        let mut s = Solver::default();
        let env = vec![
            ("a".to_string(), Sort::named("T")),
            ("b".to_string(), Sort::named("T")),
        ];
        // a = b ⊢ f(a) = f(b)
        let hyp = Formula::eq(Term::var("a"), Term::var("b"));
        let goal = Formula::eq(
            Term::app("f", vec![Term::var("a")]),
            Term::app("f", vec![Term::var("b")]),
        );
        assert!(s.entails(&env, std::slice::from_ref(&hyp), &goal));
        // a = b does not entail g(a) = h(b)
        let bad = Formula::eq(
            Term::app("g", vec![Term::var("a")]),
            Term::app("h", vec![Term::var("b")]),
        );
        assert!(!s.entails(&env, &[hyp], &bad));
    }

    #[test]
    fn distinct_constants_are_distinct() {
        let mut s = Solver::default();
        let f = Formula::eq(Term::atom("/a"), Term::atom("/b"));
        assert!(!s.is_satisfiable(&[], &f));
        let g = Formula::eq(Term::int(1), Term::int(2));
        assert!(!s.is_satisfiable(&[], &g));
    }

    #[test]
    fn arithmetic_ordering_entailment() {
        let mut s = Solver::default();
        let env = int_env();
        // x < y ∧ y < z ⊢ x < z
        let hyps = vec![
            Formula::lt(Term::var("x"), Term::var("y")),
            Formula::lt(Term::var("y"), Term::var("z")),
        ];
        assert!(s.entails(&env, &hyps, &Formula::lt(Term::var("x"), Term::var("z"))));
        // x < y does not entail y < x
        assert!(!s.entails(
            &env,
            &[Formula::lt(Term::var("x"), Term::var("y"))],
            &Formula::lt(Term::var("y"), Term::var("x"))
        ));
        // x <= y ∧ y <= x ⊢ x = y
        let hyps = vec![
            Formula::le(Term::var("x"), Term::var("y")),
            Formula::le(Term::var("y"), Term::var("x")),
        ];
        assert!(s.entails(&env, &hyps, &Formula::eq(Term::var("x"), Term::var("y"))));
    }

    #[test]
    fn numeric_constant_bounds() {
        let mut s = Solver::default();
        let env = int_env();
        // x < 3 ∧ 5 < x is unsat
        let f = Formula::and(vec![
            Formula::lt(Term::var("x"), Term::int(3)),
            Formula::lt(Term::int(5), Term::var("x")),
        ]);
        assert!(!s.is_satisfiable(&env, &f));
        // 0 <= x ∧ x <= 0 ∧ x != 0 is unsat
        let g = Formula::and(vec![
            Formula::le(Term::int(0), Term::var("x")),
            Formula::le(Term::var("x"), Term::int(0)),
            Formula::not(Formula::eq(Term::var("x"), Term::int(0))),
        ]);
        assert!(!s.is_satisfiable(&env, &g));
    }

    #[test]
    fn method_predicate_axioms_are_used() {
        let mut axioms = AxiomSet::new();
        axioms.declare_pred("isDir", vec![Sort::named("Bytes.t")]);
        axioms.declare_pred("isDel", vec![Sort::named("Bytes.t")]);
        axioms.add_axiom(Axiom::new(
            "dir-not-del",
            vec![("b".into(), Sort::named("Bytes.t"))],
            Formula::implies(
                Formula::pred("isDir", vec![Term::var("b")]),
                Formula::not(Formula::pred("isDel", vec![Term::var("b")])),
            ),
        ));
        let mut s = Solver::with_axioms(axioms);
        let env = vec![("v".to_string(), Sort::named("Bytes.t"))];
        // isDir(v) ⊢ ¬isDel(v)
        assert!(s.entails(
            &env,
            &[Formula::pred("isDir", vec![Term::var("v")])],
            &Formula::not(Formula::pred("isDel", vec![Term::var("v")]))
        ));
        // isDir(v) ∧ isDel(v) is unsat under the axioms
        assert!(!s.is_satisfiable(
            &env,
            &Formula::and(vec![
                Formula::pred("isDir", vec![Term::var("v")]),
                Formula::pred("isDel", vec![Term::var("v")]),
            ])
        ));
        // but isFile is unconstrained
        assert!(s.is_satisfiable(&env, &Formula::pred("isFile", vec![Term::var("v")])));
    }

    #[test]
    fn quantified_goal_is_skolemised() {
        let mut s = Solver::default();
        // ⊢ ∀x:int. x = x
        let f = Formula::forall("x", Sort::Int, Formula::eq(Term::var("x"), Term::var("x")));
        assert!(s.is_valid(&[], &f));
        // ⊬ ∀x:int. x < 0
        let g = Formula::forall("x", Sort::Int, Formula::lt(Term::var("x"), Term::int(0)));
        assert!(!s.is_valid(&[], &g));
    }

    #[test]
    fn bool_terms_as_propositions() {
        let mut s = Solver::default();
        let env = vec![("b".to_string(), Sort::Bool)];
        let b = Term::var("b");
        // b = true ⊢ b
        assert!(s.entails(
            &env,
            &[Formula::eq(b.clone(), Term::bool(true))],
            &Formula::bool_term(b.clone())
        ));
        // b = false ⊢ ¬b
        assert!(s.entails(
            &env,
            &[Formula::eq(b.clone(), Term::bool(false))],
            &Formula::not(Formula::bool_term(b))
        ));
    }

    #[test]
    fn stats_are_recorded() {
        let mut s = Solver::default();
        let before = s.stats.queries;
        let _ = s.is_satisfiable(&[], &Formula::pred("p", vec![]));
        assert_eq!(s.stats.queries, before + 1);
        assert!(s.stats.sat >= 1);
    }

    #[test]
    fn scoped_push_pop_nesting_matches_standalone_queries() {
        // Base: x < y.  Literals: y < z, x < z, z < x.
        let env = int_env();
        let base = vec![Formula::lt(Term::var("x"), Term::var("y"))];
        let literals = vec![
            Atom::Lt(Term::var("y"), Term::var("z")),
            Atom::Lt(Term::var("x"), Term::var("z")),
            Atom::Lt(Term::var("z"), Term::var("x")),
        ];
        let mut s = Solver::default();
        let mut session = s.scoped(&env, &base, &literals);
        assert_eq!(session.num_literals(), 3);
        assert_eq!(session.depth(), 0);
        assert!(session.check().is_some(), "base alone is satisfiable");

        // y < z pushed: still satisfiable; nested x < z: still satisfiable.
        session.assume(0, true);
        assert_eq!(session.depth(), 1);
        assert!(session.check().is_some());
        session.assume(1, true);
        assert_eq!(session.depth(), 2);
        assert!(session.check().is_some());
        // Deepest level: z < x contradicts x < y < z.
        session.assume(2, true);
        assert!(session.check().is_none(), "x<y ∧ y<z ∧ x<z ∧ z<x is unsat");
        session.retract();
        // After retracting the contradiction the previous level is intact.
        assert!(session.check().is_some());
        session.retract();
        session.retract();
        assert_eq!(session.depth(), 0);
        assert!(session.check().is_some());
    }

    #[test]
    fn scoped_unsat_at_depth_prunes_the_subtree() {
        // Base: x < y ∧ y < z. The assumption z < x is unsat at depth 1; every deeper
        // assumption keeps it unsat (the whole subtree is pruned).
        let env = int_env();
        let base = vec![
            Formula::lt(Term::var("x"), Term::var("y")),
            Formula::lt(Term::var("y"), Term::var("z")),
        ];
        let literals = vec![
            Atom::Lt(Term::var("z"), Term::var("x")),
            Atom::Lt(Term::var("x"), Term::var("z")),
        ];
        let mut s = Solver::default();
        let mut session = s.scoped(&env, &base, &literals);
        session.assume(0, true);
        assert!(session.check().is_none());
        for value in [true, false] {
            session.assume(1, value);
            assert!(
                session.check().is_none(),
                "children of an unsat node are unsat"
            );
            session.retract();
        }
        session.retract();
        // The sibling branch (¬(z < x)) is satisfiable.
        session.assume(0, false);
        assert!(session.check().is_some());
    }

    #[test]
    fn scoped_witness_certifies_a_full_leaf_and_block_excludes_it() {
        let env = int_env();
        let literals = vec![
            Atom::Lt(Term::var("x"), Term::var("y")),
            Atom::Lt(Term::var("y"), Term::var("z")),
        ];
        let mut s = Solver::default();
        let mut session = s.scoped(&env, &[], &literals);
        let mut seen = std::collections::BTreeSet::new();
        // AllSAT: every check yields a fresh projection until the space is exhausted.
        while let Some(projection) = session.check() {
            assert_eq!(projection.len(), 2);
            assert!(seen.insert(projection.clone()), "projections never repeat");
            session.block(&projection);
        }
        assert_eq!(seen.len(), 4, "all four sign combinations are satisfiable");
        assert_eq!(
            session.checks(),
            5,
            "one check per leaf plus the closing unsat"
        );
    }

    #[test]
    fn scoped_empty_literal_pool_has_one_leaf() {
        let mut s = Solver::default();
        let mut session = s.scoped(&[], &[], &[]);
        let w = session
            .check()
            .expect("the empty conjunction is satisfiable");
        assert!(w.is_empty());
        session.block(&w);
        assert!(
            session.check().is_none(),
            "blocking the empty projection closes the space"
        );
    }

    #[test]
    fn scoped_theory_conflicts_are_learned_once() {
        // isDir(v) ∧ isDel(v) is a pure theory conflict under the axiom; once learned it
        // must not be re-discovered by later checks.
        let mut axioms = AxiomSet::new();
        axioms.declare_pred("isDir", vec![Sort::named("Bytes.t")]);
        axioms.declare_pred("isDel", vec![Sort::named("Bytes.t")]);
        axioms.add_axiom(Axiom::new(
            "dir-not-del",
            vec![("b".into(), Sort::named("Bytes.t"))],
            Formula::implies(
                Formula::pred("isDir", vec![Term::var("b")]),
                Formula::not(Formula::pred("isDel", vec![Term::var("b")])),
            ),
        ));
        let env = vec![("v".to_string(), Sort::named("Bytes.t"))];
        let literals = vec![
            Atom::Pred("isDir".into(), vec![Term::var("v")]),
            Atom::Pred("isDel".into(), vec![Term::var("v")]),
        ];
        let mut s = Solver::with_axioms(axioms);
        let mut session = s.scoped(&env, &[], &literals);
        session.assume(0, true);
        session.assume(1, true);
        assert!(session.check().is_none());
        let conflicts_after_first = session.conflicts();
        assert!(session.check().is_none());
        assert_eq!(
            session.conflicts(),
            conflicts_after_first,
            "the second check reuses the learned clause"
        );
        session.retract();
        assert!(session.check().is_some(), "isDir(v) alone is satisfiable");
    }

    #[test]
    fn scoped_sessions_keep_fresh_name_counter_hygiene() {
        // Verdicts and solver work must be a pure function of the query, with or without
        // an interleaved scoped session: the fresh-name counter restarts every time.
        let probe = |s: &mut Solver| {
            let env = vec![("a".to_string(), Sort::named("T"))];
            let f = Formula::forall(
                "q",
                Sort::named("T"),
                Formula::implies(
                    Formula::pred("p", vec![Term::var("q")]),
                    Formula::pred("p", vec![Term::var("q")]),
                ),
            );
            let before = s.stats.theory_checks;
            let verdict = s.is_satisfiable(&env, &f);
            (verdict, s.stats.theory_checks - before)
        };
        let mut plain = Solver::default();
        let baseline = probe(&mut plain);

        let mut with_session = Solver::default();
        let first = probe(&mut with_session);
        {
            let env = vec![("x".to_string(), Sort::Int)];
            let literals = vec![Atom::Lt(Term::var("x"), Term::int(0))];
            let mut session = with_session.scoped(&env, &[], &literals);
            session.assume(0, true);
            let _ = session.check();
        }
        let second = probe(&mut with_session);
        assert_eq!(first, baseline);
        assert_eq!(
            second, baseline,
            "a scoped session must not leak fresh names"
        );
        assert!(with_session.stats.scoped_checks >= 1);
    }

    #[test]
    fn atom_constants_vs_variables() {
        let mut s = Solver::default();
        let env = vec![("p".to_string(), Sort::named("Path.t"))];
        // p = "/" is satisfiable; p = "/" ∧ p = "/a" is not.
        assert!(s.is_satisfiable(&env, &Formula::eq(Term::var("p"), Term::atom("/"))));
        let f = Formula::and(vec![
            Formula::eq(Term::var("p"), Term::atom("/")),
            Formula::eq(Term::var("p"), Term::atom("/a")),
        ]);
        assert!(!s.is_satisfiable(&env, &f));
        let _ = Constant::Atom("/".into());
    }
}
