//! Qualifier formulas (`φ` in the paper's grammar).

use crate::sort::Sort;
use crate::term::Term;
use crate::Ident;
use std::collections::BTreeSet;
use std::fmt;

/// An atomic proposition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Atom {
    /// Equality between two terms (any sort).
    Eq(Term, Term),
    /// Strict integer ordering.
    Lt(Term, Term),
    /// Non-strict integer ordering.
    Le(Term, Term),
    /// A method predicate application, e.g. `isDir(val)`.
    Pred(Ident, Vec<Term>),
    /// A boolean-sorted term used as a proposition (e.g. a boolean variable).
    BoolTerm(Term),
}

impl Atom {
    /// Collects free variables into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<Ident>) {
        match self {
            Atom::Eq(a, b) | Atom::Lt(a, b) | Atom::Le(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Atom::Pred(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Atom::BoolTerm(t) => t.collect_vars(out),
        }
    }

    /// Substitutes a variable by a term inside the atom.
    pub fn subst_var(&self, var: &str, t: &Term) -> Atom {
        match self {
            Atom::Eq(a, b) => Atom::Eq(a.subst_var(var, t), b.subst_var(var, t)),
            Atom::Lt(a, b) => Atom::Lt(a.subst_var(var, t), b.subst_var(var, t)),
            Atom::Le(a, b) => Atom::Le(a.subst_var(var, t), b.subst_var(var, t)),
            Atom::Pred(p, args) => Atom::Pred(
                p.clone(),
                args.iter().map(|a| a.subst_var(var, t)).collect(),
            ),
            Atom::BoolTerm(b) => Atom::BoolTerm(b.subst_var(var, t)),
        }
    }

    /// Renames all variables through the mapping.
    pub fn rename_vars(&self, f: &dyn Fn(&str) -> Option<Ident>) -> Atom {
        match self {
            Atom::Eq(a, b) => Atom::Eq(a.rename_vars(f), b.rename_vars(f)),
            Atom::Lt(a, b) => Atom::Lt(a.rename_vars(f), b.rename_vars(f)),
            Atom::Le(a, b) => Atom::Le(a.rename_vars(f), b.rename_vars(f)),
            Atom::Pred(p, args) => {
                Atom::Pred(p.clone(), args.iter().map(|a| a.rename_vars(f)).collect())
            }
            Atom::BoolTerm(t) => Atom::BoolTerm(t.rename_vars(f)),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Eq(a, b) => write!(f, "{a} == {b}"),
            Atom::Lt(a, b) => write!(f, "{a} < {b}"),
            Atom::Le(a, b) => write!(f, "{a} <= {b}"),
            Atom::Pred(p, args) => {
                write!(f, "{p}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Atom::BoolTerm(t) => write!(f, "{t}"),
        }
    }
}

/// A qualifier formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Formula {
    /// ⊤
    True,
    /// ⊥
    False,
    /// An atomic proposition.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication.
    Iff(Box<Formula>, Box<Formula>),
    /// Universal quantification over a base sort.
    Forall(Ident, Sort, Box<Formula>),
}

impl Formula {
    /// Equality atom.
    pub fn eq(a: Term, b: Term) -> Self {
        Formula::Atom(Atom::Eq(a, b))
    }

    /// Strict less-than atom.
    pub fn lt(a: Term, b: Term) -> Self {
        Formula::Atom(Atom::Lt(a, b))
    }

    /// Non-strict less-than atom.
    pub fn le(a: Term, b: Term) -> Self {
        Formula::Atom(Atom::Le(a, b))
    }

    /// Method-predicate atom.
    pub fn pred(name: impl Into<Ident>, args: Vec<Term>) -> Self {
        Formula::Atom(Atom::Pred(name.into(), args))
    }

    /// Boolean term used as proposition.
    pub fn bool_term(t: Term) -> Self {
        Formula::Atom(Atom::BoolTerm(t))
    }

    /// Negation (with trivial simplification of constants).
    #[allow(clippy::should_implement_trait)] // associated constructor, not operator overloading
    pub fn not(f: Formula) -> Self {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Conjunction of a list, flattening nested conjunctions and constants.
    pub fn and(fs: Vec<Formula>) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.into_iter().next().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// Disjunction of a list, flattening nested disjunctions and constants.
    pub fn or(fs: Vec<Formula>) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.into_iter().next().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// Implication.
    pub fn implies(p: Formula, q: Formula) -> Self {
        match (&p, &q) {
            (Formula::True, _) => q,
            (Formula::False, _) => Formula::True,
            (_, Formula::True) => Formula::True,
            _ => Formula::Implies(Box::new(p), Box::new(q)),
        }
    }

    /// Bi-implication.
    pub fn iff(p: Formula, q: Formula) -> Self {
        Formula::Iff(Box::new(p), Box::new(q))
    }

    /// Universal quantification.
    pub fn forall(x: impl Into<Ident>, sort: Sort, body: Formula) -> Self {
        Formula::Forall(x.into(), sort, Box::new(body))
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Ident> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut out);
        out
    }

    fn collect_free_vars(&self, out: &mut BTreeSet<Ident>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => a.collect_vars(out),
            Formula::Not(f) => f.collect_free_vars(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free_vars(out);
                }
            }
            Formula::Implies(p, q) | Formula::Iff(p, q) => {
                p.collect_free_vars(out);
                q.collect_free_vars(out);
            }
            Formula::Forall(x, _, body) => {
                let mut inner = BTreeSet::new();
                body.collect_free_vars(&mut inner);
                inner.remove(x);
                out.extend(inner);
            }
        }
    }

    /// Capture-avoiding substitution of a free variable by a term.
    pub fn subst_var(&self, var: &str, t: &Term) -> Formula {
        match self {
            Formula::True | Formula::False => self.clone(),
            Formula::Atom(a) => Formula::Atom(a.subst_var(var, t)),
            Formula::Not(f) => Formula::not(f.subst_var(var, t)),
            Formula::And(fs) => Formula::and(fs.iter().map(|f| f.subst_var(var, t)).collect()),
            Formula::Or(fs) => Formula::or(fs.iter().map(|f| f.subst_var(var, t)).collect()),
            Formula::Implies(p, q) => {
                Formula::Implies(Box::new(p.subst_var(var, t)), Box::new(q.subst_var(var, t)))
            }
            Formula::Iff(p, q) => {
                Formula::Iff(Box::new(p.subst_var(var, t)), Box::new(q.subst_var(var, t)))
            }
            Formula::Forall(x, s, body) => {
                if x == var {
                    self.clone()
                } else {
                    Formula::Forall(x.clone(), s.clone(), Box::new(body.subst_var(var, t)))
                }
            }
        }
    }

    /// Renames free variables through the mapping (bound variables are untouched).
    pub fn rename_free_vars(&self, f: &dyn Fn(&str) -> Option<Ident>) -> Formula {
        match self {
            Formula::True | Formula::False => self.clone(),
            Formula::Atom(a) => Formula::Atom(a.rename_vars(f)),
            Formula::Not(inner) => Formula::Not(Box::new(inner.rename_free_vars(f))),
            Formula::And(fs) => Formula::And(fs.iter().map(|g| g.rename_free_vars(f)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|g| g.rename_free_vars(f)).collect()),
            Formula::Implies(p, q) => Formula::Implies(
                Box::new(p.rename_free_vars(f)),
                Box::new(q.rename_free_vars(f)),
            ),
            Formula::Iff(p, q) => Formula::Iff(
                Box::new(p.rename_free_vars(f)),
                Box::new(q.rename_free_vars(f)),
            ),
            Formula::Forall(x, s, body) => {
                let shadow = x.clone();
                let g = move |v: &str| if v == shadow { None } else { f(v) };
                Formula::Forall(x.clone(), s.clone(), Box::new(body.rename_free_vars(&g)))
            }
        }
    }

    /// Collects every atom of the formula (used for minterm construction).
    pub fn collect_atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => {
                if !out.contains(a) {
                    out.push(a.clone());
                }
            }
            Formula::Not(f) => f.collect_atoms(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_atoms(out);
                }
            }
            Formula::Implies(p, q) | Formula::Iff(p, q) => {
                p.collect_atoms(out);
                q.collect_atoms(out);
            }
            Formula::Forall(_, _, body) => body.collect_atoms(out),
        }
    }

    /// Number of AST nodes — the paper reports invariant sizes (`s_I`) as literal counts;
    /// [`Formula::literal_count`] matches that metric more closely.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False => 1,
            Formula::Atom(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Implies(p, q) | Formula::Iff(p, q) => 1 + p.size() + q.size(),
            Formula::Forall(_, _, body) => 1 + body.size(),
        }
    }

    /// Number of atom occurrences (the paper's literal-count metric).
    pub fn literal_count(&self) -> usize {
        match self {
            Formula::True | Formula::False => 0,
            Formula::Atom(_) => 1,
            Formula::Not(f) => f.literal_count(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().map(Formula::literal_count).sum(),
            Formula::Implies(p, q) | Formula::Iff(p, q) => p.literal_count() + q.literal_count(),
            Formula::Forall(_, _, body) => body.literal_count(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Not(inner) => write!(f, "!({inner})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(p, q) => write!(f, "({p} ==> {q})"),
            Formula::Iff(p, q) => write!(f, "({p} <=> {q})"),
            Formula::Forall(x, s, body) => write!(f, "(forall {x}:{s}. {body})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Term {
        Term::var("x")
    }

    #[test]
    fn smart_constructors_simplify_constants() {
        assert_eq!(
            Formula::and(vec![Formula::True, Formula::True]),
            Formula::True
        );
        assert_eq!(
            Formula::and(vec![Formula::False, Formula::eq(x(), x())]),
            Formula::False
        );
        assert_eq!(Formula::or(vec![Formula::False]), Formula::False);
        assert_eq!(
            Formula::or(vec![Formula::True, Formula::False]),
            Formula::True
        );
        assert_eq!(Formula::not(Formula::True), Formula::False);
        assert_eq!(
            Formula::not(Formula::not(Formula::eq(x(), x()))),
            Formula::eq(x(), x())
        );
    }

    #[test]
    fn and_flattens_nested() {
        let f = Formula::and(vec![
            Formula::and(vec![
                Formula::eq(x(), Term::int(1)),
                Formula::eq(x(), Term::int(2)),
            ]),
            Formula::eq(x(), Term::int(3)),
        ]);
        match f {
            Formula::And(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn free_vars_respect_binders() {
        let f = Formula::forall("x", Sort::Int, Formula::lt(x(), Term::var("y")));
        let fv = f.free_vars();
        assert!(fv.contains("y"));
        assert!(!fv.contains("x"));
    }

    #[test]
    fn substitution_respects_binders() {
        let f = Formula::forall("x", Sort::Int, Formula::lt(x(), Term::var("y")));
        let g = f.subst_var("x", &Term::int(0));
        assert_eq!(f, g, "bound x must not be substituted");
        let h = f.subst_var("y", &Term::int(0));
        assert!(h.free_vars().is_empty());
    }

    #[test]
    fn literal_count_matches_atom_occurrences() {
        let f = Formula::implies(
            Formula::and(vec![
                Formula::pred("isDir", vec![x()]),
                Formula::lt(x(), Term::int(3)),
            ]),
            Formula::not(Formula::pred("isDel", vec![x()])),
        );
        assert_eq!(f.literal_count(), 3);
    }

    #[test]
    fn collect_atoms_deduplicates() {
        let a = Formula::pred("isDir", vec![x()]);
        let f = Formula::and(vec![a.clone(), Formula::not(a.clone())]);
        let mut atoms = Vec::new();
        f.collect_atoms(&mut atoms);
        assert_eq!(atoms.len(), 1);
    }

    #[test]
    fn display_roundtrip_shape() {
        let f = Formula::implies(
            Formula::pred("p", vec![x()]),
            Formula::eq(x(), Term::int(1)),
        );
        assert_eq!(f.to_string(), "(p(x) ==> x == 1)");
    }
}
