//! Literal constants shared between the logic, the core language and traces.

use crate::sort::Sort;
use std::fmt;

/// A constant value.
///
/// `Atom` constants inhabit named (uninterpreted) sorts; they are written
/// `"like this"` or `` `like_this `` in the surface syntax and support only equality.
/// The interpreter also uses them to model opaque library values (paths, byte blobs,
/// graph nodes, ...).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constant {
    /// The unit value `()`.
    Unit,
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A value of a named sort, identified by its textual name.
    Atom(String),
}

impl Constant {
    /// Builds an atom constant of a named sort.
    pub fn atom(s: impl Into<String>) -> Self {
        Constant::Atom(s.into())
    }

    /// The sort of this constant. Atoms report the provided named sort when known;
    /// callers that track sorts should prefer the typed AST.
    pub fn sort(&self) -> Sort {
        match self {
            Constant::Unit => Sort::Unit,
            Constant::Bool(_) => Sort::Bool,
            Constant::Int(_) => Sort::Int,
            Constant::Atom(_) => Sort::Named("atom".into()),
        }
    }

    /// Returns the boolean payload if this is a boolean constant.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Constant::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer payload if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Constant::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Unit => write!(f, "()"),
            Constant::Bool(b) => write!(f, "{b}"),
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Atom(s) => write!(f, "\"{s}\""),
        }
    }
}

impl From<bool> for Constant {
    fn from(b: bool) -> Self {
        Constant::Bool(b)
    }
}

impl From<i64> for Constant {
    fn from(i: i64) -> Self {
        Constant::Int(i)
    }
}

impl From<()> for Constant {
    fn from(_: ()) -> Self {
        Constant::Unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Constant::Unit.to_string(), "()");
        assert_eq!(Constant::Bool(true).to_string(), "true");
        assert_eq!(Constant::Int(-3).to_string(), "-3");
        assert_eq!(Constant::atom("/a/b.txt").to_string(), "\"/a/b.txt\"");
    }

    #[test]
    fn payload_accessors() {
        assert_eq!(Constant::Bool(false).as_bool(), Some(false));
        assert_eq!(Constant::Int(7).as_int(), Some(7));
        assert_eq!(Constant::Unit.as_bool(), None);
        assert_eq!(Constant::atom("x").as_int(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Constant::from(true), Constant::Bool(true));
        assert_eq!(Constant::from(42i64), Constant::Int(42));
        assert_eq!(Constant::from(()), Constant::Unit);
    }

    #[test]
    fn sorts_of_constants() {
        assert_eq!(Constant::Unit.sort(), Sort::Unit);
        assert_eq!(Constant::Int(1).sort(), Sort::Int);
        assert_eq!(Constant::Bool(true).sort(), Sort::Bool);
    }
}
