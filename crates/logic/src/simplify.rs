//! Lightweight formula simplification.
//!
//! Simplification is used before solver calls (smaller Tseitin encodings) and when pretty
//! printing inferred types. It performs constant folding, negation normal form pushing,
//! elimination of trivially-true atoms (`t == t`) and duplicate removal inside `∧`/`∨`.

use crate::formula::{Atom, Formula};
use crate::term::Term;

/// Simplifies a formula. The result is logically equivalent to the input.
pub fn simplify(f: &Formula) -> Formula {
    fold(f)
}

/// Negation normal form: negations pushed down to atoms; implications and iffs expanded.
/// `negate` indicates whether the current subformula is under an odd number of negations.
pub fn to_nnf(f: &Formula, negate: bool) -> Formula {
    match f {
        Formula::True => {
            if negate {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::False => {
            if negate {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::Atom(a) => {
            let base = Formula::Atom(a.clone());
            if negate {
                Formula::Not(Box::new(base))
            } else {
                base
            }
        }
        Formula::Not(g) => to_nnf(g, !negate),
        Formula::And(fs) => {
            let parts: Vec<Formula> = fs.iter().map(|g| to_nnf(g, negate)).collect();
            if negate {
                Formula::or(parts)
            } else {
                Formula::and(parts)
            }
        }
        Formula::Or(fs) => {
            let parts: Vec<Formula> = fs.iter().map(|g| to_nnf(g, negate)).collect();
            if negate {
                Formula::and(parts)
            } else {
                Formula::or(parts)
            }
        }
        Formula::Implies(p, q) => {
            // p ==> q  ≡  ¬p ∨ q
            let np = to_nnf(p, !negate);
            let nq = to_nnf(q, negate);
            if negate {
                // ¬(p ==> q) ≡ p ∧ ¬q
                Formula::and(vec![np, nq])
            } else {
                Formula::or(vec![np, nq])
            }
        }
        Formula::Iff(p, q) => {
            // p <=> q ≡ (p ∧ q) ∨ (¬p ∧ ¬q)
            let pp = to_nnf(p, false);
            let qq = to_nnf(q, false);
            let notp = to_nnf(p, true);
            let notq = to_nnf(q, true);
            let expanded = Formula::or(vec![
                Formula::and(vec![pp.clone(), qq.clone()]),
                Formula::and(vec![notp.clone(), notq.clone()]),
            ]);
            if negate {
                Formula::or(vec![
                    Formula::and(vec![pp, notq]),
                    Formula::and(vec![notp, qq]),
                ])
            } else {
                expanded
            }
        }
        Formula::Forall(x, s, body) => {
            // Quantifiers are kept in place; negation stays outside a negated quantifier.
            let inner = to_nnf(body, false);
            let q = Formula::Forall(x.clone(), s.clone(), Box::new(inner));
            if negate {
                Formula::Not(Box::new(q))
            } else {
                q
            }
        }
    }
}

fn fold_atom(a: &Atom) -> Option<bool> {
    match a {
        Atom::Eq(l, r) => {
            if l == r {
                Some(true)
            } else {
                match (l, r) {
                    (Term::Const(a), Term::Const(b)) => Some(a == b),
                    _ => None,
                }
            }
        }
        Atom::Lt(l, r) => match (
            l.as_const().and_then(|c| c.as_int()),
            r.as_const().and_then(|c| c.as_int()),
        ) {
            (Some(a), Some(b)) => Some(a < b),
            _ => {
                if l == r {
                    Some(false)
                } else {
                    None
                }
            }
        },
        Atom::Le(l, r) => match (
            l.as_const().and_then(|c| c.as_int()),
            r.as_const().and_then(|c| c.as_int()),
        ) {
            (Some(a), Some(b)) => Some(a <= b),
            _ => {
                if l == r {
                    Some(true)
                } else {
                    None
                }
            }
        },
        Atom::Pred(_, _) => None,
        Atom::BoolTerm(t) => t.as_const().and_then(|c| c.as_bool()),
    }
}

fn fold(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False => f.clone(),
        Formula::Atom(a) => match fold_atom(a) {
            Some(true) => Formula::True,
            Some(false) => Formula::False,
            None => f.clone(),
        },
        Formula::Not(g) => Formula::not(fold(g)),
        Formula::And(fs) => {
            let mut parts: Vec<Formula> = fs.iter().map(fold).collect();
            parts.dedup();
            Formula::and(dedup_preserving(parts))
        }
        Formula::Or(fs) => {
            let parts: Vec<Formula> = fs.iter().map(fold).collect();
            Formula::or(dedup_preserving(parts))
        }
        Formula::Implies(p, q) => Formula::implies(fold(p), fold(q)),
        Formula::Iff(p, q) => {
            let (fp, fq) = (fold(p), fold(q));
            if fp == fq {
                Formula::True
            } else {
                Formula::iff(fp, fq)
            }
        }
        Formula::Forall(x, s, body) => {
            let b = fold(body);
            match b {
                Formula::True => Formula::True,
                other => Formula::Forall(x.clone(), s.clone(), Box::new(other)),
            }
        }
    }
}

fn dedup_preserving(parts: Vec<Formula>) -> Vec<Formula> {
    let mut seen = Vec::new();
    for p in parts {
        if !seen.contains(&p) {
            seen.push(p);
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    #[test]
    fn nnf_pushes_negation_through_connectives() {
        let f = Formula::not(Formula::and(vec![
            Formula::pred("p", vec![Term::var("x")]),
            Formula::pred("q", vec![Term::var("x")]),
        ]));
        let nnf = to_nnf(&f, false);
        assert_eq!(nnf.to_string(), "(!(p(x)) || !(q(x)))");
    }

    #[test]
    fn nnf_expands_implication() {
        let f = Formula::Implies(
            Box::new(Formula::pred("p", vec![])),
            Box::new(Formula::pred("q", vec![])),
        );
        assert_eq!(to_nnf(&f, false).to_string(), "(!(p()) || q())");
        assert_eq!(to_nnf(&f, true).to_string(), "(p() && !(q()))");
    }

    #[test]
    fn constant_folding_of_ground_atoms() {
        let f = Formula::and(vec![
            Formula::eq(Term::int(1), Term::int(1)),
            Formula::lt(Term::int(1), Term::int(2)),
            Formula::pred("p", vec![]),
        ]);
        assert_eq!(simplify(&f), Formula::pred("p", vec![]));
    }

    #[test]
    fn reflexive_equality_is_true() {
        let f = Formula::eq(Term::var("x"), Term::var("x"));
        assert_eq!(simplify(&f), Formula::True);
        let g = Formula::lt(Term::var("x"), Term::var("x"));
        assert_eq!(simplify(&g), Formula::False);
    }

    #[test]
    fn duplicate_conjuncts_removed() {
        let p = Formula::pred("p", vec![Term::var("x")]);
        let f = Formula::And(vec![p.clone(), p.clone(), p.clone()]);
        assert_eq!(simplify(&f), p);
    }

    #[test]
    fn trivial_forall_collapses() {
        let f = Formula::forall("x", Sort::Int, Formula::eq(Term::var("x"), Term::var("x")));
        assert_eq!(simplify(&f), Formula::True);
    }

    #[test]
    fn iff_of_identical_sides_is_true() {
        let p = Formula::pred("p", vec![]);
        assert_eq!(simplify(&Formula::iff(p.clone(), p)), Formula::True);
    }
}
