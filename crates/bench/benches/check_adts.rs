//! End-to-end benchmark: full HAT verification of representative benchmark configurations
//! (the `t_total` column of Table 1). The complete table, including the slow
//! configurations, is produced by the `table1` binary.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("check_adts");
    group.sample_size(10);
    for (adt, lib) in [("Heap", "Tree"), ("ConnectedGraph", "Set")] {
        let bench = hat_suite::find(adt, lib).expect("configuration exists");
        group.bench_function(format!("{adt}_{lib}"), |b| {
            b.iter(|| {
                let reports = bench.check_all();
                assert!(reports.iter().any(|r| r.verified));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_check);
criterion_main!(benches);
