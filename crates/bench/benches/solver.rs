//! Micro-benchmarks for the SMT-lite solver (the `t_SAT` ingredient of every table).

use criterion::{criterion_group, criterion_main, Criterion};
use hat_logic::{Formula, Solver, Sort, Term};

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(20);
    group.bench_function("ordering_chain_entailment", |b| {
        let env: Vec<(String, Sort)> = (0..6).map(|i| (format!("x{i}"), Sort::Int)).collect();
        let hyps: Vec<Formula> = (0..5)
            .map(|i| Formula::lt(Term::var(format!("x{i}")), Term::var(format!("x{}", i + 1))))
            .collect();
        let goal = Formula::lt(Term::var("x0"), Term::var("x5"));
        b.iter(|| {
            let mut s = Solver::default();
            assert!(s.entails(&env, &hyps, &goal));
        })
    });
    group.bench_function("congruence_entailment", |b| {
        let env = vec![
            ("a".to_string(), Sort::named("T")),
            ("b".to_string(), Sort::named("T")),
        ];
        let hyp = Formula::eq(Term::var("a"), Term::var("b"));
        let goal = Formula::eq(
            Term::app("f", vec![Term::app("f", vec![Term::var("a")])]),
            Term::app("f", vec![Term::app("f", vec![Term::var("b")])]),
        );
        b.iter(|| {
            let mut s = Solver::default();
            assert!(s.entails(&env, std::slice::from_ref(&hyp), &goal));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
