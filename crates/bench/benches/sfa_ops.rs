//! Micro-benchmarks for the symbolic-automaton engine: minterm construction, DFA
//! construction and language inclusion (the `t_FA⊆` ingredient of every table).

use criterion::{criterion_group, criterion_main, Criterion};
use hat_logic::{Formula, Solver, Sort, Term};
use hat_sfa::{InclusionChecker, OpSig, Sfa, VarCtx};

fn ins(el: &str) -> Sfa {
    Sfa::event(
        "insert",
        vec!["x".into()],
        "v",
        Formula::eq(Term::var("x"), Term::var(el)),
    )
}

fn uniqueness(el: &str) -> Sfa {
    Sfa::globally(Sfa::implies(
        ins(el),
        Sfa::next(Sfa::not(Sfa::eventually(ins(el)))),
    ))
}

fn bench_inclusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfa");
    group.sample_size(20);
    let ops = vec![
        OpSig::new("insert", vec![("x".into(), Sort::Int)], Sort::Unit),
        OpSig::new("mem", vec![("x".into(), Sort::Int)], Sort::Bool),
    ];
    let ctx = VarCtx::new(
        vec![("el".into(), Sort::Int), ("elem".into(), Sort::Int)],
        vec![],
    );
    group.bench_function("uniqueness_preservation_inclusion", |b| {
        b.iter(|| {
            let mut checker = InclusionChecker::new(ops.clone());
            let mut solver = Solver::default();
            let inv = uniqueness("el");
            let guarded = Sfa::and(vec![inv.clone(), Sfa::not(Sfa::eventually(ins("elem")))]);
            let post = Sfa::concat(guarded, Sfa::and(vec![ins("elem"), Sfa::last()]));
            assert!(checker.check(&ctx, &post, &inv, &mut solver).unwrap());
        })
    });
    group.bench_function("uniqueness_violation_detection", |b| {
        b.iter(|| {
            let mut checker = InclusionChecker::new(ops.clone());
            let mut solver = Solver::default();
            let inv = uniqueness("el");
            let post = Sfa::concat(inv.clone(), Sfa::and(vec![ins("elem"), Sfa::last()]));
            assert!(!checker.check(&ctx, &post, &inv, &mut solver).unwrap());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inclusion);
criterion_main!(benches);
