//! The daemon trace replay: measures `marpled` as a service — requests per second and
//! per-request latency percentiles over the wire, not just engine-side wall time.
//!
//! The trace is the non-slow benchmark suite replayed as one `check` request per
//! configuration, twice: a **cold** client against a daemon whose store starts empty,
//! then a **warm** second client on a fresh connection. The warm phase is the daemon's
//! whole value proposition, so the replay records the evidence: every query answered
//! from the shared store (`cache_misses == 0`) without replaying the disk log again
//! (`disk_loaded == 0` — the log was read once, at daemon startup, not per client).
//!
//! The **mixed-traffic** replay ([`mixed_traffic_replay`]) measures fairness instead
//! of throughput: a latency-sensitive `check` probe is timed uncontended, then again
//! while several background clients hammer the daemon with back-to-back `check-all`
//! batches. Under the per-submission round-robin scheduler the contended p95 stays
//! within a small factor of the uncontended p95; under a single FIFO queue it would
//! trail the whole batch.

use hat_daemon::{Addr, Daemon, DaemonConfig, RemoteClient, Request};
use hat_engine::EngineConfig;
use hat_suite::Benchmark;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One replayed client session.
#[derive(Debug, Clone)]
pub struct ReplayPhase {
    /// Requests issued (one `check` per configuration).
    pub requests: usize,
    /// Verification jobs those requests ran server-side.
    pub jobs: usize,
    /// Wall-clock time of the whole session, connect to last `done`.
    pub wall_seconds: f64,
    /// Median request latency (send → `done`), seconds.
    pub p50_latency_seconds: f64,
    /// 95th-percentile request latency, seconds.
    pub p95_latency_seconds: f64,
    /// Solver-cache hits across the session's requests.
    pub cache_hits: usize,
    /// Solver-cache misses (queries that reached a solver).
    pub cache_misses: usize,
    /// Disk-log entries loaded *during* the session (0: the daemon loads the log once
    /// at startup, never per client).
    pub disk_loaded: usize,
}

impl ReplayPhase {
    /// Requests completed per second of session wall time.
    pub fn requests_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.requests as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// The cold-then-warm daemon replay measurement.
#[derive(Debug, Clone)]
pub struct DaemonReplay {
    /// Worker threads of the daemon's pool.
    pub workers: usize,
    /// First client: empty store, every verdict solved.
    pub cold: ReplayPhase,
    /// Second client, fresh connection: served from the shared warm store.
    pub warm: ReplayPhase,
}

/// Nearest-rank percentile of an unsorted latency sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn replay_session(addr: &Addr, trace: &[(String, String)]) -> ReplayPhase {
    let mut client = RemoteClient::connect(addr).expect("the replay client connects");
    let mut latencies = Vec::with_capacity(trace.len());
    let mut jobs = 0;
    let mut hits = 0;
    let mut misses = 0;
    let mut disk_loaded = 0;
    let start = Instant::now();
    for (adt, library) in trace {
        let sent = Instant::now();
        let run = client
            .verify(
                Request::Check {
                    adt: adt.clone(),
                    library: library.clone(),
                },
                |_, _, _| {},
            )
            .unwrap_or_else(|e| panic!("replaying {adt}/{library} failed: {e}"));
        latencies.push(sent.elapsed().as_secs_f64());
        jobs += run.jobs;
        hits += run.summary.cache.hits;
        misses += run.summary.cache.misses;
        disk_loaded += run.summary.cache.disk_loaded;
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);
    ReplayPhase {
        requests: trace.len(),
        jobs,
        wall_seconds,
        p50_latency_seconds: percentile(&latencies, 50.0),
        p95_latency_seconds: percentile(&latencies, 95.0),
        cache_hits: hits,
        cache_misses: misses,
        disk_loaded,
    }
}

/// Spawns an in-process daemon (disk-backed store on a temp path, temp socket) and
/// replays the trace as two client sessions, cold then warm.
pub fn daemon_replay(benches: &[Benchmark], workers: usize) -> DaemonReplay {
    let tag = std::process::id();
    let cache_path = std::env::temp_dir().join(format!("hat-bench-replay-{tag}.cache"));
    let _ = std::fs::remove_file(&cache_path);
    let daemon = Daemon::spawn(DaemonConfig {
        addr: Addr::Unix(std::env::temp_dir().join(format!("hat-bench-replay-{tag}.sock"))),
        engine: EngineConfig {
            jobs: workers,
            cache_path: Some(cache_path.clone()),
            ..EngineConfig::default()
        },
        quiet: true,
        ..DaemonConfig::default()
    })
    .expect("the replay daemon starts");
    let trace: Vec<(String, String)> = benches
        .iter()
        .filter(|b| !b.slow)
        .map(|b| (b.adt.to_string(), b.library.to_string()))
        .collect();
    let cold = replay_session(daemon.addr(), &trace);
    let warm = replay_session(daemon.addr(), &trace);
    daemon.stop();
    let _ = std::fs::remove_file(&cache_path);
    DaemonReplay {
        workers,
        cold,
        warm,
    }
}

/// The fairness measurement: probe `check` latency with and without competing
/// `check-all` traffic, against one warm daemon.
#[derive(Debug, Clone)]
pub struct MixedTrafficReplay {
    /// Worker threads of the daemon's pool.
    pub workers: usize,
    /// Background clients issuing back-to-back `check-all` batches.
    pub background_clients: usize,
    /// `check-all` batches the background clients completed during the contended phase.
    pub background_batches: usize,
    /// Probe `check` requests timed per phase.
    pub probes: usize,
    /// Uncontended probe latency, seconds.
    pub uncontended_p50_seconds: f64,
    pub uncontended_p95_seconds: f64,
    /// Probe latency while the background clients hammer the daemon, seconds.
    pub contended_p50_seconds: f64,
    pub contended_p95_seconds: f64,
    /// Identical in-flight jobs coalesced across clients over the whole replay.
    pub dedup_hits: u64,
    /// Scheduler queue-wait p95 over the daemon's recent jobs, milliseconds.
    pub queue_wait_p95_ms: f64,
}

impl MixedTrafficReplay {
    /// Contended p95 over uncontended p95 — the fairness headline. 1.0 means
    /// contention is invisible to the probe; a FIFO queue would put this at the
    /// length of a whole `check-all` batch over one `check`.
    pub fn contention_ratio_p95(&self) -> f64 {
        if self.uncontended_p95_seconds > 0.0 {
            self.contended_p95_seconds / self.uncontended_p95_seconds
        } else {
            0.0
        }
    }
}

/// Times `probes` sequential probe requests and returns their sorted latencies.
fn probe_latencies(
    addr: &Addr,
    probe: &(String, String),
    probes: usize,
    pace: Duration,
) -> Vec<f64> {
    let mut client = RemoteClient::connect(addr).expect("the probe client connects");
    let mut latencies = Vec::with_capacity(probes);
    for _ in 0..probes {
        let sent = Instant::now();
        client
            .verify(
                Request::Check {
                    adt: probe.0.clone(),
                    library: probe.1.clone(),
                },
                |_, _, _| {},
            )
            .unwrap_or_else(|e| panic!("probe {}/{} failed: {e}", probe.0, probe.1));
        latencies.push(sent.elapsed().as_secs_f64());
        std::thread::sleep(pace);
    }
    latencies.sort_by(f64::total_cmp);
    latencies
}

/// Spawns a warm in-process daemon and measures probe `check` latency uncontended,
/// then under `background_clients` concurrent `check-all` loops. The probe is the
/// first non-slow configuration; verdicts are whatever the engine produces — the
/// replay only times them.
pub fn mixed_traffic_replay(
    benches: &[Benchmark],
    workers: usize,
    background_clients: usize,
    probes: usize,
) -> MixedTrafficReplay {
    let tag = std::process::id();
    let cache_path = std::env::temp_dir().join(format!("hat-bench-mixed-{tag}.cache"));
    let _ = std::fs::remove_file(&cache_path);
    let daemon = Daemon::spawn(DaemonConfig {
        addr: Addr::Unix(std::env::temp_dir().join(format!("hat-bench-mixed-{tag}.sock"))),
        engine: EngineConfig {
            jobs: workers,
            cache_path: Some(cache_path.clone()),
            ..EngineConfig::default()
        },
        quiet: true,
        ..DaemonConfig::default()
    })
    .expect("the mixed-traffic daemon starts");
    let addr = daemon.addr().clone();
    let probe = benches
        .iter()
        .find(|b| !b.slow)
        .map(|b| (b.adt.to_string(), b.library.to_string()))
        .expect("a non-slow probe configuration exists");
    // Warm the store once so both phases measure scheduling, not solving.
    RemoteClient::connect(&addr)
        .expect("the warmup client connects")
        .verify(Request::Warmup, |_, _, _| {})
        .expect("warmup succeeds");
    let pace = Duration::from_millis(5);
    let uncontended = probe_latencies(&addr, &probe, probes, pace);
    // Contended phase: background clients issue back-to-back check-all batches for as
    // long as the probes run.
    let stop = AtomicBool::new(false);
    let batches = AtomicUsize::new(0);
    let contended = std::thread::scope(|scope| {
        for _ in 0..background_clients {
            scope.spawn(|| {
                let mut client =
                    RemoteClient::connect(&addr).expect("a background client connects");
                while !stop.load(Ordering::Relaxed) {
                    client
                        .verify(Request::CheckAll, |_, _, _| {})
                        .expect("a background check-all completes");
                    batches.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let latencies = probe_latencies(&addr, &probe, probes, pace);
        stop.store(true, Ordering::Relaxed);
        latencies
    });
    let status = RemoteClient::connect(&addr)
        .expect("the status client connects")
        .cache_stats()
        .expect("the status probe succeeds");
    daemon.stop();
    let _ = std::fs::remove_file(&cache_path);
    MixedTrafficReplay {
        workers,
        background_clients,
        background_batches: batches.into_inner(),
        probes,
        uncontended_p50_seconds: percentile(&uncontended, 50.0),
        uncontended_p95_seconds: percentile(&uncontended, 95.0),
        contended_p50_seconds: percentile(&contended, 50.0),
        contended_p95_seconds: percentile(&contended, 95.0),
        dedup_hits: status.dedup_hits,
        queue_wait_p95_ms: status.queue_wait_p95_ms,
    }
}
