//! The daemon trace replay: measures `marpled` as a service — requests per second and
//! per-request latency percentiles over the wire, not just engine-side wall time.
//!
//! The trace is the non-slow benchmark suite replayed as one `check` request per
//! configuration, twice: a **cold** client against a daemon whose store starts empty,
//! then a **warm** second client on a fresh connection. The warm phase is the daemon's
//! whole value proposition, so the replay records the evidence: every query answered
//! from the shared store (`cache_misses == 0`) without replaying the disk log again
//! (`disk_loaded == 0` — the log was read once, at daemon startup, not per client).

use hat_daemon::{Addr, Daemon, DaemonConfig, RemoteClient, Request};
use hat_engine::EngineConfig;
use hat_suite::Benchmark;
use std::time::Instant;

/// One replayed client session.
#[derive(Debug, Clone)]
pub struct ReplayPhase {
    /// Requests issued (one `check` per configuration).
    pub requests: usize,
    /// Verification jobs those requests ran server-side.
    pub jobs: usize,
    /// Wall-clock time of the whole session, connect to last `done`.
    pub wall_seconds: f64,
    /// Median request latency (send → `done`), seconds.
    pub p50_latency_seconds: f64,
    /// 95th-percentile request latency, seconds.
    pub p95_latency_seconds: f64,
    /// Solver-cache hits across the session's requests.
    pub cache_hits: usize,
    /// Solver-cache misses (queries that reached a solver).
    pub cache_misses: usize,
    /// Disk-log entries loaded *during* the session (0: the daemon loads the log once
    /// at startup, never per client).
    pub disk_loaded: usize,
}

impl ReplayPhase {
    /// Requests completed per second of session wall time.
    pub fn requests_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.requests as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// The cold-then-warm daemon replay measurement.
#[derive(Debug, Clone)]
pub struct DaemonReplay {
    /// Worker threads of the daemon's pool.
    pub workers: usize,
    /// First client: empty store, every verdict solved.
    pub cold: ReplayPhase,
    /// Second client, fresh connection: served from the shared warm store.
    pub warm: ReplayPhase,
}

/// Nearest-rank percentile of an unsorted latency sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn replay_session(addr: &Addr, trace: &[(String, String)]) -> ReplayPhase {
    let mut client = RemoteClient::connect(addr).expect("the replay client connects");
    let mut latencies = Vec::with_capacity(trace.len());
    let mut jobs = 0;
    let mut hits = 0;
    let mut misses = 0;
    let mut disk_loaded = 0;
    let start = Instant::now();
    for (adt, library) in trace {
        let sent = Instant::now();
        let run = client
            .verify(
                Request::Check {
                    adt: adt.clone(),
                    library: library.clone(),
                },
                |_, _, _| {},
            )
            .unwrap_or_else(|e| panic!("replaying {adt}/{library} failed: {e}"));
        latencies.push(sent.elapsed().as_secs_f64());
        jobs += run.jobs;
        hits += run.summary.cache.hits;
        misses += run.summary.cache.misses;
        disk_loaded += run.summary.cache.disk_loaded;
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);
    ReplayPhase {
        requests: trace.len(),
        jobs,
        wall_seconds,
        p50_latency_seconds: percentile(&latencies, 50.0),
        p95_latency_seconds: percentile(&latencies, 95.0),
        cache_hits: hits,
        cache_misses: misses,
        disk_loaded,
    }
}

/// Spawns an in-process daemon (disk-backed store on a temp path, temp socket) and
/// replays the trace as two client sessions, cold then warm.
pub fn daemon_replay(benches: &[Benchmark], workers: usize) -> DaemonReplay {
    let tag = std::process::id();
    let cache_path = std::env::temp_dir().join(format!("hat-bench-replay-{tag}.cache"));
    let _ = std::fs::remove_file(&cache_path);
    let daemon = Daemon::spawn(DaemonConfig {
        addr: Addr::Unix(std::env::temp_dir().join(format!("hat-bench-replay-{tag}.sock"))),
        engine: EngineConfig {
            jobs: workers,
            cache_path: Some(cache_path.clone()),
            ..EngineConfig::default()
        },
        quiet: true,
    })
    .expect("the replay daemon starts");
    let trace: Vec<(String, String)> = benches
        .iter()
        .filter(|b| !b.slow)
        .map(|b| (b.adt.to_string(), b.library.to_string()))
        .collect();
    let cold = replay_session(daemon.addr(), &trace);
    let warm = replay_session(daemon.addr(), &trace);
    daemon.stop();
    let _ = std::fs::remove_file(&cache_path);
    DaemonReplay {
        workers,
        cold,
        warm,
    }
}
