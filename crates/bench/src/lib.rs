//! # hat-bench
//!
//! The benchmark harness that regenerates the evaluation artefacts of the paper:
//! Table 1 (per-configuration summary), Table 2 (invariant catalogue) and Tables 3/4
//! (per-method details), plus Criterion micro-benchmarks for the solver and the
//! symbolic-automaton engine. The `table1` binary additionally runs the engine
//! comparison ([`engine_comparison`]), the daemon trace replay ([`daemon_replay`]) and
//! the mixed-traffic fairness replay ([`mixed_traffic_replay`]), measures the LSM
//! cache backend ([`lsm_measurement`]) and writes `BENCH_engine.json` (schema
//! [`ENGINE_BENCH_SCHEMA`]).

use hat_core::MethodReport;
use hat_engine::{CacheStatsSnapshot, Engine, EngineConfig, RunSummary};
use hat_sfa::{EnumerationMode, InclusionMode, SubsumptionMode};
use hat_suite::Benchmark;
use std::io::Write;

mod daemon;

pub use daemon::{
    daemon_replay, mixed_traffic_replay, DaemonReplay, MixedTrafficReplay, ReplayPhase,
};

/// The aggregated row of Table 1 for one configuration.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// ADT name.
    pub adt: String,
    /// Library name.
    pub library: String,
    /// `#Method` column.
    pub methods: usize,
    /// `#Ghost` column.
    pub ghosts: usize,
    /// `s_I` column.
    pub invariant_size: usize,
    /// `t_total` column (seconds).
    pub total_seconds: f64,
    /// Whether every non-buggy method verified and every buggy variant was rejected.
    pub all_as_expected: bool,
    /// The most complex method's report (second half of Table 1).
    pub hardest: Option<MethodReport>,
}

/// Runs the checker over one configuration and summarises it as a Table 1 row.
pub fn table1_row(bench: &Benchmark) -> (Table1Row, Vec<MethodReport>) {
    let reports = bench.check_all();
    let total: f64 = reports
        .iter()
        .map(|r| r.stats.total_time.as_secs_f64())
        .sum();
    let all_as_expected = bench
        .methods
        .iter()
        .zip(&reports)
        .all(|(m, r)| r.verified == m.expect_verified);
    let hardest = bench
        .methods
        .iter()
        .zip(&reports)
        .filter(|(m, _)| m.expect_verified)
        .map(|(_, r)| r.clone())
        .max_by_key(|r| r.stats.sat_queries);
    let row = Table1Row {
        adt: bench.adt.to_string(),
        library: bench.library.to_string(),
        methods: bench.method_count(),
        ghosts: bench.ghost_count(),
        invariant_size: bench.invariant_size(),
        total_seconds: total,
        all_as_expected,
        hardest,
    };
    (row, reports)
}

/// One measured engine configuration (e.g. "1 job, cold cache") over the whole suite.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Human-readable label, e.g. `jobs=4 warm`.
    pub label: String,
    /// Worker count of the run.
    pub jobs: usize,
    /// Whether the run reused a cache populated by an earlier run.
    pub warm: bool,
    /// Minterm enumeration strategy of the run (`"naive"` or `"incremental"`).
    pub enumeration: &'static str,
    /// Whether per-group alphabet pruning ran before DFA construction.
    pub prune: bool,
    /// How language inclusion was decided (`"onthefly"` or `"materialise"`).
    pub inclusion: &'static str,
    /// Antichain subsumption tier of the on-the-fly walks (`"off"`, `"syntactic"` or
    /// `"simulation"`).
    pub subsume: &'static str,
    /// Whether per-worker local read-through tiers fronted the shared store.
    pub local_tiers: bool,
    /// Wall-clock seconds for the whole suite.
    pub wall_seconds: f64,
    /// Run-wide cache counters (per-run deltas).
    pub cache: CacheStatsSnapshot,
    /// Per-benchmark measurements, in suite order.
    pub benchmarks: Vec<EngineBenchRow>,
}

/// Engine measurements for one benchmark configuration within a run.
#[derive(Debug, Clone)]
pub struct EngineBenchRow {
    /// ADT name.
    pub adt: String,
    /// Library name.
    pub library: String,
    /// Summed per-method verification seconds.
    pub check_seconds: f64,
    /// Standalone SMT queries issued by this benchmark's methods.
    pub sat_queries: usize,
    /// Incremental enumeration checks issued by this benchmark's methods.
    pub enum_queries: usize,
    /// Unsatisfiable enumeration branches abandoned.
    pub pruned_subtrees: usize,
    /// Alphabet transformations answered from the minterm-set memo.
    pub minterm_memo_hits: usize,
    /// Inclusion checks answered from the inclusion-verdict memo.
    pub inclusion_memo_hits: usize,
    /// Cache hits recorded by this benchmark's methods.
    pub cache_hits: usize,
    /// Cache misses recorded by this benchmark's methods.
    pub cache_misses: usize,
    /// Total DFA states constructed by this benchmark's methods.
    pub dfa_states: usize,
    /// Total DFA transitions constructed by this benchmark's methods.
    pub dfa_transitions: usize,
    /// Alphabet symbols dropped by per-group pruning.
    pub alphabet_pruned: usize,
    /// DFA transitions answered from the run-wide transition memo.
    pub transition_memo_hits: usize,
    /// Product states discovered by on-the-fly inclusion walks (0 in materialised runs).
    pub product_states: usize,
    /// Per-group product walks answered from the DFA-shape memo.
    pub shape_memo_hits: usize,
    /// Shared-tier shard-lock acquisitions by this benchmark's methods.
    pub shared_tier_locks: usize,
    /// Antichain probes issued by the subsumption layer (0 when `--subsume off`).
    pub subsumption_checks: usize,
    /// Product pairs dropped by antichain subsumption before being enqueued.
    pub subsumed_pairs: usize,
    /// Simulation-order queries answered from the memoised preorder (warm-run signal).
    pub simulation_memo_hits: usize,
}

impl EngineBenchRow {
    /// Standalone queries plus incremental checks: the number to compare across
    /// enumeration modes.
    pub fn total_solver_work(&self) -> usize {
        self.sat_queries + self.enum_queries
    }
}

fn engine_run(label: &str, config: &EngineConfig, warm: bool, summary: &RunSummary) -> EngineRun {
    EngineRun {
        label: label.to_string(),
        jobs: config.jobs,
        warm,
        enumeration: match config.enumeration {
            EnumerationMode::Naive => "naive",
            EnumerationMode::Incremental => "incremental",
        },
        prune: config.prune,
        inclusion: match config.inclusion {
            InclusionMode::OnTheFly => "onthefly",
            InclusionMode::Materialise => "materialise",
        },
        subsume: config.subsume.as_str(),
        local_tiers: config.local_tiers,
        wall_seconds: summary.wall.as_secs_f64(),
        cache: summary.cache,
        benchmarks: summary
            .benchmarks
            .iter()
            .map(|b| EngineBenchRow {
                adt: b.adt.clone(),
                library: b.library.clone(),
                check_seconds: b.check_time.as_secs_f64(),
                sat_queries: b.sat_queries(),
                enum_queries: b.enum_queries(),
                pruned_subtrees: b.pruned_subtrees(),
                minterm_memo_hits: b.minterm_memo_hits(),
                inclusion_memo_hits: b.inclusion_memo_hits(),
                cache_hits: b.cache_hits(),
                cache_misses: b.cache_misses(),
                dfa_states: b.dfa_states(),
                dfa_transitions: b.dfa_transitions(),
                alphabet_pruned: b.alphabet_pruned(),
                transition_memo_hits: b.transition_memo_hits(),
                product_states: b.product_states(),
                shape_memo_hits: b.shape_memo_hits(),
                shared_tier_locks: b.shared_tier_locks(),
                subsumption_checks: b.subsumption_checks(),
                subsumed_pairs: b.subsumed_pairs(),
                simulation_memo_hits: b.simulation_memo_hits(),
            })
            .collect(),
    }
}

/// The cold-enumeration cost of one configuration under both strategies: the evidence for
/// the "incremental enumeration reduces cold SAT-query count" claim.
#[derive(Debug, Clone)]
pub struct EnumReductionRow {
    /// ADT name.
    pub adt: String,
    /// Library name.
    pub library: String,
    /// Total solver work (queries) of the cold naive run.
    pub naive_queries: usize,
    /// Total solver work (queries + scoped checks) of the cold incremental run.
    pub incremental_queries: usize,
    /// Enumeration-only queries of the naive run. Both modes issue an identical set of
    /// non-enumeration queries (transition entailments, subtyping, consistency checks —
    /// the incremental run's standalone `sat_queries`), so the naive enumeration cost is
    /// the naive total minus that shared part.
    pub naive_enumeration: usize,
    /// Enumeration-only checks of the incremental run (its scoped-session checks).
    pub incremental_enumeration: usize,
}

impl EnumReductionRow {
    /// naive / incremental ratio over total solver work (∞-safe: 0 when incremental
    /// is 0).
    pub fn reduction(&self) -> f64 {
        if self.incremental_queries == 0 {
            0.0
        } else {
            self.naive_queries as f64 / self.incremental_queries as f64
        }
    }

    /// naive / incremental ratio over enumeration work only — the cost the incremental
    /// search tree actually replaces (∞-safe: 0 when incremental is 0).
    pub fn enumeration_reduction(&self) -> f64 {
        if self.incremental_enumeration == 0 {
            0.0
        } else {
            self.naive_enumeration as f64 / self.incremental_enumeration as f64
        }
    }
}

/// The DFA-construction cost of one configuration with and without per-group alphabet
/// pruning: the evidence for the "pruning shrinks product construction without changing
/// the reachable state set" claim.
#[derive(Debug, Clone)]
pub struct PruneReductionRow {
    /// ADT name.
    pub adt: String,
    /// Library name.
    pub library: String,
    /// DFA transitions constructed by the cold unpruned run.
    pub unpruned_transitions: usize,
    /// DFA transitions constructed by the cold pruned run.
    pub pruned_transitions: usize,
    /// DFA states of the unpruned run (must equal the pruned run's).
    pub unpruned_states: usize,
    /// DFA states of the pruned run.
    pub pruned_states: usize,
    /// Alphabet symbols dropped by the pruned run.
    pub alphabet_pruned: usize,
}

impl PruneReductionRow {
    /// unpruned / pruned transition ratio (∞-safe: 0 when pruned is 0).
    pub fn reduction(&self) -> f64 {
        if self.pruned_transitions == 0 {
            0.0
        } else {
            self.unpruned_transitions as f64 / self.pruned_transitions as f64
        }
    }
}

/// The inclusion-decision cost of one configuration under both pipelines: the evidence
/// for the "on-the-fly product walk avoids materialising both DFAs" claim. Every column
/// names the mode that produced it (`materialise` as spelled by `--inclusion`, and
/// `onthefly_simulation` because the measured on-the-fly run is the default
/// configuration, whose antichain subsumption tier is simulation) — now that the walk's
/// size depends on both axes, an unqualified "baseline" column would be ambiguous.
#[derive(Debug, Clone)]
pub struct InclusionReductionRow {
    /// ADT name.
    pub adt: String,
    /// Library name.
    pub library: String,
    /// Residual states built by the cold `--inclusion materialise` run (both complete
    /// DFAs).
    pub materialise_states: usize,
    /// Residual states derived by the cold on-the-fly simulation-subsumption run
    /// (frontier-reached only).
    pub onthefly_simulation_states: usize,
    /// Transitions derived by the cold materialise run.
    pub materialise_transitions: usize,
    /// Transitions derived by the cold on-the-fly simulation-subsumption run.
    pub onthefly_simulation_transitions: usize,
    /// Distinct product pairs enqueued by the on-the-fly simulation-subsumption walks.
    pub product_states: usize,
    /// Summed per-method check seconds of the materialise run.
    pub materialise_seconds: f64,
    /// Summed per-method check seconds of the on-the-fly simulation-subsumption run.
    pub onthefly_simulation_seconds: f64,
}

impl InclusionReductionRow {
    /// materialise / on-the-fly transition ratio (∞-safe: 0 when on-the-fly is 0).
    pub fn reduction(&self) -> f64 {
        if self.onthefly_simulation_transitions == 0 {
            0.0
        } else {
            self.materialise_transitions as f64 / self.onthefly_simulation_transitions as f64
        }
    }
}

/// The on-the-fly product-walk cost of one configuration under the three antichain
/// subsumption tiers, cold and warm: the evidence for the "subsumption prunes the
/// frontier without changing any verdict, and the memoised simulation order pays for
/// itself on warm runs" claim. Pairs are *enqueued* product pairs (the antichain's
/// growth), so `off ≥ syntactic ≥ simulation` per benchmark is asserted by the
/// differential harnesses, not merely observed here.
#[derive(Debug, Clone)]
pub struct SubsumptionReductionRow {
    /// ADT name.
    pub adt: String,
    /// Library name.
    pub library: String,
    /// Product pairs enqueued by the cold `--subsume off` run.
    pub off_cold_pairs: usize,
    /// Product pairs enqueued by the cold `--subsume syntactic` run.
    pub syntactic_cold_pairs: usize,
    /// Product pairs enqueued by the cold `--subsume simulation` run.
    pub simulation_cold_pairs: usize,
    /// Summed per-method check seconds of the cold `--subsume off` run.
    pub off_cold_seconds: f64,
    /// Summed per-method check seconds of the cold `--subsume syntactic` run.
    pub syntactic_cold_seconds: f64,
    /// Summed per-method check seconds of the cold `--subsume simulation` run.
    pub simulation_cold_seconds: f64,
    /// Product pairs enqueued by the warm `--subsume off` rerun.
    pub off_warm_pairs: usize,
    /// Product pairs enqueued by the warm `--subsume syntactic` rerun.
    pub syntactic_warm_pairs: usize,
    /// Product pairs enqueued by the warm `--subsume simulation` rerun.
    pub simulation_warm_pairs: usize,
    /// Summed per-method check seconds of the warm `--subsume off` rerun.
    pub off_warm_seconds: f64,
    /// Summed per-method check seconds of the warm `--subsume syntactic` rerun.
    pub syntactic_warm_seconds: f64,
    /// Summed per-method check seconds of the warm `--subsume simulation` rerun.
    pub simulation_warm_seconds: f64,
    /// Pairs dropped by the antichain in the cold simulation run.
    pub subsumed_pairs: usize,
    /// Simulation-order queries answered from the memo in the warm simulation rerun.
    pub simulation_memo_hits: usize,
}

impl SubsumptionReductionRow {
    /// off / simulation cold enqueued-pair ratio (∞-safe: 0 when simulation is 0).
    pub fn cold_pair_reduction(&self) -> f64 {
        if self.simulation_cold_pairs == 0 {
            0.0
        } else {
            self.off_cold_pairs as f64 / self.simulation_cold_pairs as f64
        }
    }
}

/// The shared-tier lock traffic of one configuration at `jobs=6` with and without
/// per-worker local read-through tiers: the evidence for the "local tiers cut shard lock
/// traffic" claim. Both runs are cold and verdict-identical (asserted by the engine's
/// tier tests); only the tier composition differs.
#[derive(Debug, Clone)]
pub struct LockReductionRow {
    /// ADT name.
    pub adt: String,
    /// Library name.
    pub library: String,
    /// Shared-tier lock acquisitions of the shared-only run.
    pub shared_only_locks: usize,
    /// Shared-tier lock acquisitions of the read-through run.
    pub read_through_locks: usize,
    /// Memo hits of the read-through run (they keep accruing while locks drop).
    pub read_through_hits: usize,
}

impl LockReductionRow {
    /// shared-only / read-through lock ratio (∞-safe: 0 when read-through is 0).
    pub fn reduction(&self) -> f64 {
        if self.read_through_locks == 0 {
            0.0
        } else {
            self.shared_only_locks as f64 / self.read_through_locks as f64
        }
    }
}

/// The result of [`engine_comparison`]: the measured runs, the naive-vs-incremental
/// cold-enumeration comparison, the pruned-vs-unpruned DFA-construction comparison, the
/// materialise-vs-on-the-fly inclusion comparison, the off-vs-syntactic-vs-simulation
/// subsumption comparison, the shared-only-vs-read-through lock comparison, and the
/// names of any configurations that were excluded (never silently).
#[derive(Debug, Clone)]
pub struct EngineComparison {
    /// The measured runs.
    pub runs: Vec<EngineRun>,
    /// Per-benchmark cold enumeration cost, naive vs incremental.
    pub enum_reduction: Vec<EnumReductionRow>,
    /// Per-benchmark cold DFA-construction cost, unpruned vs pruned.
    pub prune_reduction: Vec<PruneReductionRow>,
    /// Per-benchmark cold inclusion-decision cost, materialise vs on-the-fly.
    pub inclusion_reduction: Vec<InclusionReductionRow>,
    /// Per-benchmark product-walk cost under the three subsumption tiers, cold and warm.
    pub subsumption_reduction: Vec<SubsumptionReductionRow>,
    /// Per-benchmark shared-tier lock traffic at jobs=6, shared-only vs read-through.
    pub lock_reduction: Vec<LockReductionRow>,
    /// `"ADT/Library"` names of configurations excluded from the comparison.
    pub skipped: Vec<String>,
}

/// Exercises the `hat-engine` subsystem: a cold naive-enumeration baseline, a cold
/// unpruned baseline, then sequential and parallel incremental runs, each with a cold
/// and a warm (same-engine) cache. With `include_slow` false the configurations marked
/// `slow` in the suite (whose minterm alphabets make a single cold naive run take tens
/// of minutes) are excluded and recorded in [`EngineComparison::skipped`].
pub fn engine_comparison(benches: &[Benchmark], include_slow: bool) -> EngineComparison {
    let (included, skipped): (Vec<&Benchmark>, Vec<&Benchmark>) =
        benches.iter().partition(|b| include_slow || !b.slow);
    let included: Vec<Benchmark> = included.into_iter().cloned().collect();
    let runs = comparison_runs(&included);
    let enum_reduction = runs
        .iter()
        .find(|r| r.enumeration == "naive" && !r.warm)
        .zip(runs.iter().find(|r| {
            r.enumeration == "incremental" && r.prune && !r.warm && r.inclusion == "onthefly"
        }))
        .map(|(naive, incremental)| {
            naive
                .benchmarks
                .iter()
                .zip(&incremental.benchmarks)
                .map(|(n, i)| EnumReductionRow {
                    adt: n.adt.clone(),
                    library: n.library.clone(),
                    naive_queries: n.total_solver_work(),
                    incremental_queries: i.total_solver_work(),
                    naive_enumeration: n.total_solver_work().saturating_sub(i.sat_queries),
                    incremental_enumeration: i.enum_queries,
                })
                .collect()
        })
        .unwrap_or_default();
    let prune_reduction = runs
        .iter()
        .find(|r| r.enumeration == "incremental" && !r.prune && !r.warm)
        .zip(runs.iter().find(|r| {
            r.enumeration == "incremental" && r.prune && !r.warm && r.inclusion == "onthefly"
        }))
        .map(|(unpruned, pruned)| {
            unpruned
                .benchmarks
                .iter()
                .zip(&pruned.benchmarks)
                .map(|(u, p)| PruneReductionRow {
                    adt: u.adt.clone(),
                    library: u.library.clone(),
                    unpruned_transitions: u.dfa_transitions,
                    pruned_transitions: p.dfa_transitions,
                    unpruned_states: u.dfa_states,
                    pruned_states: p.dfa_states,
                    alphabet_pruned: p.alphabet_pruned,
                })
                .collect()
        })
        .unwrap_or_default();
    let inclusion_reduction = runs
        .iter()
        .find(|r| r.inclusion == "materialise" && !r.warm)
        .zip(runs.iter().find(|r| {
            r.enumeration == "incremental" && r.prune && !r.warm && r.inclusion == "onthefly"
        }))
        .map(|(mat, otf)| {
            mat.benchmarks
                .iter()
                .zip(&otf.benchmarks)
                .map(|(m, o)| InclusionReductionRow {
                    adt: m.adt.clone(),
                    library: m.library.clone(),
                    materialise_states: m.dfa_states,
                    onthefly_simulation_states: o.dfa_states,
                    materialise_transitions: m.dfa_transitions,
                    onthefly_simulation_transitions: o.dfa_transitions,
                    product_states: o.product_states,
                    materialise_seconds: m.check_seconds,
                    onthefly_simulation_seconds: o.check_seconds,
                })
                .collect()
        })
        .unwrap_or_default();
    // The six jobs=1 on-the-fly runs, one per subsumption tier, cold and warm. The
    // selector pins every other axis to the default so the tiers are the only variable.
    let sub_run = |mode: &str, warm: bool| {
        runs.iter().find(|r| {
            r.subsume == mode
                && r.warm == warm
                && r.jobs == 1
                && r.enumeration == "incremental"
                && r.prune
                && r.inclusion == "onthefly"
        })
    };
    let subsumption_reduction = sub_run("off", false)
        .zip(sub_run("off", true))
        .zip(sub_run("syntactic", false).zip(sub_run("syntactic", true)))
        .zip(sub_run("simulation", false).zip(sub_run("simulation", true)))
        .map(|(((oc, ow), (yc, yw)), (mc, mw))| {
            oc.benchmarks
                .iter()
                .enumerate()
                .map(|(i, o)| SubsumptionReductionRow {
                    adt: o.adt.clone(),
                    library: o.library.clone(),
                    off_cold_pairs: o.product_states,
                    syntactic_cold_pairs: yc.benchmarks[i].product_states,
                    simulation_cold_pairs: mc.benchmarks[i].product_states,
                    off_cold_seconds: o.check_seconds,
                    syntactic_cold_seconds: yc.benchmarks[i].check_seconds,
                    simulation_cold_seconds: mc.benchmarks[i].check_seconds,
                    off_warm_pairs: ow.benchmarks[i].product_states,
                    syntactic_warm_pairs: yw.benchmarks[i].product_states,
                    simulation_warm_pairs: mw.benchmarks[i].product_states,
                    off_warm_seconds: ow.benchmarks[i].check_seconds,
                    syntactic_warm_seconds: yw.benchmarks[i].check_seconds,
                    simulation_warm_seconds: mw.benchmarks[i].check_seconds,
                    subsumed_pairs: mc.benchmarks[i].subsumed_pairs,
                    simulation_memo_hits: mw.benchmarks[i].simulation_memo_hits,
                })
                .collect()
        })
        .unwrap_or_default();
    let lock_reduction = runs
        .iter()
        .find(|r| r.jobs == LOCK_COMPARISON_JOBS && !r.local_tiers && !r.warm)
        .zip(
            runs.iter()
                .find(|r| r.jobs == LOCK_COMPARISON_JOBS && r.local_tiers && !r.warm),
        )
        .map(|(shared_only, read_through)| {
            shared_only
                .benchmarks
                .iter()
                .zip(&read_through.benchmarks)
                .map(|(s, t)| LockReductionRow {
                    adt: s.adt.clone(),
                    library: s.library.clone(),
                    shared_only_locks: s.shared_tier_locks,
                    read_through_locks: t.shared_tier_locks,
                    read_through_hits: t.cache_hits,
                })
                .collect()
        })
        .unwrap_or_default();
    EngineComparison {
        runs,
        enum_reduction,
        prune_reduction,
        inclusion_reduction,
        subsumption_reduction,
        lock_reduction,
        skipped: skipped
            .into_iter()
            .map(|b| format!("{}/{}", b.adt, b.library))
            .collect(),
    }
}

/// Worker count of the lock-traffic comparison runs. Fixed (not derived from the host's
/// parallelism) so the shared-only vs read-through lock numbers are comparable across
/// machines; lock *counts* depend on the interleaving less than on the number of
/// workers racing for promotion.
const LOCK_COMPARISON_JOBS: usize = 6;

fn comparison_runs(benches: &[Benchmark]) -> Vec<EngineRun> {
    let parallel_jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let mut runs = Vec::new();
    let cold = |label: &str, config: EngineConfig| -> EngineRun {
        let engine = Engine::new(config.clone()).expect("in-memory engine");
        let summary = engine.check_benchmarks(benches);
        engine_run(label, &config, false, &summary)
    };
    runs.push(cold(
        "jobs=1 cold naive-enum",
        EngineConfig {
            enumeration: EnumerationMode::Naive,
            ..EngineConfig::default()
        },
    ));
    runs.push(cold(
        "jobs=1 cold materialised",
        EngineConfig {
            inclusion: InclusionMode::Materialise,
            ..EngineConfig::default()
        },
    ));
    runs.push(cold(
        "jobs=1 cold unpruned",
        EngineConfig {
            prune: false,
            ..EngineConfig::default()
        },
    ));
    let sequential_config = EngineConfig::default();
    let sequential = Engine::new(sequential_config.clone()).expect("in-memory engine");
    runs.push(engine_run(
        "jobs=1 cold",
        &sequential_config,
        false,
        &sequential.check_benchmarks(benches),
    ));
    runs.push(engine_run(
        "jobs=1 warm",
        &sequential_config,
        true,
        &sequential.check_benchmarks(benches),
    ));
    // The subsumption-tier pairs: the default jobs=1 cold/warm runs above already
    // measure `--subsume simulation` (the default), so only the off and syntactic
    // tiers need their own cold engine plus a warm rerun.
    for (name, mode) in [
        ("off", SubsumptionMode::Off),
        ("syntactic", SubsumptionMode::Syntactic),
    ] {
        let config = EngineConfig {
            subsume: mode,
            ..EngineConfig::default()
        };
        let engine = Engine::new(config.clone()).expect("in-memory engine");
        runs.push(engine_run(
            &format!("jobs=1 cold subsume-{name}"),
            &config,
            false,
            &engine.check_benchmarks(benches),
        ));
        runs.push(engine_run(
            &format!("jobs=1 warm subsume-{name}"),
            &config,
            true,
            &engine.check_benchmarks(benches),
        ));
    }
    let parallel_config = EngineConfig {
        jobs: parallel_jobs,
        ..EngineConfig::default()
    };
    let parallel = Engine::new(parallel_config.clone()).expect("in-memory engine");
    runs.push(engine_run(
        &format!("jobs={parallel_jobs} cold"),
        &parallel_config,
        false,
        &parallel.check_benchmarks(benches),
    ));
    runs.push(engine_run(
        &format!("jobs={parallel_jobs} warm"),
        &parallel_config,
        true,
        &parallel.check_benchmarks(benches),
    ));
    // The lock-traffic pair: identical cold workloads at a fixed worker count, differing
    // only in whether workers front the shared store with local read-through tiers.
    runs.push(cold(
        &format!("jobs={LOCK_COMPARISON_JOBS} cold shared-only"),
        EngineConfig {
            jobs: LOCK_COMPARISON_JOBS,
            local_tiers: false,
            ..EngineConfig::default()
        },
    ));
    runs.push(cold(
        &format!("jobs={LOCK_COMPARISON_JOBS} cold read-through"),
        EngineConfig {
            jobs: LOCK_COMPARISON_JOBS,
            ..EngineConfig::default()
        },
    ));
    runs
}

/// The `lsm` section of `BENCH_engine.json` v8: background-flush and compaction
/// counters from a suite-volume cold run over a deliberately small memtable, plus the
/// warm-load latency of the resulting segment stack at its natural record volume and
/// at ten times that volume (synthetic padding records).
#[derive(Debug, Clone)]
pub struct LsmMeasurement {
    /// Frozen memtables flushed to segment files by the background thread.
    pub flushes: usize,
    /// Level-0 segment files written by those flushes.
    pub segments_written: usize,
    /// Input segments consumed by background merges.
    pub segments_merged: usize,
    /// Background merge passes.
    pub compactions: usize,
    /// Bytes written to segment files (flush + compaction) per byte of flushed data.
    pub write_amplification: f64,
    /// Records replayed by the 1x warm load.
    pub records_1x: usize,
    /// Wall-clock of a warm `MemoStore` open at the suite's natural record volume.
    pub warm_load_ms_1x: f64,
    /// Records replayed by the 10x warm load.
    pub records_10x: usize,
    /// Wall-clock of a warm open after padding the store to ten times the volume.
    pub warm_load_ms_10x: f64,
}

/// Measures the LSM backend: a cold disk-backed run over the non-slow suite with a
/// small memtable (so rotation and background compaction genuinely happen at suite
/// volume), then timed warm loads at 1x and 10x record volume.
pub fn lsm_measurement(benches: &[Benchmark], jobs: usize) -> LsmMeasurement {
    let benches: Vec<Benchmark> = benches.iter().filter(|b| !b.slow).cloned().collect();
    let mut path = std::env::temp_dir();
    path.push(format!("hat-bench-lsm-{}", std::process::id()));
    let cleanup = |p: &std::path::Path| {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(p.with_extension("compacting"));
        let mut lock = p.to_path_buf().into_os_string();
        lock.push(".lock");
        let _ = std::fs::remove_file(std::path::PathBuf::from(lock));
        let _ = std::fs::remove_dir_all(hat_engine::lsm::segment_dir_for(p));
    };
    cleanup(&path);
    let engine = Engine::new(EngineConfig {
        jobs,
        cache_path: Some(path.clone()),
        memtable_bytes: Some(64 * 1024),
        ..EngineConfig::default()
    })
    .expect("disk-backed engine");
    engine.check_benchmarks(&benches);
    engine.cache().flush();
    let stats = engine
        .cache()
        .lsm_stats()
        .expect("a disk-backed store has an LSM backend");
    drop(engine);

    let start = std::time::Instant::now();
    let store = hat_engine::MemoStore::with_disk_log(&path).expect("1x warm open");
    let warm_load_ms_1x = start.elapsed().as_secs_f64() * 1e3;
    let records_1x = store.stats().disk_loaded;
    // Pad to ten times the natural volume; the synthetic verdicts replay exactly like
    // real ones, so the 10x timing isolates pure segment-replay scaling.
    for i in 0..records_1x.saturating_mul(9) {
        store.insert(format!("sat|bench-pad{i}"), i % 2 == 0);
    }
    drop(store);
    let start = std::time::Instant::now();
    let store = hat_engine::MemoStore::with_disk_log(&path).expect("10x warm open");
    let warm_load_ms_10x = start.elapsed().as_secs_f64() * 1e3;
    let records_10x = store.stats().disk_loaded;
    drop(store);
    cleanup(&path);
    LsmMeasurement {
        flushes: stats.flushes,
        segments_written: stats.segments_written,
        segments_merged: stats.segments_merged,
        compactions: stats.compactions,
        write_amplification: stats.write_amplification(),
        records_1x,
        warm_load_ms_1x,
        records_10x,
        warm_load_ms_10x,
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The one schema version this writer knows how to lay out. Callers name the schema
/// they want and the writer refuses anything else — bumping the layout without bumping
/// the version string (or vice versa) becomes a hard error at the call site instead of
/// a silently mislabelled artefact.
pub const ENGINE_BENCH_SCHEMA: &str = "hat-engine-bench v9";

/// Serialises [`engine_comparison`], [`daemon_replay`], [`mixed_traffic_replay`] and
/// [`lsm_measurement`] measurements as JSON (hand-rolled: the build environment has no
/// serde). `schema` must be exactly [`ENGINE_BENCH_SCHEMA`]; any other string is
/// refused with [`std::io::ErrorKind::InvalidInput`] before the file is touched.
pub fn write_engine_json(
    path: &str,
    schema: &str,
    comparison: &EngineComparison,
    replay: Option<&DaemonReplay>,
    mixed: Option<&MixedTrafficReplay>,
    lsm: Option<&LsmMeasurement>,
) -> std::io::Result<()> {
    if schema != ENGINE_BENCH_SCHEMA {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "unrecognised engine-bench schema `{schema}`: this writer emits only \
                 `{ENGINE_BENCH_SCHEMA}`"
            ),
        ));
    }
    let runs = &comparison.runs;
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "{{")?;
    writeln!(out, "  \"schema\": \"{}\",", json_escape(schema))?;
    writeln!(
        out,
        "  \"skipped\": [{}],",
        comparison
            .skipped
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect::<Vec<_>>()
            .join(", ")
    )?;
    writeln!(out, "  \"enum_reduction\": [")?;
    for (i, row) in comparison.enum_reduction.iter().enumerate() {
        write!(
            out,
            "    {{\"adt\": \"{}\", \"library\": \"{}\", \"naive_queries\": {}, \"incremental_queries\": {}, \"reduction\": {:.3}, \"naive_enumeration\": {}, \"incremental_enumeration\": {}, \"enumeration_reduction\": {:.3}}}",
            json_escape(&row.adt),
            json_escape(&row.library),
            row.naive_queries,
            row.incremental_queries,
            row.reduction(),
            row.naive_enumeration,
            row.incremental_enumeration,
            row.enumeration_reduction()
        )?;
        writeln!(
            out,
            "{}",
            if i + 1 < comparison.enum_reduction.len() {
                ","
            } else {
                ""
            }
        )?;
    }
    writeln!(out, "  ],")?;
    writeln!(out, "  \"prune_reduction\": [")?;
    for (i, row) in comparison.prune_reduction.iter().enumerate() {
        write!(
            out,
            "    {{\"adt\": \"{}\", \"library\": \"{}\", \"unpruned_transitions\": {}, \"pruned_transitions\": {}, \"reduction\": {:.3}, \"unpruned_states\": {}, \"pruned_states\": {}, \"alphabet_pruned\": {}}}",
            json_escape(&row.adt),
            json_escape(&row.library),
            row.unpruned_transitions,
            row.pruned_transitions,
            row.reduction(),
            row.unpruned_states,
            row.pruned_states,
            row.alphabet_pruned
        )?;
        writeln!(
            out,
            "{}",
            if i + 1 < comparison.prune_reduction.len() {
                ","
            } else {
                ""
            }
        )?;
    }
    writeln!(out, "  ],")?;
    writeln!(out, "  \"inclusion_reduction\": [")?;
    for (i, row) in comparison.inclusion_reduction.iter().enumerate() {
        write!(
            out,
            "    {{\"adt\": \"{}\", \"library\": \"{}\", \"materialise_states\": {}, \"onthefly_simulation_states\": {}, \"materialise_transitions\": {}, \"onthefly_simulation_transitions\": {}, \"reduction\": {:.3}, \"product_states\": {}, \"materialise_seconds\": {:.6}, \"onthefly_simulation_seconds\": {:.6}}}",
            json_escape(&row.adt),
            json_escape(&row.library),
            row.materialise_states,
            row.onthefly_simulation_states,
            row.materialise_transitions,
            row.onthefly_simulation_transitions,
            row.reduction(),
            row.product_states,
            row.materialise_seconds,
            row.onthefly_simulation_seconds
        )?;
        writeln!(
            out,
            "{}",
            if i + 1 < comparison.inclusion_reduction.len() {
                ","
            } else {
                ""
            }
        )?;
    }
    writeln!(out, "  ],")?;
    writeln!(out, "  \"subsumption_reduction\": [")?;
    for (i, row) in comparison.subsumption_reduction.iter().enumerate() {
        write!(
            out,
            "    {{\"adt\": \"{}\", \"library\": \"{}\", \"off_cold_pairs\": {}, \"syntactic_cold_pairs\": {}, \"simulation_cold_pairs\": {}, \"cold_pair_reduction\": {:.3}, \"off_cold_seconds\": {:.6}, \"syntactic_cold_seconds\": {:.6}, \"simulation_cold_seconds\": {:.6}, \"off_warm_pairs\": {}, \"syntactic_warm_pairs\": {}, \"simulation_warm_pairs\": {}, \"off_warm_seconds\": {:.6}, \"syntactic_warm_seconds\": {:.6}, \"simulation_warm_seconds\": {:.6}, \"subsumed_pairs\": {}, \"simulation_memo_hits\": {}}}",
            json_escape(&row.adt),
            json_escape(&row.library),
            row.off_cold_pairs,
            row.syntactic_cold_pairs,
            row.simulation_cold_pairs,
            row.cold_pair_reduction(),
            row.off_cold_seconds,
            row.syntactic_cold_seconds,
            row.simulation_cold_seconds,
            row.off_warm_pairs,
            row.syntactic_warm_pairs,
            row.simulation_warm_pairs,
            row.off_warm_seconds,
            row.syntactic_warm_seconds,
            row.simulation_warm_seconds,
            row.subsumed_pairs,
            row.simulation_memo_hits
        )?;
        writeln!(
            out,
            "{}",
            if i + 1 < comparison.subsumption_reduction.len() {
                ","
            } else {
                ""
            }
        )?;
    }
    writeln!(out, "  ],")?;
    writeln!(out, "  \"lock_reduction\": [")?;
    for (i, row) in comparison.lock_reduction.iter().enumerate() {
        write!(
            out,
            "    {{\"adt\": \"{}\", \"library\": \"{}\", \"shared_only_locks\": {}, \"read_through_locks\": {}, \"reduction\": {:.3}, \"read_through_hits\": {}}}",
            json_escape(&row.adt),
            json_escape(&row.library),
            row.shared_only_locks,
            row.read_through_locks,
            row.reduction(),
            row.read_through_hits
        )?;
        writeln!(
            out,
            "{}",
            if i + 1 < comparison.lock_reduction.len() {
                ","
            } else {
                ""
            }
        )?;
    }
    writeln!(out, "  ],")?;
    if let Some(replay) = replay {
        writeln!(out, "  \"daemon_replay\": {{")?;
        writeln!(out, "    \"workers\": {},", replay.workers)?;
        for (name, phase, trailing) in [("cold", &replay.cold, ","), ("warm", &replay.warm, "")] {
            writeln!(out, "    \"{name}\": {{")?;
            writeln!(out, "      \"requests\": {},", phase.requests)?;
            writeln!(out, "      \"jobs\": {},", phase.jobs)?;
            writeln!(out, "      \"wall_seconds\": {:.6},", phase.wall_seconds)?;
            writeln!(
                out,
                "      \"requests_per_second\": {:.3},",
                phase.requests_per_second()
            )?;
            writeln!(
                out,
                "      \"p50_latency_seconds\": {:.6},",
                phase.p50_latency_seconds
            )?;
            writeln!(
                out,
                "      \"p95_latency_seconds\": {:.6},",
                phase.p95_latency_seconds
            )?;
            writeln!(out, "      \"cache_hits\": {},", phase.cache_hits)?;
            writeln!(out, "      \"cache_misses\": {},", phase.cache_misses)?;
            writeln!(out, "      \"disk_loaded\": {}", phase.disk_loaded)?;
            writeln!(out, "    }}{trailing}")?;
        }
        writeln!(out, "  }},")?;
    }
    if let Some(mixed) = mixed {
        writeln!(out, "  \"mixed_traffic\": {{")?;
        writeln!(out, "    \"workers\": {},", mixed.workers)?;
        writeln!(
            out,
            "    \"background_clients\": {},",
            mixed.background_clients
        )?;
        writeln!(
            out,
            "    \"background_batches\": {},",
            mixed.background_batches
        )?;
        writeln!(out, "    \"probes\": {},", mixed.probes)?;
        writeln!(
            out,
            "    \"uncontended_p50_seconds\": {:.6},",
            mixed.uncontended_p50_seconds
        )?;
        writeln!(
            out,
            "    \"uncontended_p95_seconds\": {:.6},",
            mixed.uncontended_p95_seconds
        )?;
        writeln!(
            out,
            "    \"contended_p50_seconds\": {:.6},",
            mixed.contended_p50_seconds
        )?;
        writeln!(
            out,
            "    \"contended_p95_seconds\": {:.6},",
            mixed.contended_p95_seconds
        )?;
        writeln!(
            out,
            "    \"contention_ratio_p95\": {:.3},",
            mixed.contention_ratio_p95()
        )?;
        writeln!(out, "    \"dedup_hits\": {},", mixed.dedup_hits)?;
        writeln!(
            out,
            "    \"queue_wait_p95_ms\": {:.3}",
            mixed.queue_wait_p95_ms
        )?;
        writeln!(out, "  }},")?;
    }
    if let Some(lsm) = lsm {
        writeln!(out, "  \"lsm\": {{")?;
        writeln!(out, "    \"flushes\": {},", lsm.flushes)?;
        writeln!(out, "    \"segments_written\": {},", lsm.segments_written)?;
        writeln!(out, "    \"segments_merged\": {},", lsm.segments_merged)?;
        writeln!(out, "    \"compactions\": {},", lsm.compactions)?;
        writeln!(
            out,
            "    \"write_amplification\": {:.3},",
            lsm.write_amplification
        )?;
        writeln!(out, "    \"records_1x\": {},", lsm.records_1x)?;
        writeln!(out, "    \"warm_load_ms_1x\": {:.3},", lsm.warm_load_ms_1x)?;
        writeln!(out, "    \"records_10x\": {},", lsm.records_10x)?;
        writeln!(out, "    \"warm_load_ms_10x\": {:.3}", lsm.warm_load_ms_10x)?;
        writeln!(out, "  }},")?;
    }
    writeln!(out, "  \"runs\": [")?;
    for (i, run) in runs.iter().enumerate() {
        writeln!(out, "    {{")?;
        writeln!(out, "      \"label\": \"{}\",", json_escape(&run.label))?;
        writeln!(out, "      \"jobs\": {},", run.jobs)?;
        writeln!(out, "      \"warm_cache\": {},", run.warm)?;
        writeln!(out, "      \"enumeration\": \"{}\",", run.enumeration)?;
        writeln!(out, "      \"prune\": {},", run.prune)?;
        writeln!(out, "      \"inclusion\": \"{}\",", run.inclusion)?;
        writeln!(out, "      \"subsume\": \"{}\",", run.subsume)?;
        writeln!(out, "      \"local_tiers\": {},", run.local_tiers)?;
        writeln!(out, "      \"wall_seconds\": {:.6},", run.wall_seconds)?;
        writeln!(out, "      \"cache_hits\": {},", run.cache.hits)?;
        writeln!(out, "      \"cache_misses\": {},", run.cache.misses)?;
        writeln!(
            out,
            "      \"cache_hit_rate\": {:.6},",
            run.cache.hit_rate()
        )?;
        writeln!(
            out,
            "      \"minterm_memo_hits\": {},",
            run.cache.minterm_hits
        )?;
        writeln!(
            out,
            "      \"transition_memo_hits\": {},",
            run.cache.transition_hits
        )?;
        writeln!(
            out,
            "      \"lock_acquisitions\": {},",
            run.cache.lock_acquisitions
        )?;
        writeln!(out, "      \"benchmarks\": [")?;
        for (j, b) in run.benchmarks.iter().enumerate() {
            write!(
                out,
                "        {{\"adt\": \"{}\", \"library\": \"{}\", \"check_seconds\": {:.6}, \"sat_queries\": {}, \"enum_queries\": {}, \"pruned_subtrees\": {}, \"minterm_memo_hits\": {}, \"inclusion_memo_hits\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"dfa_states\": {}, \"dfa_transitions\": {}, \"alphabet_pruned\": {}, \"transition_memo_hits\": {}, \"product_states\": {}, \"shape_memo_hits\": {}, \"shared_tier_locks\": {}, \"subsumption_checks\": {}, \"subsumed_pairs\": {}, \"simulation_memo_hits\": {}}}",
                json_escape(&b.adt),
                json_escape(&b.library),
                b.check_seconds,
                b.sat_queries,
                b.enum_queries,
                b.pruned_subtrees,
                b.minterm_memo_hits,
                b.inclusion_memo_hits,
                b.cache_hits,
                b.cache_misses,
                b.dfa_states,
                b.dfa_transitions,
                b.alphabet_pruned,
                b.transition_memo_hits,
                b.product_states,
                b.shape_memo_hits,
                b.shared_tier_locks,
                b.subsumption_checks,
                b.subsumed_pairs,
                b.simulation_memo_hits
            )?;
            writeln!(
                out,
                "{}",
                if j + 1 < run.benchmarks.len() {
                    ","
                } else {
                    ""
                }
            )?;
        }
        writeln!(out, "      ]")?;
        writeln!(out, "    }}{}", if i + 1 < runs.len() { "," } else { "" })?;
    }
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    Ok(())
}

/// Formats a method report as the per-method columns shared by Tables 1, 3 and 4.
pub fn method_columns(r: &MethodReport) -> String {
    format!(
        "{:>8} {:>5} {:>6} {:>6} {:>6} {:>9.1} {:>9.2} {:>9.2}  {}",
        r.branches,
        r.apps,
        r.stats.sat_queries,
        r.stats.fa_inclusions,
        r.stats.assumed_preconditions,
        r.stats.avg_fa_size,
        r.stats.sat_time.as_secs_f64(),
        r.stats.fa_time.as_secs_f64(),
        if r.verified { "ok" } else { "REJECTED" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_engine_json_refuses_unknown_schemas() {
        let comparison = EngineComparison {
            runs: Vec::new(),
            enum_reduction: Vec::new(),
            prune_reduction: Vec::new(),
            inclusion_reduction: Vec::new(),
            subsumption_reduction: Vec::new(),
            lock_reduction: Vec::new(),
            skipped: Vec::new(),
        };
        let mut path = std::env::temp_dir();
        path.push(format!(
            "hat-bench-schema-refusal-{}.json",
            std::process::id()
        ));
        let path = path.to_str().expect("utf-8 temp path");
        // The pre-v9 string must be refused before the file is touched: the writer's
        // layout no longer matches it.
        let err = write_engine_json(path, "hat-engine-bench v8", &comparison, None, None, None)
            .expect_err("an outdated schema string must be refused");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(
            !std::path::Path::new(path).exists(),
            "a refused write must not leave a file behind"
        );
        write_engine_json(path, ENGINE_BENCH_SCHEMA, &comparison, None, None, None)
            .expect("the writer's own schema constant is accepted");
        let written = std::fs::read_to_string(path).expect("the accepted write lands");
        std::fs::remove_file(path).ok();
        assert!(written.contains("\"schema\": \"hat-engine-bench v9\""));
        assert!(written.contains("\"subsumption_reduction\""));
    }
}
