//! # hat-bench
//!
//! The benchmark harness that regenerates the evaluation artefacts of the paper:
//! Table 1 (per-configuration summary), Table 2 (invariant catalogue) and Tables 3/4
//! (per-method details), plus Criterion micro-benchmarks for the solver and the
//! symbolic-automaton engine. See `EXPERIMENTS.md` for the paper-vs-measured record.

use hat_core::MethodReport;
use hat_engine::{CacheStatsSnapshot, Engine, EngineConfig, RunSummary};
use hat_suite::Benchmark;
use std::io::Write;

/// The aggregated row of Table 1 for one configuration.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// ADT name.
    pub adt: String,
    /// Library name.
    pub library: String,
    /// `#Method` column.
    pub methods: usize,
    /// `#Ghost` column.
    pub ghosts: usize,
    /// `s_I` column.
    pub invariant_size: usize,
    /// `t_total` column (seconds).
    pub total_seconds: f64,
    /// Whether every non-buggy method verified and every buggy variant was rejected.
    pub all_as_expected: bool,
    /// The most complex method's report (second half of Table 1).
    pub hardest: Option<MethodReport>,
}

/// Runs the checker over one configuration and summarises it as a Table 1 row.
pub fn table1_row(bench: &Benchmark) -> (Table1Row, Vec<MethodReport>) {
    let reports = bench.check_all();
    let total: f64 = reports
        .iter()
        .map(|r| r.stats.total_time.as_secs_f64())
        .sum();
    let all_as_expected = bench
        .methods
        .iter()
        .zip(&reports)
        .all(|(m, r)| r.verified == m.expect_verified);
    let hardest = bench
        .methods
        .iter()
        .zip(&reports)
        .filter(|(m, _)| m.expect_verified)
        .map(|(_, r)| r.clone())
        .max_by_key(|r| r.stats.sat_queries);
    let row = Table1Row {
        adt: bench.adt.to_string(),
        library: bench.library.to_string(),
        methods: bench.method_count(),
        ghosts: bench.ghost_count(),
        invariant_size: bench.invariant_size(),
        total_seconds: total,
        all_as_expected,
        hardest,
    };
    (row, reports)
}

/// One measured engine configuration (e.g. "1 job, cold cache") over the whole suite.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Human-readable label, e.g. `jobs=4 warm`.
    pub label: String,
    /// Worker count of the run.
    pub jobs: usize,
    /// Whether the run reused a cache populated by an earlier run.
    pub warm: bool,
    /// Wall-clock seconds for the whole suite.
    pub wall_seconds: f64,
    /// Run-wide cache counters (per-run deltas).
    pub cache: CacheStatsSnapshot,
    /// Per-benchmark measurements, in suite order.
    pub benchmarks: Vec<EngineBenchRow>,
}

/// Engine measurements for one benchmark configuration within a run.
#[derive(Debug, Clone)]
pub struct EngineBenchRow {
    /// ADT name.
    pub adt: String,
    /// Library name.
    pub library: String,
    /// Summed per-method verification seconds.
    pub check_seconds: f64,
    /// SMT queries issued by this benchmark's methods.
    pub sat_queries: usize,
    /// Cache hits recorded by this benchmark's methods.
    pub cache_hits: usize,
    /// Cache misses recorded by this benchmark's methods.
    pub cache_misses: usize,
}

fn engine_run(label: &str, jobs: usize, warm: bool, summary: &RunSummary) -> EngineRun {
    EngineRun {
        label: label.to_string(),
        jobs,
        warm,
        wall_seconds: summary.wall.as_secs_f64(),
        cache: summary.cache,
        benchmarks: summary
            .benchmarks
            .iter()
            .map(|b| EngineBenchRow {
                adt: b.adt.clone(),
                library: b.library.clone(),
                check_seconds: b.check_time.as_secs_f64(),
                sat_queries: b.sat_queries(),
                cache_hits: b.cache_hits(),
                cache_misses: b.cache_misses(),
            })
            .collect(),
    }
}

/// The result of [`engine_comparison`]: the four measured runs plus the names of any
/// configurations that were excluded (never silently).
#[derive(Debug, Clone)]
pub struct EngineComparison {
    /// The measured runs.
    pub runs: Vec<EngineRun>,
    /// `"ADT/Library"` names of configurations excluded from the comparison.
    pub skipped: Vec<String>,
}

/// Exercises the `hat-engine` subsystem in four configurations — sequential and parallel,
/// each with a cold and a warm (same-engine) cache. With `include_slow` false the
/// configurations marked `slow` in the suite (whose minterm alphabets make a single
/// cold run take tens of minutes) are excluded and recorded in
/// [`EngineComparison::skipped`].
pub fn engine_comparison(benches: &[Benchmark], include_slow: bool) -> EngineComparison {
    let (included, skipped): (Vec<&Benchmark>, Vec<&Benchmark>) =
        benches.iter().partition(|b| include_slow || !b.slow);
    let included: Vec<Benchmark> = included.into_iter().cloned().collect();
    EngineComparison {
        runs: comparison_runs(&included),
        skipped: skipped
            .into_iter()
            .map(|b| format!("{}/{}", b.adt, b.library))
            .collect(),
    }
}

fn comparison_runs(benches: &[Benchmark]) -> Vec<EngineRun> {
    let parallel_jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let mut runs = Vec::new();
    let sequential = Engine::new(EngineConfig {
        jobs: 1,
        cache_path: None,
    })
    .expect("in-memory engine");
    runs.push(engine_run(
        "jobs=1 cold",
        1,
        false,
        &sequential.check_benchmarks(benches),
    ));
    runs.push(engine_run(
        "jobs=1 warm",
        1,
        true,
        &sequential.check_benchmarks(benches),
    ));
    let parallel = Engine::new(EngineConfig {
        jobs: parallel_jobs,
        cache_path: None,
    })
    .expect("in-memory engine");
    runs.push(engine_run(
        &format!("jobs={parallel_jobs} cold"),
        parallel_jobs,
        false,
        &parallel.check_benchmarks(benches),
    ));
    runs.push(engine_run(
        &format!("jobs={parallel_jobs} warm"),
        parallel_jobs,
        true,
        &parallel.check_benchmarks(benches),
    ));
    runs
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Serialises [`engine_comparison`] measurements as JSON (hand-rolled: the build
/// environment has no serde).
pub fn write_engine_json(path: &str, comparison: &EngineComparison) -> std::io::Result<()> {
    let runs = &comparison.runs;
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "{{")?;
    writeln!(out, "  \"schema\": \"hat-engine-bench v1\",")?;
    writeln!(
        out,
        "  \"skipped\": [{}],",
        comparison
            .skipped
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect::<Vec<_>>()
            .join(", ")
    )?;
    writeln!(out, "  \"runs\": [")?;
    for (i, run) in runs.iter().enumerate() {
        writeln!(out, "    {{")?;
        writeln!(out, "      \"label\": \"{}\",", json_escape(&run.label))?;
        writeln!(out, "      \"jobs\": {},", run.jobs)?;
        writeln!(out, "      \"warm_cache\": {},", run.warm)?;
        writeln!(out, "      \"wall_seconds\": {:.6},", run.wall_seconds)?;
        writeln!(out, "      \"cache_hits\": {},", run.cache.hits)?;
        writeln!(out, "      \"cache_misses\": {},", run.cache.misses)?;
        writeln!(
            out,
            "      \"cache_hit_rate\": {:.6},",
            run.cache.hit_rate()
        )?;
        writeln!(out, "      \"benchmarks\": [")?;
        for (j, b) in run.benchmarks.iter().enumerate() {
            write!(
                out,
                "        {{\"adt\": \"{}\", \"library\": \"{}\", \"check_seconds\": {:.6}, \"sat_queries\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}",
                json_escape(&b.adt),
                json_escape(&b.library),
                b.check_seconds,
                b.sat_queries,
                b.cache_hits,
                b.cache_misses
            )?;
            writeln!(
                out,
                "{}",
                if j + 1 < run.benchmarks.len() {
                    ","
                } else {
                    ""
                }
            )?;
        }
        writeln!(out, "      ]")?;
        writeln!(out, "    }}{}", if i + 1 < runs.len() { "," } else { "" })?;
    }
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    Ok(())
}

/// Formats a method report as the per-method columns shared by Tables 1, 3 and 4.
pub fn method_columns(r: &MethodReport) -> String {
    format!(
        "{:>8} {:>5} {:>6} {:>6} {:>6} {:>9.1} {:>9.2} {:>9.2}  {}",
        r.branches,
        r.apps,
        r.stats.sat_queries,
        r.stats.fa_inclusions,
        r.stats.assumed_preconditions,
        r.stats.avg_fa_size,
        r.stats.sat_time.as_secs_f64(),
        r.stats.fa_time.as_secs_f64(),
        if r.verified { "ok" } else { "REJECTED" }
    )
}
