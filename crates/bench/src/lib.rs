//! # hat-bench
//!
//! The benchmark harness that regenerates the evaluation artefacts of the paper:
//! Table 1 (per-configuration summary), Table 2 (invariant catalogue) and Tables 3/4
//! (per-method details), plus Criterion micro-benchmarks for the solver and the
//! symbolic-automaton engine. See `EXPERIMENTS.md` for the paper-vs-measured record.

use hat_core::MethodReport;
use hat_suite::Benchmark;

/// The aggregated row of Table 1 for one configuration.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// ADT name.
    pub adt: String,
    /// Library name.
    pub library: String,
    /// `#Method` column.
    pub methods: usize,
    /// `#Ghost` column.
    pub ghosts: usize,
    /// `s_I` column.
    pub invariant_size: usize,
    /// `t_total` column (seconds).
    pub total_seconds: f64,
    /// Whether every non-buggy method verified and every buggy variant was rejected.
    pub all_as_expected: bool,
    /// The most complex method's report (second half of Table 1).
    pub hardest: Option<MethodReport>,
}

/// Runs the checker over one configuration and summarises it as a Table 1 row.
pub fn table1_row(bench: &Benchmark) -> (Table1Row, Vec<MethodReport>) {
    let reports = bench.check_all();
    let total: f64 = reports.iter().map(|r| r.stats.total_time.as_secs_f64()).sum();
    let all_as_expected = bench
        .methods
        .iter()
        .zip(&reports)
        .all(|(m, r)| r.verified == m.expect_verified);
    let hardest = bench
        .methods
        .iter()
        .zip(&reports)
        .filter(|(m, _)| m.expect_verified)
        .map(|(_, r)| r.clone())
        .max_by_key(|r| r.stats.sat_queries);
    let row = Table1Row {
        adt: bench.adt.to_string(),
        library: bench.library.to_string(),
        methods: bench.method_count(),
        ghosts: bench.ghost_count(),
        invariant_size: bench.invariant_size(),
        total_seconds: total,
        all_as_expected,
        hardest,
    };
    (row, reports)
}

/// Formats a method report as the per-method columns shared by Tables 1, 3 and 4.
pub fn method_columns(r: &MethodReport) -> String {
    format!(
        "{:>8} {:>5} {:>6} {:>6} {:>6} {:>9.1} {:>9.2} {:>9.2}  {}",
        r.branches,
        r.apps,
        r.stats.sat_queries,
        r.stats.fa_inclusions,
        r.stats.assumed_preconditions,
        r.stats.avg_fa_size,
        r.stats.sat_time.as_secs_f64(),
        r.stats.fa_time.as_secs_f64(),
        if r.verified { "ok" } else { "REJECTED" }
    )
}
