//! Regenerates Table 2 of the paper: the representation invariant and library-interaction
//! policy of every benchmark configuration.

fn main() {
    println!(
        "{:<15} {:<11} {:<40} Policy governing interactions",
        "ADT", "Library", "Representation invariant"
    );
    for b in hat_suite::all_benchmarks() {
        println!(
            "{:<15} {:<11} {:<40} {}",
            b.adt, b.library, b.invariant_description, b.policy
        );
    }
}
