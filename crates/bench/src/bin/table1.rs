//! Regenerates Table 1 of the paper: one row per (ADT, library) configuration with the
//! method count, ghost count, invariant size, total verification time and the work
//! counters of the most demanding method.
//!
//! Usage: `cargo run --release -p hat-bench --bin table1 [adt-filter]`

use hat_bench::{method_columns, table1_row};

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default().to_lowercase();
    println!(
        "{:<15} {:<11} {:>7} {:>6} {:>4} {:>9} | hardest: {:>8} {:>5} {:>6} {:>6} {:>6} {:>9} {:>9} {:>9}",
        "ADT", "Library", "#Method", "#Ghost", "s_I", "t_total", "#Branch", "#App", "#SAT", "#FA⊆", "#Asm", "avg sFA", "tSAT", "tFA⊆"
    );
    for bench in hat_suite::all_benchmarks() {
        if !filter.is_empty()
            && !bench.adt.to_lowercase().contains(&filter)
            && !bench.library.to_lowercase().contains(&filter)
        {
            continue;
        }
        let (row, _) = table1_row(&bench);
        let hardest = row
            .hardest
            .as_ref()
            .map(method_columns)
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<15} {:<11} {:>7} {:>6} {:>4} {:>9.2} | {}",
            row.adt,
            row.library,
            row.methods,
            row.ghosts,
            row.invariant_size,
            row.total_seconds,
            hardest
        );
        if !row.all_as_expected {
            println!("    !! some method did not match its expected verification outcome");
        }
    }
}
