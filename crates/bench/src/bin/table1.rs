//! Regenerates Table 1 of the paper: one row per (ADT, library) configuration with the
//! method count, ghost count, invariant size, total verification time and the work
//! counters of the most demanding method. Afterwards it exercises the `hat-engine`
//! subsystem — 1 vs N jobs, cold vs warm cache — replays the suite against an
//! in-process `marpled` daemon (cold client, then a warm second client), and writes
//! the measurements to `BENCH_engine.json`.
//!
//! Usage: `cargo run --release -p hat-bench --bin table1 [adt-filter|--full]`
//!
//! By default the engine comparison excludes the configurations marked `slow` in the
//! suite (a single cold FileSystem/KVStore run takes tens of minutes); pass `--full` to
//! include them. The excluded names are recorded in the JSON, never dropped silently.
//! With an ADT filter only the table is printed and the engine comparison is skipped.

use hat_bench::{
    daemon_replay, engine_comparison, lsm_measurement, method_columns, mixed_traffic_replay,
    table1_row, write_engine_json, ENGINE_BENCH_SCHEMA,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut include_slow = false;
    let mut filter = String::new();
    for arg in &args {
        match arg.as_str() {
            "--full" => include_slow = true,
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`\nusage: table1 [adt-filter] [--full]");
                std::process::exit(2);
            }
            other if filter.is_empty() => filter = other.to_lowercase(),
            other => {
                eprintln!("unexpected argument `{other}`\nusage: table1 [adt-filter] [--full]");
                std::process::exit(2);
            }
        }
    }
    println!(
        "{:<15} {:<11} {:>7} {:>6} {:>4} {:>9} | hardest: {:>8} {:>5} {:>6} {:>6} {:>6} {:>9} {:>9} {:>9}",
        "ADT", "Library", "#Method", "#Ghost", "s_I", "t_total", "#Branch", "#App", "#SAT", "#FA⊆", "#Asm", "avg sFA", "tSAT", "tFA⊆"
    );
    for bench in hat_suite::all_benchmarks() {
        if !filter.is_empty()
            && !bench.adt.to_lowercase().contains(&filter)
            && !bench.library.to_lowercase().contains(&filter)
        {
            continue;
        }
        if bench.slow && !include_slow && filter.is_empty() {
            println!(
                "{:<15} {:<11} (slow configuration; run with --full or an ADT filter)",
                bench.adt, bench.library
            );
            continue;
        }
        let (row, _) = table1_row(&bench);
        let hardest = row
            .hardest
            .as_ref()
            .map(method_columns)
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<15} {:<11} {:>7} {:>6} {:>4} {:>9.2} | {}",
            row.adt,
            row.library,
            row.methods,
            row.ghosts,
            row.invariant_size,
            row.total_seconds,
            hardest
        );
        if !row.all_as_expected {
            println!("    !! some method did not match its expected verification outcome");
        }
    }

    if filter.is_empty() {
        eprintln!("measuring hat-engine (1 vs N jobs, cold vs warm cache)...");
        let comparison = engine_comparison(&hat_suite::all_benchmarks(), include_slow);
        if !comparison.skipped.is_empty() {
            eprintln!(
                "engine comparison excludes slow configurations: {} (pass --full to include)",
                comparison.skipped.join(", ")
            );
        }
        if let Some(largest) = comparison
            .enum_reduction
            .iter()
            .max_by_key(|r| r.naive_queries)
        {
            eprintln!(
                "largest configuration {}/{}: cold enumeration queries {} (naive) -> {} (incremental), {:.1}x fewer",
                largest.adt,
                largest.library,
                largest.naive_enumeration,
                largest.incremental_enumeration,
                largest.enumeration_reduction()
            );
        }
        if let Some(largest) = comparison
            .prune_reduction
            .iter()
            .max_by_key(|r| r.unpruned_transitions)
        {
            eprintln!(
                "largest DFA workload {}/{}: transitions {} (unpruned) -> {} (pruned), {:.1}x fewer ({} alphabet symbols dropped; states {} = {})",
                largest.adt,
                largest.library,
                largest.unpruned_transitions,
                largest.pruned_transitions,
                largest.reduction(),
                largest.alphabet_pruned,
                largest.unpruned_states,
                largest.pruned_states
            );
        }
        if let Some(largest) = comparison
            .inclusion_reduction
            .iter()
            .max_by_key(|r| r.materialise_transitions)
        {
            eprintln!(
                "largest inclusion workload {}/{}: transitions {} (materialise) -> {} (on-the-fly, simulation subsumption), {:.1}x fewer ({} product pairs vs {} DFA states)",
                largest.adt,
                largest.library,
                largest.materialise_transitions,
                largest.onthefly_simulation_transitions,
                largest.reduction(),
                largest.product_states,
                largest.materialise_states
            );
        }
        if let Some(largest) = comparison
            .subsumption_reduction
            .iter()
            .max_by_key(|r| r.off_cold_pairs)
        {
            eprintln!(
                "largest product walk {}/{}: cold pairs {} (off) -> {} (syntactic) -> {} (simulation), {:.1}x fewer; {} pairs subsumed cold, {} simulation-memo hits warm",
                largest.adt,
                largest.library,
                largest.off_cold_pairs,
                largest.syntactic_cold_pairs,
                largest.simulation_cold_pairs,
                largest.cold_pair_reduction(),
                largest.subsumed_pairs,
                largest.simulation_memo_hits
            );
        }
        let shared_only: usize = comparison
            .lock_reduction
            .iter()
            .map(|r| r.shared_only_locks)
            .sum();
        let read_through: usize = comparison
            .lock_reduction
            .iter()
            .map(|r| r.read_through_locks)
            .sum();
        if read_through > 0 {
            eprintln!(
                "shared-tier lock traffic at jobs=6: {} (shared-only) -> {} (read-through local tiers), {:.1}x fewer",
                shared_only,
                read_through,
                shared_only as f64 / read_through as f64
            );
        }
        eprintln!("replaying the suite against an in-process marpled (cold, then warm client)...");
        let replay = daemon_replay(&hat_suite::all_benchmarks(), 2);
        eprintln!(
            "daemon replay: cold {} requests at {:.2} req/s (p50 {:.3}s, p95 {:.3}s); warm {:.2} req/s (p50 {:.3}s, p95 {:.3}s), {} misses, {} disk loads",
            replay.cold.requests,
            replay.cold.requests_per_second(),
            replay.cold.p50_latency_seconds,
            replay.cold.p95_latency_seconds,
            replay.warm.requests_per_second(),
            replay.warm.p50_latency_seconds,
            replay.warm.p95_latency_seconds,
            replay.warm.cache_misses,
            replay.warm.disk_loaded
        );
        eprintln!(
            "measuring mixed-traffic fairness (probe checks vs background check-all clients)..."
        );
        let mixed = mixed_traffic_replay(&hat_suite::all_benchmarks(), 2, 3, 20);
        eprintln!(
            "mixed traffic: probe p95 {:.3}s uncontended -> {:.3}s under {} check-all clients ({:.1}x, {} batches); {} dedup hits, queue wait p95 {:.1}ms",
            mixed.uncontended_p95_seconds,
            mixed.contended_p95_seconds,
            mixed.background_clients,
            mixed.contention_ratio_p95(),
            mixed.background_batches,
            mixed.dedup_hits,
            mixed.queue_wait_p95_ms
        );
        eprintln!("measuring the LSM cache backend (rotation, compaction, warm load)...");
        let lsm = lsm_measurement(&hat_suite::all_benchmarks(), 2);
        eprintln!(
            "lsm: {} flushes -> {} level-0 segments, {} compactions merged {} segments, write amplification {:.2}x; warm load {:.1}ms at {} records, {:.1}ms at {} records",
            lsm.flushes,
            lsm.segments_written,
            lsm.compactions,
            lsm.segments_merged,
            lsm.write_amplification,
            lsm.warm_load_ms_1x,
            lsm.records_1x,
            lsm.warm_load_ms_10x,
            lsm.records_10x
        );
        let path = "BENCH_engine.json";
        match write_engine_json(
            path,
            ENGINE_BENCH_SCHEMA,
            &comparison,
            Some(&replay),
            Some(&mixed),
            Some(&lsm),
        ) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}
