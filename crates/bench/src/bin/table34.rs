//! Regenerates Tables 3 and 4 of the paper: per-method verification details for every
//! method of every configuration.
//!
//! Usage: `cargo run --release -p hat-bench --bin table34 [adt-filter]`

use hat_bench::{method_columns, table1_row};

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default().to_lowercase();
    println!(
        "{:<15} {:<11} {:<20} {:>8} {:>5} {:>6} {:>6} {:>6} {:>9} {:>9} {:>9}",
        "ADT",
        "Library",
        "Method",
        "#Branch",
        "#App",
        "#SAT",
        "#Inc",
        "#Asm",
        "avg s_A",
        "t_SAT",
        "t_Inc"
    );
    for bench in hat_suite::all_benchmarks() {
        if !filter.is_empty()
            && !bench.adt.to_lowercase().contains(&filter)
            && !bench.library.to_lowercase().contains(&filter)
        {
            continue;
        }
        let (_, reports) = table1_row(&bench);
        for (m, r) in bench.methods.iter().zip(&reports) {
            println!(
                "{:<15} {:<11} {:<20} {}",
                bench.adt,
                bench.library,
                m.sig.name,
                method_columns(r)
            );
        }
    }
}
