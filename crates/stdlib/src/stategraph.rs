//! A stateful labelled-graph library used by the DFA, ConnectedGraph and Queue benchmarks.
//!
//! Operators: `connect : Node.t → Char.t → Node.t → unit`,
//! `disconnect : Node.t → Char.t → Node.t → unit`,
//! `has_edge : Node.t → Char.t → Node.t → bool`,
//! `has_succ : Node.t → bool`,
//! `add_vertex : Node.t → unit`, `is_vertex : Node.t → bool`.

use crate::preds::graph_axioms;
use crate::sorts;
use hat_core::delta::events::{appends, ev};
use hat_core::{Delta, EffOpSig, HoareCase, RType, NU};
use hat_lang::interp::{InterpError, LibraryModel};
use hat_logic::{Constant, Formula, Sort, Term};
use hat_sfa::Sfa;

/// `P_edge(s, c, t)`: the edge `s --c--> t` has been connected and not disconnected since.
pub fn p_edge(s: Term, c: Term, t: Term) -> Sfa {
    let connect = ev(
        "connect",
        &["src", "ch", "dst"],
        Formula::and(vec![
            Formula::eq(Term::var("src"), s.clone()),
            Formula::eq(Term::var("ch"), c.clone()),
            Formula::eq(Term::var("dst"), t.clone()),
        ]),
    );
    let disconnect = ev(
        "disconnect",
        &["src", "ch", "dst"],
        Formula::and(vec![
            Formula::eq(Term::var("src"), s),
            Formula::eq(Term::var("ch"), c),
            Formula::eq(Term::var("dst"), t),
        ]),
    );
    Sfa::eventually(Sfa::and(vec![
        connect,
        Sfa::next(Sfa::globally(Sfa::not(disconnect))),
    ]))
}

/// `P_out(s)`: some edge has ever been connected out of `s`. Disconnects do not erase
/// it: out-degree policies such as the Queue FIFO invariant count `connect` events over
/// the whole history (`at_most_once`), not live edges, so the observer that guards them
/// must look at the same history (mirroring `hasnext` of the LinkedList library).
pub fn p_out(s: Term) -> Sfa {
    Sfa::eventually(ev(
        "connect",
        &["src", "ch", "dst"],
        Formula::eq(Term::var("src"), s),
    ))
}

/// `P_vertex(n)`: the vertex `n` has been added.
pub fn p_vertex(n: Term) -> Sfa {
    Sfa::eventually(ev("add_vertex", &["n"], Formula::eq(Term::var("n"), n)))
}

/// The HAT signatures of the graph library.
pub fn graph_delta() -> Delta {
    let mut d = Delta::new();
    let node = RType::base(sorts::node());
    let ch = RType::base(sorts::char_t());

    let edge_params = vec![
        ("s".into(), node.clone()),
        ("c".into(), ch.clone()),
        ("t".into(), node.clone()),
    ];
    let edge_event = |op: &str| {
        ev(
            op,
            &["src", "ch", "dst"],
            Formula::and(vec![
                Formula::eq(Term::var("src"), Term::var("s")),
                Formula::eq(Term::var("ch"), Term::var("c")),
                Formula::eq(Term::var("dst"), Term::var("t")),
            ]),
        )
    };
    for op in ["connect", "disconnect"] {
        d.declare_eff(
            op,
            EffOpSig {
                ghosts: vec![],
                params: edge_params.clone(),
                cases: vec![HoareCase {
                    pre: Sfa::universe(),
                    ty: RType::base(Sort::Unit),
                    post: appends(&Sfa::universe(), edge_event(op)),
                }],
            },
        );
    }

    let has_event = |r: bool| {
        ev(
            "has_edge",
            &["src", "ch", "dst"],
            Formula::and(vec![
                Formula::eq(Term::var("src"), Term::var("s")),
                Formula::eq(Term::var("ch"), Term::var("c")),
                Formula::eq(Term::var("dst"), Term::var("t")),
                Formula::eq(Term::var(NU), Term::bool(r)),
            ]),
        )
    };
    let present = p_edge(Term::var("s"), Term::var("c"), Term::var("t"));
    let absent = Sfa::not(present.clone());
    d.declare_eff(
        "has_edge",
        EffOpSig {
            ghosts: vec![],
            params: edge_params,
            cases: vec![
                HoareCase {
                    pre: present.clone(),
                    ty: RType::bool_singleton(true),
                    post: appends(&present, has_event(true)),
                },
                HoareCase {
                    pre: absent.clone(),
                    ty: RType::bool_singleton(false),
                    post: appends(&absent, has_event(false)),
                },
            ],
        },
    );

    let has_succ_event = |r: bool| {
        ev(
            "has_succ",
            &["src"],
            Formula::and(vec![
                Formula::eq(Term::var("src"), Term::var("s")),
                Formula::eq(Term::var(NU), Term::bool(r)),
            ]),
        )
    };
    let out_linked = p_out(Term::var("s"));
    let out_unlinked = Sfa::not(out_linked.clone());
    d.declare_eff(
        "has_succ",
        EffOpSig {
            ghosts: vec![],
            params: vec![("s".into(), node.clone())],
            cases: vec![
                HoareCase {
                    pre: out_linked.clone(),
                    ty: RType::bool_singleton(true),
                    post: appends(&out_linked, has_succ_event(true)),
                },
                HoareCase {
                    pre: out_unlinked.clone(),
                    ty: RType::bool_singleton(false),
                    post: appends(&out_unlinked, has_succ_event(false)),
                },
            ],
        },
    );

    let vertex_event = ev(
        "add_vertex",
        &["n"],
        Formula::eq(Term::var("n"), Term::var("s")),
    );
    d.declare_eff(
        "add_vertex",
        EffOpSig {
            ghosts: vec![],
            params: vec![("s".into(), node.clone())],
            cases: vec![HoareCase {
                pre: Sfa::universe(),
                ty: RType::base(Sort::Unit),
                post: appends(&Sfa::universe(), vertex_event),
            }],
        },
    );

    let is_vertex_event = |r: bool| {
        ev(
            "is_vertex",
            &["n"],
            Formula::and(vec![
                Formula::eq(Term::var("n"), Term::var("s")),
                Formula::eq(Term::var(NU), Term::bool(r)),
            ]),
        )
    };
    let v_present = p_vertex(Term::var("s"));
    let v_absent = Sfa::not(v_present.clone());
    d.declare_eff(
        "is_vertex",
        EffOpSig {
            ghosts: vec![],
            params: vec![("s".into(), node)],
            cases: vec![
                HoareCase {
                    pre: v_present.clone(),
                    ty: RType::bool_singleton(true),
                    post: appends(&v_present, is_vertex_event(true)),
                },
                HoareCase {
                    pre: v_absent.clone(),
                    ty: RType::bool_singleton(false),
                    post: appends(&v_absent, is_vertex_event(false)),
                },
            ],
        },
    );

    d.axioms = graph_axioms();
    d
}

/// Executable trace semantics of the graph library.
pub fn graph_model() -> LibraryModel {
    let mut m = LibraryModel::new();
    for op in ["connect", "disconnect"] {
        m.define(op, |_trace, args| match args {
            [_, _, _] => Ok(Constant::Unit),
            _ => Err(InterpError::TypeError(
                "edge operators expect 3 arguments".into(),
            )),
        });
    }
    m.define("has_edge", |trace, args| match args {
        [s, c, t] => {
            let mut present = false;
            for e in trace.iter() {
                if e.args.len() == 3 && &e.args[0] == s && &e.args[1] == c && &e.args[2] == t {
                    match e.op.as_str() {
                        "connect" => present = true,
                        "disconnect" => present = false,
                        _ => {}
                    }
                }
            }
            Ok(Constant::Bool(present))
        }
        _ => Err(InterpError::TypeError(
            "has_edge expects 3 arguments".into(),
        )),
    });
    m.define("has_succ", |trace, args| match args {
        [s] => {
            // Ever-connected semantics, matching `P_out` in the delta (and `hasnext` of
            // the LinkedList model): disconnects do not reset it.
            Ok(Constant::Bool(
                trace.any(|e| e.op == "connect" && e.args.first() == Some(s)),
            ))
        }
        _ => Err(InterpError::TypeError("has_succ expects 1 argument".into())),
    });
    m.define("add_vertex", |_trace, args| match args {
        [_] => Ok(Constant::Unit),
        _ => Err(InterpError::TypeError(
            "add_vertex expects 1 argument".into(),
        )),
    });
    m.define("is_vertex", |trace, args| match args {
        [n] => {
            Ok(Constant::Bool(trace.any(|e| {
                e.op == "add_vertex" && e.args.first() == Some(n)
            })))
        }
        _ => Err(InterpError::TypeError(
            "is_vertex expects 1 argument".into(),
        )),
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_sfa::{Event, Trace};

    #[test]
    fn has_edge_respects_disconnect() {
        let m = graph_model();
        let a = || Constant::atom("n1");
        let b = || Constant::atom("n2");
        let c = || Constant::atom("x");
        let mut t = Trace::new();
        t.push(Event::new("connect", vec![a(), c(), b()], Constant::Unit));
        assert_eq!(
            m.apply(&t, "has_edge", &[a(), c(), b()]).unwrap(),
            Constant::Bool(true)
        );
        t.push(Event::new(
            "disconnect",
            vec![a(), c(), b()],
            Constant::Unit,
        ));
        assert_eq!(
            m.apply(&t, "has_edge", &[a(), c(), b()]).unwrap(),
            Constant::Bool(false)
        );
    }

    #[test]
    fn delta_shape() {
        let d = graph_delta();
        assert_eq!(d.eff_ops.len(), 6);
        assert_eq!(d.eff_ops["has_edge"].cases.len(), 2);
        assert_eq!(d.eff_ops["has_succ"].cases.len(), 2);
    }

    #[test]
    fn has_succ_ignores_disconnect() {
        let m = graph_model();
        let a = || Constant::atom("n1");
        let b = || Constant::atom("n2");
        let c = || Constant::atom("x");
        let mut t = Trace::new();
        assert_eq!(
            m.apply(&t, "has_succ", &[a()]).unwrap(),
            Constant::Bool(false)
        );
        t.push(Event::new("connect", vec![a(), c(), b()], Constant::Unit));
        t.push(Event::new(
            "disconnect",
            vec![a(), c(), b()],
            Constant::Unit,
        ));
        // The out-degree policy counts connect events over the whole history.
        assert_eq!(
            m.apply(&t, "has_succ", &[a()]).unwrap(),
            Constant::Bool(true)
        );
        assert_eq!(
            m.apply(&t, "has_succ", &[b()]).unwrap(),
            Constant::Bool(false)
        );
    }
}
