//! The persistent key-value store library (paper Fig. 1 / Examples 3.1 and 4.2).
//!
//! Operators: `put : Path.t → Bytes.t → unit`, `exists : Path.t → bool`,
//! `get : Path.t → Bytes.t`.

use crate::preds::filesystem_axioms;
use crate::sorts;
use hat_core::delta::events::{appends, ev};
use hat_core::{Delta, EffOpSig, HoareCase, PureOpSig, RType, NU};
use hat_lang::interp::{InterpError, LibraryModel};
use hat_logic::{Constant, Formula, Sort, Term};
use hat_sfa::Sfa;

/// `P_exists(k)`: some `put` of key `k` appears in the trace (Example 4.1).
pub fn p_exists(k: Term) -> Sfa {
    Sfa::eventually(ev("put", &["key", "val"], Formula::eq(Term::var("key"), k)))
}

/// `P_stored(k, a)`: the most recent `put` of key `k` stored the value `a` (Example 4.1).
pub fn p_stored(k: Term, a: Term) -> Sfa {
    Sfa::eventually(Sfa::and(vec![
        ev(
            "put",
            &["key", "val"],
            Formula::and(vec![
                Formula::eq(Term::var("key"), k.clone()),
                Formula::eq(Term::var("val"), a),
            ]),
        ),
        Sfa::next(Sfa::globally(Sfa::not(ev(
            "put",
            &["key", "val"],
            Formula::eq(Term::var("key"), k),
        )))),
    ]))
}

/// The HAT signatures of the key-value store (the `Δ` of Example 4.2, with the weaker
/// ghost-free `get` signature discussed in `DESIGN.md`).
pub fn kvstore_delta() -> Delta {
    let mut d = Delta::new();
    let path = RType::base(sorts::path());
    let bytes = RType::base(sorts::bytes());

    // put : k:Path.t → a:Bytes.t → [□⟨⊤⟩] unit [□⟨⊤⟩; ⟨put k a⟩ ∧ LAST]
    let put_event = ev(
        "put",
        &["key", "val"],
        Formula::and(vec![
            Formula::eq(Term::var("key"), Term::var("k")),
            Formula::eq(Term::var("val"), Term::var("a")),
        ]),
    );
    d.declare_eff(
        "put",
        EffOpSig {
            ghosts: vec![],
            params: vec![("k".into(), path.clone()), ("a".into(), bytes.clone())],
            cases: vec![HoareCase {
                pre: Sfa::universe(),
                ty: RType::base(Sort::Unit),
                post: appends(&Sfa::universe(), put_event),
            }],
        },
    );

    // exists : k:Path.t → ([P_exists(k)] {ν = true} [...]) ⊓ ([¬P_exists(k)] {ν = false} [...])
    let exists_event = |r: bool| {
        ev(
            "exists",
            &["key"],
            Formula::and(vec![
                Formula::eq(Term::var("key"), Term::var("k")),
                Formula::eq(Term::var(NU), Term::bool(r)),
            ]),
        )
    };
    let present = p_exists(Term::var("k"));
    let absent = Sfa::not(present.clone());
    d.declare_eff(
        "exists",
        EffOpSig {
            ghosts: vec![],
            params: vec![("k".into(), path.clone())],
            cases: vec![
                HoareCase {
                    pre: present.clone(),
                    ty: RType::bool_singleton(true),
                    post: appends(&present, exists_event(true)),
                },
                HoareCase {
                    pre: absent.clone(),
                    ty: RType::bool_singleton(false),
                    post: appends(&absent, exists_event(false)),
                },
            ],
        },
    );

    // get : k:Path.t → [P_exists(k)] Bytes.t [P_exists(k); ⟨get k⟩ ∧ LAST]
    let get_event = ev(
        "get",
        &["key"],
        Formula::eq(Term::var("key"), Term::var("k")),
    );
    d.declare_eff(
        "get",
        EffOpSig {
            ghosts: vec![],
            params: vec![("k".into(), path.clone())],
            cases: vec![HoareCase {
                pre: p_exists(Term::var("k")),
                ty: RType::base(sorts::bytes()),
                post: appends(&p_exists(Term::var("k")), get_event),
            }],
        },
    );

    // Pure helpers of the FileSystem client.
    d.declare_pure(
        "parent",
        PureOpSig {
            params: vec![("p".into(), path.clone())],
            ret: RType::singleton(sorts::path(), Term::app("parent", vec![Term::var("p")])),
        },
    );
    for pred in ["isDir", "isFile", "isDel"] {
        d.declare_pure(
            pred,
            PureOpSig {
                params: vec![("b".into(), bytes.clone())],
                ret: RType::refined(
                    Sort::Bool,
                    Formula::iff(
                        Formula::bool_term(Term::var(NU)),
                        Formula::pred(pred, vec![Term::var("b")]),
                    ),
                ),
            },
        );
    }
    d.declare_pure(
        "isRoot",
        PureOpSig {
            params: vec![("p".into(), path.clone())],
            ret: RType::refined(
                Sort::Bool,
                Formula::iff(
                    Formula::bool_term(Term::var(NU)),
                    Formula::pred("isRoot", vec![Term::var("p")]),
                ),
            ),
        },
    );
    d.declare_pure(
        "addChild",
        PureOpSig {
            params: vec![("b".into(), bytes.clone()), ("p".into(), path.clone())],
            ret: RType::singleton(
                sorts::bytes(),
                Term::app("addChild", vec![Term::var("b"), Term::var("p")]),
            ),
        },
    );
    d.declare_pure(
        "delChild",
        PureOpSig {
            params: vec![("b".into(), bytes.clone()), ("p".into(), path.clone())],
            ret: RType::singleton(
                sorts::bytes(),
                Term::app("delChild", vec![Term::var("b"), Term::var("p")]),
            ),
        },
    );
    d.declare_pure(
        "setDeleted",
        PureOpSig {
            params: vec![("b".into(), bytes.clone())],
            ret: RType::singleton(
                sorts::bytes(),
                Term::app("setDeleted", vec![Term::var("b")]),
            ),
        },
    );

    d.axioms = filesystem_axioms();
    d
}

/// The executable trace semantics of the key-value store (paper Fig. 10).
pub fn kvstore_model() -> LibraryModel {
    let mut m = LibraryModel::new();
    m.define("put", |_trace, args| match args {
        [_, _] => Ok(Constant::Unit),
        _ => Err(InterpError::TypeError("put expects 2 arguments".into())),
    });
    m.define("exists", |trace, args| match args {
        [k] => Ok(Constant::Bool(
            trace.any(|e| e.op == "put" && e.args.first() == Some(k)),
        )),
        _ => Err(InterpError::TypeError("exists expects 1 argument".into())),
    });
    m.define("get", |trace, args| match args {
        [k] => trace
            .last_matching(|e| e.op == "put" && e.args.first() == Some(k))
            .map(|e| e.args[1].clone())
            .ok_or_else(|| InterpError::Stuck(format!("get {k}: key never put"))),
        _ => Err(InterpError::TypeError("get expects 1 argument".into())),
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::Interpretation;
    use hat_sfa::{accepts, Event, Trace, TraceModel};

    #[test]
    fn delta_declares_the_full_api() {
        let d = kvstore_delta();
        for op in ["put", "exists", "get"] {
            assert!(d.eff_ops.contains_key(op));
        }
        for op in [
            "parent",
            "isDir",
            "isFile",
            "isDel",
            "isRoot",
            "addChild",
            "setDeleted",
        ] {
            assert!(d.pure_ops.contains_key(op), "missing pure op {op}");
        }
        assert!(!d.axioms.axioms.is_empty());
    }

    #[test]
    fn p_stored_matches_the_operational_get() {
        // P_stored(k, a) accepts exactly traces where the last put of k wrote a.
        let model = TraceModel::new(Interpretation::filesystem())
            .bind("k", Constant::atom("/a"))
            .bind("a", Constant::atom("dir:new"));
        let put = |k: &str, v: &str| {
            Event::new(
                "put",
                vec![Constant::atom(k), Constant::atom(v)],
                Constant::Unit,
            )
        };
        let sfa = p_stored(Term::var("k"), Term::var("a"));
        let good = Trace::from_events(vec![
            put("/a", "dir:old"),
            put("/a", "dir:new"),
            put("/b", "x"),
        ]);
        assert!(accepts(&model, &good, &sfa).unwrap());
        let stale = Trace::from_events(vec![put("/a", "dir:new"), put("/a", "dir:old")]);
        assert!(!accepts(&model, &stale, &sfa).unwrap());
        let missing = Trace::from_events(vec![put("/b", "dir:new")]);
        assert!(!accepts(&model, &missing, &sfa).unwrap());
    }

    #[test]
    fn exists_signature_splits_on_history() {
        let d = kvstore_delta();
        let exists = &d.eff_ops["exists"];
        assert_eq!(exists.cases.len(), 2);
    }
}
