//! A low-level linked-list library: node allocation and next-pointer manipulation.
//!
//! Operators: `newnode : int → Node.t` (allocate a cell holding a value),
//! `setnext : Node.t → Node.t → unit` (link two cells),
//! `hasnext : Node.t → bool`.
//! Clients such as the Stack and Queue ADTs maintain invariants like "the list is not
//! circular" purely in terms of the `newnode`/`setnext` event history.

use crate::preds::integer_axioms;
use crate::sorts;
use hat_core::delta::events::{appends, ev};
use hat_core::{Delta, EffOpSig, HoareCase, RType, NU};
use hat_lang::interp::{InterpError, LibraryModel};
use hat_logic::{Constant, Formula, Sort, Term};
use hat_sfa::Sfa;

/// `P_linked(n)`: node `n` has been given a successor by some `setnext`.
pub fn p_linked(n: Term) -> Sfa {
    Sfa::eventually(ev(
        "setnext",
        &["src", "dst"],
        Formula::eq(Term::var("src"), n),
    ))
}

/// `P_alloc(n)`: node `n` was returned by some `newnode` call.
pub fn p_alloc(n: Term) -> Sfa {
    Sfa::eventually(ev("newnode", &["x"], Formula::eq(Term::var(NU), n)))
}

/// The HAT signatures of the linked-list library.
pub fn linkedlist_delta() -> Delta {
    let mut d = Delta::new();
    let node = RType::base(sorts::node());
    let int = RType::base(Sort::Int);

    // newnode : x:int → ∀m. [□⟨⊤⟩] {ν : Node.t | ν = m}
    //                        [(□⟨⊤⟩ ∧ □¬⟨setnext src dst | dst = m⟩); ⟨newnode x = ν | ν = m⟩ ∧ LAST]
    // Freshness of the returned node is part of the library guarantee: the allocator
    // never hands out an address that is already linked into a list, so the history up to
    // this call contains no `setnext` *targeting* the returned cell. The value qualifier
    // cannot mention traces, so the guarantee is carried by a ghost `m` pinned to the
    // result (`ν = m`) whose absence from past setnext targets is asserted by the
    // postcondition's history automaton. Without this, target-uniqueness invariants such
    // as Queue/LinkedList's FIFO policy (`at_most_once(setnext | dst = n)`) are
    // unprovable: `hasnext` only observes the source side, so nothing rules out the
    // fresh cell having been enqueued behind some predecessor before it was allocated.
    let new_event = ev(
        "newnode",
        &["x"],
        Formula::and(vec![
            Formula::eq(Term::var("x"), Term::var("e")),
            Formula::eq(Term::var(NU), Term::var("m")),
        ]),
    );
    let never_targeted = Sfa::and(vec![
        Sfa::universe(),
        Sfa::globally(Sfa::not(ev(
            "setnext",
            &["src", "dst"],
            Formula::eq(Term::var("dst"), Term::var("m")),
        ))),
    ]);
    d.declare_eff(
        "newnode",
        EffOpSig {
            ghosts: vec![("m".into(), sorts::node())],
            params: vec![("e".into(), int)],
            cases: vec![HoareCase {
                pre: Sfa::universe(),
                ty: RType::singleton(sorts::node(), Term::var("m")),
                post: appends(&never_targeted, new_event),
            }],
        },
    );

    // setnext : src:Node.t → dst:Node.t → [□⟨⊤⟩] unit [□⟨⊤⟩; ⟨setnext src dst⟩ ∧ LAST]
    let set_event = ev(
        "setnext",
        &["src", "dst"],
        Formula::and(vec![
            Formula::eq(Term::var("src"), Term::var("m")),
            Formula::eq(Term::var("dst"), Term::var("n")),
        ]),
    );
    d.declare_eff(
        "setnext",
        EffOpSig {
            ghosts: vec![],
            params: vec![("m".into(), node.clone()), ("n".into(), node.clone())],
            cases: vec![HoareCase {
                pre: Sfa::universe(),
                ty: RType::base(Sort::Unit),
                post: appends(&Sfa::universe(), set_event),
            }],
        },
    );

    // hasnext : n:Node.t → intersection on whether the node was ever linked.
    let has_event = |r: bool| {
        ev(
            "hasnext",
            &["src"],
            Formula::and(vec![
                Formula::eq(Term::var("src"), Term::var("m")),
                Formula::eq(Term::var(NU), Term::bool(r)),
            ]),
        )
    };
    let linked = p_linked(Term::var("m"));
    let unlinked = Sfa::not(linked.clone());
    d.declare_eff(
        "hasnext",
        EffOpSig {
            ghosts: vec![],
            params: vec![("m".into(), node)],
            cases: vec![
                HoareCase {
                    pre: linked.clone(),
                    ty: RType::bool_singleton(true),
                    post: appends(&linked, has_event(true)),
                },
                HoareCase {
                    pre: unlinked.clone(),
                    ty: RType::bool_singleton(false),
                    post: appends(&unlinked, has_event(false)),
                },
            ],
        },
    );

    d.axioms = integer_axioms();
    d
}

/// Executable trace semantics of the linked-list library. Node identities are modelled as
/// atoms `node:<k>` where `k` counts the allocations so far (freshness by construction).
pub fn linkedlist_model() -> LibraryModel {
    let mut m = LibraryModel::new();
    m.define("newnode", |trace, args| match args {
        [_] => {
            let count = trace.iter().filter(|e| e.op == "newnode").count();
            Ok(Constant::atom(format!("node:{count}")))
        }
        _ => Err(InterpError::TypeError("newnode expects 1 argument".into())),
    });
    m.define("setnext", |_trace, args| match args {
        [_, _] => Ok(Constant::Unit),
        _ => Err(InterpError::TypeError("setnext expects 2 arguments".into())),
    });
    m.define("hasnext", |trace, args| match args {
        [n] => Ok(Constant::Bool(
            trace.any(|e| e.op == "setnext" && e.args.first() == Some(n)),
        )),
        _ => Err(InterpError::TypeError("hasnext expects 1 argument".into())),
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_sfa::Trace;

    #[test]
    fn newnode_allocates_fresh_identities() {
        let m = linkedlist_model();
        let mut t = Trace::new();
        let a = m.apply(&t, "newnode", &[Constant::Int(1)]).unwrap();
        t.push(hat_sfa::Event::new(
            "newnode",
            vec![Constant::Int(1)],
            a.clone(),
        ));
        let b = m.apply(&t, "newnode", &[Constant::Int(2)]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn signatures_cover_the_api() {
        let d = linkedlist_delta();
        for op in ["newnode", "setnext", "hasnext"] {
            assert!(d.eff_ops.contains_key(op));
        }
        assert_eq!(d.eff_ops["hasnext"].cases.len(), 2);
    }
}
