//! A stateful binary-tree library used by the Set/Heap/LazySet/FileSystem benchmarks.
//!
//! Operators: `addroot : int → unit`, `addchild : int → int → unit` (attach `child` below
//! `parent`), `contains : int → bool`. Clients express properties like "the tree is a
//! binary search tree" or "parents are directories" over the `addchild` event history.

use crate::preds::integer_axioms;
use hat_core::delta::events::{appends, ev};
use hat_core::{Delta, EffOpSig, HoareCase, RType, NU};
use hat_lang::interp::{InterpError, LibraryModel};
use hat_logic::{Constant, Formula, Sort, Term};
use hat_sfa::Sfa;

/// `P_in_tree(x)`: the value `x` has been added to the tree (as root or as a child).
pub fn p_in_tree(x: Term) -> Sfa {
    Sfa::or(vec![
        Sfa::eventually(ev(
            "addroot",
            &["r"],
            Formula::eq(Term::var("r"), x.clone()),
        )),
        Sfa::eventually(ev(
            "addchild",
            &["parent", "child"],
            Formula::eq(Term::var("child"), x),
        )),
    ])
}

/// The HAT signatures of the tree library.
pub fn tree_delta() -> Delta {
    let mut d = Delta::new();
    let int = RType::base(Sort::Int);

    let root_event = ev(
        "addroot",
        &["r"],
        Formula::eq(Term::var("r"), Term::var("x")),
    );
    d.declare_eff(
        "addroot",
        EffOpSig {
            ghosts: vec![],
            params: vec![("x".into(), int.clone())],
            cases: vec![HoareCase {
                pre: Sfa::universe(),
                ty: RType::base(Sort::Unit),
                post: appends(&Sfa::universe(), root_event),
            }],
        },
    );

    let child_event = ev(
        "addchild",
        &["parent", "child"],
        Formula::and(vec![
            Formula::eq(Term::var("parent"), Term::var("p")),
            Formula::eq(Term::var("child"), Term::var("c")),
        ]),
    );
    d.declare_eff(
        "addchild",
        EffOpSig {
            ghosts: vec![],
            params: vec![("p".into(), int.clone()), ("c".into(), int.clone())],
            cases: vec![HoareCase {
                pre: Sfa::universe(),
                ty: RType::base(Sort::Unit),
                post: appends(&Sfa::universe(), child_event),
            }],
        },
    );

    let contains_event = |r: bool| {
        ev(
            "contains",
            &["q"],
            Formula::and(vec![
                Formula::eq(Term::var("q"), Term::var("x")),
                Formula::eq(Term::var(NU), Term::bool(r)),
            ]),
        )
    };
    let present = p_in_tree(Term::var("x"));
    let absent = Sfa::not(present.clone());
    d.declare_eff(
        "contains",
        EffOpSig {
            ghosts: vec![],
            params: vec![("x".into(), int)],
            cases: vec![
                HoareCase {
                    pre: present.clone(),
                    ty: RType::bool_singleton(true),
                    post: appends(&present, contains_event(true)),
                },
                HoareCase {
                    pre: absent.clone(),
                    ty: RType::bool_singleton(false),
                    post: appends(&absent, contains_event(false)),
                },
            ],
        },
    );

    d.axioms = integer_axioms();
    d
}

/// Executable trace semantics of the tree library.
pub fn tree_model() -> LibraryModel {
    let mut m = LibraryModel::new();
    m.define("addroot", |_trace, args| match args {
        [_] => Ok(Constant::Unit),
        _ => Err(InterpError::TypeError("addroot expects 1 argument".into())),
    });
    m.define("addchild", |_trace, args| match args {
        [_, _] => Ok(Constant::Unit),
        _ => Err(InterpError::TypeError(
            "addchild expects 2 arguments".into(),
        )),
    });
    m.define("contains", |trace, args| match args {
        [x] => Ok(Constant::Bool(trace.any(|e| {
            (e.op == "addroot" && e.args.first() == Some(x))
                || (e.op == "addchild" && e.args.get(1) == Some(x))
        }))),
        _ => Err(InterpError::TypeError("contains expects 1 argument".into())),
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_sfa::{Event, Trace};

    #[test]
    fn contains_tracks_roots_and_children() {
        let m = tree_model();
        let mut t = Trace::new();
        t.push(Event::new(
            "addroot",
            vec![Constant::Int(10)],
            Constant::Unit,
        ));
        t.push(Event::new(
            "addchild",
            vec![Constant::Int(10), Constant::Int(5)],
            Constant::Unit,
        ));
        assert_eq!(
            m.apply(&t, "contains", &[Constant::Int(5)]).unwrap(),
            Constant::Bool(true)
        );
        assert_eq!(
            m.apply(&t, "contains", &[Constant::Int(7)]).unwrap(),
            Constant::Bool(false)
        );
    }

    #[test]
    fn delta_shape() {
        let d = tree_delta();
        assert_eq!(d.eff_ops.len(), 3);
        assert_eq!(d.eff_ops["contains"].cases.len(), 2);
    }
}
