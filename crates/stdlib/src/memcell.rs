//! The persistent memory-cell library of the MinSet benchmark (paper Example 4.3):
//! `write : int → unit`, `read : unit → int`, plus `is_init : unit → bool`.

use crate::preds::integer_axioms;
use hat_core::delta::events::{appends, ev};
use hat_core::{Delta, EffOpSig, HoareCase, RType, NU};
use hat_lang::interp::{InterpError, LibraryModel};
use hat_logic::{Constant, Formula, Sort, Term};
use hat_sfa::Sfa;

/// `P_written(a)`: the most recent `write` stored `a`.
pub fn p_written(a: Term) -> Sfa {
    Sfa::eventually(Sfa::and(vec![
        ev("write", &["x"], Formula::eq(Term::var("x"), a)),
        Sfa::next(Sfa::globally(Sfa::not(ev("write", &["x"], Formula::True)))),
    ]))
}

/// `P_any_write`: some write has happened (the cell is initialised).
pub fn p_any_write() -> Sfa {
    Sfa::eventually(ev("write", &["x"], Formula::True))
}

/// The HAT signatures of the memory cell. `read` uses a ghost variable for the hidden cell
/// content, exercising the abduction machinery of the checker.
pub fn memcell_delta() -> Delta {
    let mut d = Delta::new();
    let int = RType::base(Sort::Int);

    let write_event = ev("write", &["x"], Formula::eq(Term::var("x"), Term::var("e")));
    d.declare_eff(
        "write",
        EffOpSig {
            ghosts: vec![],
            params: vec![("e".into(), int.clone())],
            cases: vec![HoareCase {
                pre: Sfa::universe(),
                ty: RType::base(Sort::Unit),
                post: appends(&Sfa::universe(), write_event),
            }],
        },
    );

    // read : a:int ⇢ unit → [P_written(a)] {ν = a} [P_written(a); ⟨read = ν | ν = a⟩ ∧ LAST]
    let read_event = ev("read", &[], Formula::eq(Term::var(NU), Term::var("a")));
    d.declare_eff(
        "read",
        EffOpSig {
            ghosts: vec![("a".into(), Sort::Int)],
            params: vec![("u".into(), RType::base(Sort::Unit))],
            cases: vec![HoareCase {
                pre: p_written(Term::var("a")),
                ty: RType::singleton(Sort::Int, Term::var("a")),
                post: appends(&p_written(Term::var("a")), read_event),
            }],
        },
    );

    // is_init : unit → intersection on whether any write has happened.
    let init_event = |r: bool| ev("is_init", &[], Formula::eq(Term::var(NU), Term::bool(r)));
    let initialised = p_any_write();
    let uninitialised = Sfa::not(initialised.clone());
    d.declare_eff(
        "is_init",
        EffOpSig {
            ghosts: vec![],
            params: vec![("u".into(), RType::base(Sort::Unit))],
            cases: vec![
                HoareCase {
                    pre: initialised.clone(),
                    ty: RType::bool_singleton(true),
                    post: appends(&initialised, init_event(true)),
                },
                HoareCase {
                    pre: uninitialised.clone(),
                    ty: RType::bool_singleton(false),
                    post: appends(&uninitialised, init_event(false)),
                },
            ],
        },
    );

    d.axioms = integer_axioms();
    d
}

/// Executable trace semantics of the memory cell.
pub fn memcell_model() -> LibraryModel {
    let mut m = LibraryModel::new();
    m.define("write", |_trace, args| match args {
        [_] => Ok(Constant::Unit),
        _ => Err(InterpError::TypeError("write expects 1 argument".into())),
    });
    m.define("read", |trace, args| match args {
        [_unit] => trace
            .last_matching(|e| e.op == "write")
            .map(|e| e.args[0].clone())
            .ok_or_else(|| InterpError::Stuck("read of an uninitialised cell".into())),
        _ => Err(InterpError::TypeError("read expects 1 argument".into())),
    });
    m.define("is_init", |trace, args| match args {
        [_unit] => Ok(Constant::Bool(trace.any(|e| e.op == "write"))),
        _ => Err(InterpError::TypeError("is_init expects 1 argument".into())),
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::Interpretation;
    use hat_sfa::{accepts, Event, Trace, TraceModel};

    #[test]
    fn p_written_describes_the_latest_write() {
        let model = TraceModel::new(Interpretation::new()).bind("a", Constant::Int(3));
        let write = |n: i64| Event::new("write", vec![Constant::Int(n)], Constant::Unit);
        let sfa = p_written(Term::var("a"));
        assert!(accepts(&model, &Trace::from_events(vec![write(1), write(3)]), &sfa).unwrap());
        assert!(!accepts(&model, &Trace::from_events(vec![write(3), write(1)]), &sfa).unwrap());
        assert!(!accepts(&model, &Trace::new(), &sfa).unwrap());
    }

    #[test]
    fn read_requires_initialisation() {
        let m = memcell_model();
        let err = m
            .apply(&Trace::new(), "read", &[Constant::Unit])
            .unwrap_err();
        assert!(matches!(err, InterpError::Stuck(_)));
        let mut t = Trace::new();
        t.push(Event::new("write", vec![Constant::Int(5)], Constant::Unit));
        assert_eq!(
            m.apply(&t, "read", &[Constant::Unit]).unwrap(),
            Constant::Int(5)
        );
    }

    #[test]
    fn read_signature_carries_a_ghost() {
        let d = memcell_delta();
        assert_eq!(d.eff_ops["read"].ghosts.len(), 1);
    }
}
