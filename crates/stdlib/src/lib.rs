//! # hat-stdlib
//!
//! Specifications and executable models of the backing stateful libraries used by the
//! paper's benchmark suite (Table 1): a persistent key-value store, a stateful set, a
//! persistent memory cell, a linked list, a tree and a graph.
//!
//! For each library the crate provides:
//!
//! * a [`hat_core::Delta`] with HAT signatures for its effectful operators, refinement
//!   signatures for the pure helpers it relies on, and method-predicate axioms
//!   (the analogue of the paper's Example 4.2 signatures), and
//! * a [`hat_lang::LibraryModel`] giving the operators a trace-based executable semantics
//!   (the analogue of Fig. 10) so that interpreter-based tests can validate verified code.
//!
//! The specifications are intentionally written the way a library author would write them:
//! permissive preconditions, postconditions that only describe the event appended by the
//! call, and intersection types when the result depends on the effect history (e.g.
//! `exists` / `mem`).

pub mod kvstore;
pub mod libset;
pub mod linkedlist;
pub mod memcell;
pub mod preds;
pub mod stategraph;
pub mod statetree;

pub use kvstore::{kvstore_delta, kvstore_model};
pub use libset::{set_delta, set_model};
pub use linkedlist::{linkedlist_delta, linkedlist_model};
pub use memcell::{memcell_delta, memcell_model};
pub use stategraph::{graph_delta, graph_model};
pub use statetree::{tree_delta, tree_model};

/// Sorts shared by the library specifications.
pub mod sorts {
    use hat_logic::Sort;

    /// `Path.t` — fully elaborated file-system paths.
    pub fn path() -> Sort {
        Sort::named("Path.t")
    }

    /// `Bytes.t` — opaque file/directory contents.
    pub fn bytes() -> Sort {
        Sort::named("Bytes.t")
    }

    /// `Elem.t` — elements stored in cells of the linked list / tree libraries.
    pub fn elem() -> Sort {
        Sort::named("Elem.t")
    }

    /// `Node.t` — graph nodes (also used as automaton states by the DFA benchmark).
    pub fn node() -> Sort {
        Sort::named("Node.t")
    }

    /// `Char.t` — transition labels of the DFA benchmark.
    pub fn char_t() -> Sort {
        Sort::named("Char.t")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_libraries_expose_alphabets() {
        assert!(!kvstore_delta().alphabet().is_empty());
        assert!(!set_delta().alphabet().is_empty());
        assert!(!memcell_delta().alphabet().is_empty());
        assert!(!linkedlist_delta().alphabet().is_empty());
        assert!(!tree_delta().alphabet().is_empty());
        assert!(!graph_delta().alphabet().is_empty());
    }

    #[test]
    fn library_models_cover_their_signatures() {
        let pairs = [
            (kvstore_delta(), kvstore_model()),
            (set_delta(), set_model()),
            (memcell_delta(), memcell_model()),
            (linkedlist_delta(), linkedlist_model()),
            (tree_delta(), tree_model()),
            (graph_delta(), graph_model()),
        ];
        for (delta, model) in pairs {
            for op in delta.eff_ops.keys() {
                assert!(
                    model.ops().contains(op),
                    "library model is missing executable semantics for `{op}`"
                );
            }
        }
    }
}
