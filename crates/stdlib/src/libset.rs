//! A stateful integer Set library: `insert : int → unit`, `mem : int → bool`.

use crate::preds::integer_axioms;
use hat_core::delta::events::{appends, ev};
use hat_core::{Delta, EffOpSig, HoareCase, RType, NU};
use hat_lang::interp::{InterpError, LibraryModel};
use hat_logic::{Constant, Formula, Sort, Term};
use hat_sfa::Sfa;

/// `P_inserted(x)`: some insert of `x` appears in the trace.
pub fn p_inserted(x: Term) -> Sfa {
    Sfa::eventually(ev("insert", &["x"], Formula::eq(Term::var("x"), x)))
}

/// The HAT signatures of the Set library.
pub fn set_delta() -> Delta {
    let mut d = Delta::new();
    let int = RType::base(Sort::Int);

    let ins_event = ev(
        "insert",
        &["x"],
        Formula::eq(Term::var("x"), Term::var("e")),
    );
    d.declare_eff(
        "insert",
        EffOpSig {
            ghosts: vec![],
            params: vec![("e".into(), int.clone())],
            cases: vec![HoareCase {
                pre: Sfa::universe(),
                ty: RType::base(Sort::Unit),
                post: appends(&Sfa::universe(), ins_event),
            }],
        },
    );

    let mem_event = |r: bool| {
        ev(
            "mem",
            &["x"],
            Formula::and(vec![
                Formula::eq(Term::var("x"), Term::var("e")),
                Formula::eq(Term::var(NU), Term::bool(r)),
            ]),
        )
    };
    let present = p_inserted(Term::var("e"));
    let absent = Sfa::not(present.clone());
    d.declare_eff(
        "mem",
        EffOpSig {
            ghosts: vec![],
            params: vec![("e".into(), int.clone())],
            cases: vec![
                HoareCase {
                    pre: present.clone(),
                    ty: RType::bool_singleton(true),
                    post: appends(&present, mem_event(true)),
                },
                HoareCase {
                    pre: absent.clone(),
                    ty: RType::bool_singleton(false),
                    post: appends(&absent, mem_event(false)),
                },
            ],
        },
    );

    d.axioms = integer_axioms();
    d
}

/// Executable trace semantics of the Set library.
pub fn set_model() -> LibraryModel {
    let mut m = LibraryModel::new();
    m.define("insert", |_trace, args| match args {
        [_] => Ok(Constant::Unit),
        _ => Err(InterpError::TypeError("insert expects 1 argument".into())),
    });
    m.define("mem", |trace, args| match args {
        [x] => Ok(Constant::Bool(
            trace.any(|e| e.op == "insert" && e.args.first() == Some(x)),
        )),
        _ => Err(InterpError::TypeError("mem expects 1 argument".into())),
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_lang::builder::*;
    use hat_lang::interp::Interpreter;
    use hat_lang::Value;
    use hat_logic::Interpretation;
    use hat_sfa::Trace;

    #[test]
    fn mem_reflects_insert_history() {
        let interp = Interpreter::new(set_model(), Interpretation::new());
        let prog = let_eff(
            "u",
            "insert",
            vec![Value::int(7)],
            let_eff("b", "mem", vec![Value::int(7)], ret(Value::var("b"))),
        );
        let (v, trace) = interp
            .eval(&Default::default(), &Trace::new(), &prog)
            .unwrap();
        assert_eq!(v.as_bool(), Some(true));
        assert_eq!(trace.len(), 2);
        let prog2 = let_eff("b", "mem", vec![Value::int(9)], ret(Value::var("b")));
        let (v2, _) = interp
            .eval(&Default::default(), &Trace::new(), &prog2)
            .unwrap();
        assert_eq!(v2.as_bool(), Some(false));
    }

    #[test]
    fn signatures_have_the_expected_shape() {
        let d = set_delta();
        assert_eq!(d.eff_ops["insert"].cases.len(), 1);
        assert_eq!(d.eff_ops["mem"].cases.len(), 2);
    }
}
