//! Method predicates and their axioms (paper §6: "the semantics of method predicates are
//! defined via a set of lemmas in FOL").

use crate::sorts;
use hat_logic::axioms::Axiom;
use hat_logic::{AxiomSet, Formula, Sort, Term};

/// Method predicates and pure functions of the file-system benchmarks:
/// `isRoot`, `isDir`, `isFile`, `isDel`, `parent`, `addChild`, `delChild`, `setDeleted`.
pub fn filesystem_axioms() -> AxiomSet {
    let mut ax = AxiomSet::new();
    let bytes = sorts::bytes();
    let path = sorts::path();
    ax.declare_pred("isDir", vec![bytes.clone()]);
    ax.declare_pred("isFile", vec![bytes.clone()]);
    ax.declare_pred("isDel", vec![bytes.clone()]);
    ax.declare_pred("isRoot", vec![path.clone()]);
    ax.declare_func("parent", vec![path.clone()], path.clone());
    ax.declare_func("addChild", vec![bytes.clone(), path.clone()], bytes.clone());
    ax.declare_func("delChild", vec![bytes.clone(), path.clone()], bytes.clone());
    ax.declare_func("setDeleted", vec![bytes.clone()], bytes.clone());

    let b = || Term::var("b");
    let p = || Term::var("p");
    // A value cannot be two kinds at once.
    ax.add_axiom(Axiom::new(
        "dir-not-del",
        vec![("b".into(), bytes.clone())],
        Formula::implies(
            Formula::pred("isDir", vec![b()]),
            Formula::not(Formula::pred("isDel", vec![b()])),
        ),
    ));
    ax.add_axiom(Axiom::new(
        "dir-not-file",
        vec![("b".into(), bytes.clone())],
        Formula::implies(
            Formula::pred("isDir", vec![b()]),
            Formula::not(Formula::pred("isFile", vec![b()])),
        ),
    ));
    ax.add_axiom(Axiom::new(
        "file-not-del",
        vec![("b".into(), bytes.clone())],
        Formula::implies(
            Formula::pred("isFile", vec![b()]),
            Formula::not(Formula::pred("isDel", vec![b()])),
        ),
    ));
    // Updating a directory's child list keeps it a directory; marking deleted makes it
    // deleted; the root is its own parent.
    ax.add_axiom(Axiom::new(
        "addchild-keeps-dir",
        vec![("b".into(), bytes.clone()), ("p".into(), path.clone())],
        Formula::iff(
            Formula::pred("isDir", vec![Term::app("addChild", vec![b(), p()])]),
            Formula::pred("isDir", vec![b()]),
        ),
    ));
    ax.add_axiom(Axiom::new(
        "addchild-not-file",
        vec![("b".into(), bytes.clone()), ("p".into(), path.clone())],
        Formula::not(Formula::pred(
            "isFile",
            vec![Term::app("addChild", vec![b(), p()])],
        )),
    ));
    ax.add_axiom(Axiom::new(
        "addchild-not-del",
        vec![("b".into(), bytes.clone()), ("p".into(), path.clone())],
        Formula::not(Formula::pred(
            "isDel",
            vec![Term::app("addChild", vec![b(), p()])],
        )),
    ));
    ax.add_axiom(Axiom::new(
        "delchild-keeps-dir",
        vec![("b".into(), bytes.clone()), ("p".into(), path.clone())],
        Formula::iff(
            Formula::pred("isDir", vec![Term::app("delChild", vec![b(), p()])]),
            Formula::pred("isDir", vec![b()]),
        ),
    ));
    ax.add_axiom(Axiom::new(
        "setdeleted-is-del",
        vec![("b".into(), bytes.clone())],
        Formula::pred("isDel", vec![Term::app("setDeleted", vec![b()])]),
    ));
    ax.add_axiom(Axiom::new(
        "root-parent",
        vec![("p".into(), path.clone())],
        Formula::implies(
            Formula::pred("isRoot", vec![p()]),
            Formula::eq(Term::app("parent", vec![p()]), p()),
        ),
    ));
    ax
}

/// Axioms for the integer-element libraries (sets, heaps, memory cells): nothing beyond
/// linear arithmetic, which the solver handles natively.
pub fn integer_axioms() -> AxiomSet {
    AxiomSet::new()
}

/// Axioms for graph benchmarks: node/character sorts are uninterpreted, so only equality
/// reasoning is needed; declared here for symmetry and future extension.
pub fn graph_axioms() -> AxiomSet {
    let mut ax = AxiomSet::new();
    ax.declare_func("srcOf", vec![Sort::named("Edge.t")], sorts::node());
    ax
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::Solver;

    #[test]
    fn filesystem_axioms_are_usable_by_the_solver() {
        let mut solver = Solver::with_axioms(filesystem_axioms());
        let env = vec![
            ("b".to_string(), sorts::bytes()),
            ("p".to_string(), sorts::path()),
        ];
        // isDir(b) ⊢ ¬isFile(b)
        assert!(solver.entails(
            &env,
            &[Formula::pred("isDir", vec![Term::var("b")])],
            &Formula::not(Formula::pred("isFile", vec![Term::var("b")]))
        ));
        // isDir(b) ⊢ isDir(addChild(b, p))
        assert!(solver.entails(
            &env,
            &[Formula::pred("isDir", vec![Term::var("b")])],
            &Formula::pred(
                "isDir",
                vec![Term::app("addChild", vec![Term::var("b"), Term::var("p")])]
            )
        ));
        // setDeleted(b) is deleted, hence not a directory.
        assert!(solver.entails(
            &env,
            &[],
            &Formula::not(Formula::pred(
                "isDir",
                vec![Term::app("setDeleted", vec![Term::var("b")])]
            ))
        ));
    }

    #[test]
    fn axioms_do_not_overconstrain() {
        let mut solver = Solver::with_axioms(filesystem_axioms());
        let env = vec![("b".to_string(), sorts::bytes())];
        // A value may be neither a dir nor a file nor deleted.
        assert!(solver.is_satisfiable(
            &env,
            &Formula::and(vec![
                Formula::not(Formula::pred("isDir", vec![Term::var("b")])),
                Formula::not(Formula::pred("isFile", vec![Term::var("b")])),
                Formula::not(Formula::pred("isDel", vec![Term::var("b")])),
            ])
        ));
        // And isFile alone is satisfiable.
        assert!(solver.is_satisfiable(&env, &Formula::pred("isFile", vec![Term::var("b")])));
    }
}
