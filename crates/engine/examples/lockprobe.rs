//! Diagnostic: per-record-kind shared-tier lock traffic on the non-slow suite at
//! `jobs=6`, with and without per-worker read-through tiers.
//!
//! ```console
//! $ cargo run --release -p hat-engine --example lockprobe
//! local_tiers=false: [(Solver, 329), ..., (Transition, 14094)]
//! local_tiers=true:  [(Solver, 134), ..., (Transition, 679)]
//! ```
//!
//! The full-suite evidence for the lock-reduction claim lives in
//! `BENCH_engine.json` (`lock_reduction` table, written by the `table1` binary);
//! this probe is the quick way to see *which kind's* traffic a tier-policy change
//! moves.

fn main() {
    let benches: Vec<_> = hat_suite::all_benchmarks()
        .into_iter()
        .filter(|b| !b.slow)
        .collect();
    for local in [false, true] {
        let engine = hat_engine::Engine::new(hat_engine::EngineConfig {
            jobs: 6,
            local_tiers: local,
            ..Default::default()
        })
        .expect("in-memory engine");
        engine.check_benchmarks(&benches);
        println!("local_tiers={local}: {:?}", engine.cache().lock_breakdown());
    }
}
