//! The tiers of the memo hierarchy.
//!
//! Every record kind of the [`crate::cache::MemoStore`] — solver verdicts, inclusion
//! verdicts, DFA shapes, minterm sets, transitions — is served by the same three-level
//! tier stack, instantiated once per kind:
//!
//! 1. a **local tier** ([`LocalMap`], grouped per worker in [`LocalTier`]): a plain
//!    lock-free hash map owned by one scheduler worker. Lookups and promotions touch no
//!    lock at all, which is what cuts shared-shard lock traffic under `--jobs N`;
//! 2. a **shared tier** ([`SharedTier`]): a sharded `RwLock` map shared by every worker
//!    of the run, counting its lock acquisitions so the local tier's effect is
//!    measurable;
//! 3. a **disk tier** ([`DiskTier`]): the in-memory image of the persistent LSM segment
//!    stack owned by [`crate::cache::MemoStore`] (see [`crate::lsm`]). Segments are
//!    replayed into it at open; a shared-tier miss falls through to it and a hit is
//!    *promoted* — moved — up into the shared tier, so each warm record pays its
//!    disk-tier lock at most once. Fresh shared-tier inserts are written through to the
//!    LSM memtable, which flushes and compacts on a background thread that takes no
//!    tier locks at all.
//!
//! The read-through composition (probe local → fall through to shared → promote the hit
//! into local) lives in [`crate::oracle::CachingOracle`]; this module provides the tiers
//! themselves behind the common [`MemoTier`] interface.
//!
//! Correctness of read-through caching rests on the same invariant as the rest of the
//! cache: every value is a **pure function of its canonical key**, so a stale local copy
//! cannot exist — two tiers can only ever disagree by one not yet holding a key.

use hat_sfa::MintermSet;
use hat_sfa::Sfa;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

/// One tier of the memo hierarchy for a single record kind: a map from α-canonical keys
/// `K` (always the `String` keys of [`crate::canon`] in this crate) to memoised values
/// `V`. Implementations differ in sharing and cost, not in semantics — values are pure
/// functions of their keys, so any tier may answer.
pub trait MemoTier<K, V> {
    /// Looks a key up, cloning the stored value out.
    fn get(&self, key: &K) -> Option<V>;
    /// Stores a value, returning `true` when the key was not present before. Racing
    /// stores of one key are harmless (both write the same pure-function-of-key value).
    fn put(&self, key: K, value: V) -> bool;
    /// Number of entries in this tier.
    fn len(&self) -> usize;
    /// Whether this tier holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A worker-local lock-free tier for one record kind.
///
/// Interior mutability (instead of `&mut`) lets one worker share a single tier across
/// the many short-lived oracles it creates — one per (benchmark, method) job — behind an
/// `Rc`, without threading mutable borrows through the checker stack.
///
/// ```
/// use hat_engine::tier::{LocalMap, MemoTier};
///
/// let tier: LocalMap<bool> = LocalMap::default();
/// assert_eq!(tier.get(&"k".to_string()), None);
/// assert!(tier.put("k".into(), true));
/// assert!(!tier.put("k".into(), true), "second put is not fresh");
/// assert_eq!(tier.get(&"k".to_string()), Some(true));
/// ```
#[derive(Debug)]
pub struct LocalMap<V> {
    map: RefCell<HashMap<String, V>>,
}

impl<V> Default for LocalMap<V> {
    fn default() -> Self {
        LocalMap {
            map: RefCell::new(HashMap::new()),
        }
    }
}

impl<V: Clone> LocalMap<V> {
    /// Looks a key up without any locking.
    pub fn get_str(&self, key: &str) -> Option<V> {
        self.map.borrow().get(key).cloned()
    }

    /// Stores a value without any locking; `true` when the key is new.
    pub fn put_owned(&self, key: String, value: V) -> bool {
        self.map.borrow_mut().insert(key, value).is_none()
    }
}

impl<V: Clone> MemoTier<String, V> for LocalMap<V> {
    fn get(&self, key: &String) -> Option<V> {
        self.get_str(key)
    }

    fn put(&self, key: String, value: V) -> bool {
        self.put_owned(key, value)
    }

    fn len(&self) -> usize {
        self.map.borrow().len()
    }
}

/// One worker's local tier set: one [`LocalMap`] (or [`ShardMirror`]) per record kind,
/// shared by every oracle the worker creates (via `Rc`). Dropping it at the end of the
/// worker's job stream discards the promotions — the shared tier remains the source of
/// truth.
///
/// Transitions get the [`ShardMirror`] policy instead of plain per-key promotion: they
/// are by far the hottest kind, each one is cheap to re-derive (propositional), and the
/// kind is never persisted — so trading per-key shared lookups for occasional whole-
/// shard syncs and write-behind insert batches is a pure lock-traffic win.
#[derive(Debug, Default)]
pub struct LocalTier {
    /// Solver verdicts (`S` records).
    pub solver: LocalMap<bool>,
    /// Inclusion verdicts (`I` records).
    pub inclusion: LocalMap<bool>,
    /// DFA-shape verdicts (`D` records).
    pub shape: LocalMap<bool>,
    /// Simulation-subsumption verdicts (`U` records).
    pub subsumption: LocalMap<bool>,
    /// Minterm sets (`M` records).
    pub minterms: LocalMap<MintermSet>,
    /// DFA transitions (in-memory kind).
    pub transitions: ShardMirror<Sfa>,
}

/// Default shard count of a [`SharedTier`].
const SHARDS: usize = 64;

/// One shard: its map plus a lock-free version counter bumped on every write, so mirror
/// replicas can tell "nothing new here" without taking the lock.
#[derive(Debug)]
struct Shard<V> {
    map: RwLock<HashMap<String, V>>,
    version: AtomicUsize,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            map: RwLock::new(HashMap::new()),
            version: AtomicUsize::new(0),
        }
    }
}

/// The shared sharded tier for one record kind: independently locked hash maps (64 by
/// default, configurable per kind), plus a relaxed counter of every shard-lock
/// acquisition (reads and writes alike) so the traffic the local tiers absorb is
/// visible in statistics.
#[derive(Debug)]
pub struct SharedTier<V> {
    shards: Vec<Shard<V>>,
    locks: AtomicUsize,
}

impl<V> Default for SharedTier<V> {
    fn default() -> Self {
        Self::with_shards(SHARDS)
    }
}

impl<V> SharedTier<V> {
    /// A tier with a custom shard count. Few coarse shards suit kinds whose shared-tier
    /// traffic is rare but batched (like the transition mirror's flushes: one lock per
    /// distinct shard per batch); many fine shards suit kinds hit per key.
    pub fn with_shards(shards: usize) -> Self {
        SharedTier {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
            locks: AtomicUsize::new(0),
        }
    }

    fn shard_index(&self, key: &str) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The write-version of one shard (lock-free read).
    fn shard_version(&self, shard: usize) -> usize {
        self.shards[shard].version.load(Ordering::Acquire)
    }

    /// Total shard-lock acquisitions since construction.
    pub fn lock_acquisitions(&self) -> usize {
        self.locks.load(Ordering::Relaxed)
    }
}

impl<V: Clone> SharedTier<V> {
    /// Looks a key up (one read-lock acquisition).
    pub fn get_str(&self, key: &str) -> Option<V> {
        self.locks.fetch_add(1, Ordering::Relaxed);
        self.shards[self.shard_index(key)]
            .map
            .read()
            .expect("shared tier shard poisoned")
            .get(key)
            .cloned()
    }

    /// Stores a value (one write-lock acquisition); `true` when the key is new.
    pub fn put_owned(&self, key: String, value: V) -> bool {
        self.locks.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[self.shard_index(&key)];
        let fresh = shard
            .map
            .write()
            .expect("shared tier shard poisoned")
            .insert(key, value)
            .is_none();
        shard.version.fetch_add(1, Ordering::Release);
        fresh
    }

    /// Stores a value without counting the lock acquisition — used when replaying the
    /// disk tier at startup, which is sequential and should not pollute the contention
    /// statistics the local tiers are measured by.
    pub(crate) fn put_quiet(&self, key: String, value: V) -> bool {
        let shard = &self.shards[self.shard_index(&key)];
        let fresh = shard
            .map
            .write()
            .expect("shared tier shard poisoned")
            .insert(key, value)
            .is_none();
        shard.version.fetch_add(1, Ordering::Release);
        fresh
    }

    /// A point-in-time copy of every entry (used by disk-tier compaction; does not count
    /// towards [`SharedTier::lock_acquisitions`] for the same reason as replay).
    pub(crate) fn snapshot(&self) -> Vec<(String, V)> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.map
                    .read()
                    .expect("shared tier shard poisoned")
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

impl<V: Clone> MemoTier<String, V> for SharedTier<V> {
    fn get(&self, key: &String) -> Option<V> {
        self.get_str(key)
    }

    fn put(&self, key: String, value: V) -> bool {
        self.put_owned(key, value)
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.read().expect("shared tier shard poisoned").len())
            .sum()
    }
}

/// The disk tier of one record kind: the in-memory image of what the LSM segment stack
/// holds for that kind, replayed once at open. It sits *below* the shared tier: a
/// shared-tier miss falls through to `get_str` here, and a hit is promoted into the
/// shared tier and evicted from this tier (the segments on disk still hold the record;
/// this map only exists so warm lookups need not re-read segment files). Like the
/// shared tier it counts its lock acquisitions, so `engine/tests/tiers.rs` can assert
/// that background compaction — which touches only segment files and the manifest —
/// never acquires one.
///
/// A single `RwLock` (not shards) is deliberate: after the open-time replay the tier is
/// read-mostly and every hot key migrates out of it after its first warm lookup.
#[derive(Debug)]
pub struct DiskTier<V> {
    map: RwLock<HashMap<String, V>>,
    locks: AtomicUsize,
}

impl<V> Default for DiskTier<V> {
    fn default() -> Self {
        DiskTier {
            map: RwLock::new(HashMap::new()),
            locks: AtomicUsize::new(0),
        }
    }
}

impl<V> DiskTier<V> {
    /// Total lock acquisitions since construction (reads and writes alike).
    pub fn lock_acquisitions(&self) -> usize {
        self.locks.load(Ordering::Relaxed)
    }
}

impl<V: Clone> DiskTier<V> {
    /// Looks a key up (one counted read-lock acquisition).
    pub fn get_str(&self, key: &str) -> Option<V> {
        self.locks.fetch_add(1, Ordering::Relaxed);
        self.map
            .read()
            .expect("disk tier poisoned")
            .get(key)
            .cloned()
    }

    /// Stores a replayed record without counting the lock — open-time replay is
    /// sequential and should not pollute the contention statistics. `true` when fresh
    /// (replay feeds segments newest-first, so the first occurrence wins).
    pub fn put_quiet(&self, key: String, value: V) -> bool {
        use std::collections::hash_map::Entry;
        match self.map.write().expect("disk tier poisoned").entry(key) {
            Entry::Occupied(_) => false,
            Entry::Vacant(slot) => {
                slot.insert(value);
                true
            }
        }
    }

    /// Drops a record that was just promoted into the shared tier (one counted
    /// write-lock acquisition). Racing promotions are harmless: the second eviction is
    /// a no-op and both workers promoted the same pure-function-of-key value.
    pub fn evict(&self, key: &str) {
        self.locks.fetch_add(1, Ordering::Relaxed);
        self.map.write().expect("disk tier poisoned").remove(key);
    }

    /// A point-in-time copy of every entry (migration snapshots; uncounted like
    /// [`SharedTier::snapshot`]).
    pub(crate) fn snapshot(&self) -> Vec<(String, V)> {
        self.map
            .read()
            .expect("disk tier poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

impl<V: Clone> MemoTier<String, V> for DiskTier<V> {
    fn get(&self, key: &String) -> Option<V> {
        self.get_str(key)
    }

    fn put(&self, key: String, value: V) -> bool {
        self.locks.fetch_add(1, Ordering::Relaxed);
        self.map
            .write()
            .expect("disk tier poisoned")
            .insert(key, value)
            .is_none()
    }

    fn len(&self) -> usize {
        self.map.read().expect("disk tier poisoned").len()
    }
}

/// Write-behind inserts flush to the shared tier in batches of this size (grouped by
/// shard: one write lock per distinct shard per flush).
pub const MIRROR_BATCH: usize = 256;

/// A worker-local replica of a [`SharedTier`] with coarse-grained synchronisation, for
/// record kinds whose values are cheap to recompute (so a temporarily unsynchronised
/// replica costs a little duplicate work, never a wrong answer — values remain pure
/// functions of their keys).
///
/// * **Reads** are answered from the replica. A miss syncs the key's whole shard from
///   the shared tier — but only when the shard's lock-free write-version says there is
///   actually something new since the replica's last sync — so per-key shared lookups
///   are replaced by occasional, always-useful whole-shard copies.
/// * **Writes** land in the replica immediately and are published to the shared tier in
///   write-behind batches (plus an explicit [`ShardMirror::flush`] at job boundaries),
///   so N inserts cost ~N/[`MIRROR_BATCH`] lock acquisitions instead of N.
#[derive(Debug)]
pub struct ShardMirror<V> {
    map: LocalMap<V>,
    /// Per-shard shared write-version at this replica's last sync (`usize::MAX` =
    /// never synced). Lazily sized to the shared tier's shard count.
    synced_version: RefCell<Vec<usize>>,
    pending: RefCell<Vec<(String, V)>>,
}

impl<V> Default for ShardMirror<V> {
    fn default() -> Self {
        ShardMirror {
            map: LocalMap::default(),
            synced_version: RefCell::new(Vec::new()),
            pending: RefCell::new(Vec::new()),
        }
    }
}

impl<V: Clone> ShardMirror<V> {
    /// Looks a key up in the replica, syncing the key's shard from `shared` when the
    /// shard has news the replica has not seen. Returns the value (if any) and the
    /// number of shared locks taken (0 or 1).
    pub fn get_or_sync(&self, shared: &SharedTier<V>, key: &str) -> (Option<V>, usize) {
        if let Some(v) = self.map.get_str(key) {
            return (Some(v), 0);
        }
        let shard = shared.shard_index(key);
        let mut synced = self.synced_version.borrow_mut();
        let want = shared.shard_count().max(synced.len());
        synced.resize(want, usize::MAX);
        // Lock-free staleness probe: if nothing was written to the shard since the last
        // sync, a shared lookup cannot do better than the replica just did.
        let version = shared.shard_version(shard);
        if synced[shard] == version {
            return (None, 0);
        }
        shared.copy_shard_into(shard, &self.map);
        synced[shard] = version;
        (self.map.get_str(key), 1)
    }

    /// Stores into the replica and the write-behind buffer, flushing the buffer when it
    /// reaches [`MIRROR_BATCH`]. Returns the number of shared locks taken.
    pub fn put(&self, shared: &SharedTier<V>, key: String, value: V) -> usize {
        self.map.put_owned(key.clone(), value.clone());
        let mut pending = self.pending.borrow_mut();
        pending.push((key, value));
        if pending.len() >= MIRROR_BATCH {
            let batch = std::mem::take(&mut *pending);
            drop(pending);
            self.publish(shared, batch)
        } else {
            0
        }
    }

    /// Publishes every buffered insert (called at job boundaries so other workers see a
    /// finished method's transitions). Returns the number of shared locks taken.
    pub fn flush(&self, shared: &SharedTier<V>) -> usize {
        let batch = std::mem::take(&mut *self.pending.borrow_mut());
        if batch.is_empty() {
            0
        } else {
            self.publish(shared, batch)
        }
    }

    /// Publishes a batch, marking our own writes as seen so they do not trigger a
    /// useless self-sync on the next local miss.
    fn publish(&self, shared: &SharedTier<V>, batch: Vec<(String, V)>) -> usize {
        let touched = shared.put_batch(batch);
        let mut synced = self.synced_version.borrow_mut();
        let want = shared.shard_count().max(synced.len());
        synced.resize(want, usize::MAX);
        let mut locks = 0;
        for (shard, version_before) in touched {
            locks += 1;
            // Fast-forward only when the replica had seen everything up to the moment
            // of our publish — otherwise entries another worker wrote since our last
            // sync would be skipped forever. (`version_before` is the shard's write
            // version just before our batch landed.)
            if synced[shard] == version_before {
                synced[shard] = shared.shard_version(shard);
            }
        }
        locks
    }

    /// Number of entries in the replica.
    pub fn len(&self) -> usize {
        MemoTier::<String, V>::len(&self.map)
    }

    /// Whether the replica holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V: Clone> SharedTier<V> {
    /// Copies one shard's entries into a [`LocalMap`] (one read-lock acquisition).
    fn copy_shard_into(&self, shard: usize, dst: &LocalMap<V>) {
        self.locks.fetch_add(1, Ordering::Relaxed);
        let shard = self.shards[shard]
            .map
            .read()
            .expect("shared tier shard poisoned");
        let mut map = dst.map.borrow_mut();
        for (k, v) in shard.iter() {
            map.entry(k.clone()).or_insert_with(|| v.clone());
        }
    }

    /// Inserts a batch, grouped so each distinct shard is locked once (and its version
    /// bumped once). Returns `(shard index, write version just before the batch)` for
    /// each touched shard — one lock each; the pre-batch version lets a publishing
    /// mirror tell whether it was up to date at the moment its own writes landed.
    pub fn put_batch(&self, entries: Vec<(String, V)>) -> Vec<(usize, usize)> {
        let mut by_shard: Vec<Vec<(String, V)>> = Vec::new();
        by_shard.resize_with(self.shards.len(), Vec::new);
        for (k, v) in entries {
            by_shard[self.shard_index(&k)].push((k, v));
        }
        let mut touched = Vec::new();
        for (i, group) in by_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            self.locks.fetch_add(1, Ordering::Relaxed);
            let mut shard = self.shards[i]
                .map
                .write()
                .expect("shared tier shard poisoned");
            // Read under the write lock: no other writer can slip between this read
            // and our version bump.
            touched.push((i, self.shards[i].version.load(Ordering::Acquire)));
            for (k, v) in group {
                shard.entry(k).or_insert(v);
            }
            drop(shard);
            self.shards[i].version.fetch_add(1, Ordering::Release);
        }
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_tier_counts_lock_acquisitions() {
        let tier: SharedTier<bool> = SharedTier::default();
        assert_eq!(tier.get_str("a"), None);
        assert!(tier.put_owned("a".into(), true));
        assert!(!tier.put_owned("a".into(), true));
        assert_eq!(tier.get_str("a"), Some(true));
        assert_eq!(tier.lock_acquisitions(), 4);
        assert!(tier.put_quiet("b".into(), false));
        assert_eq!(
            tier.lock_acquisitions(),
            4,
            "replay inserts are not counted"
        );
        assert_eq!(MemoTier::len(&tier), 2);
    }

    #[test]
    fn tiers_share_the_memo_tier_interface() {
        fn exercise<T: MemoTier<String, u32>>(tier: &T) {
            assert!(tier.is_empty());
            assert!(tier.put("k".into(), 7));
            assert_eq!(tier.get(&"k".to_string()), Some(7));
            assert_eq!(tier.len(), 1);
        }
        exercise(&LocalMap::default());
        exercise(&SharedTier::default());
    }

    #[test]
    fn disk_tier_counts_locks_and_evicts_promotions() {
        let tier: DiskTier<bool> = DiskTier::default();
        assert!(tier.put_quiet("warm".into(), true));
        assert!(!tier.put_quiet("warm".into(), false), "first replay wins");
        assert_eq!(tier.lock_acquisitions(), 0, "replay is uncounted");
        assert_eq!(tier.get_str("warm"), Some(true));
        assert_eq!(tier.lock_acquisitions(), 1);
        tier.evict("warm");
        assert_eq!(tier.get_str("warm"), None);
        assert_eq!(tier.lock_acquisitions(), 3);
        assert_eq!(MemoTier::<String, bool>::len(&tier), 0);
    }

    #[test]
    fn snapshot_copies_every_entry() {
        let tier: SharedTier<u32> = SharedTier::default();
        for i in 0..100u32 {
            tier.put_owned(format!("key-{i}"), i);
        }
        let mut snap = tier.snapshot();
        snap.sort();
        assert_eq!(snap.len(), 100);
        assert!(snap.contains(&("key-42".to_string(), 42)));
    }
}
