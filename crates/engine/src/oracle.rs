//! A caching [`SolverOracle`]: the bridge between the checker layers and the shared
//! [`MemoStore`], composing the memo tiers into one read-through stack.
//!
//! Every oracle query — context-consistency checks and subtyping entailments from
//! `hat-core`, minterm-satisfiability and transition queries from `hat-sfa` — is reduced
//! to one satisfiability problem, canonicalised ([`crate::canon`]), and looked up
//! tier by tier: the worker's lock-free [`LocalTier`] first (when one is attached), then
//! the shared sharded tier of the [`MemoStore`], promoting shared hits into the local
//! tier on the way back so the next lookup of the same key touches no lock. The whole
//! memo hierarchy above the solver cache — minterm sets, inclusion verdicts, DFA shapes,
//! transitions — flows through the same composition via the single typed
//! [`SolverOracle::memo_lookup`]/[`SolverOracle::memo_store`] interface, keyed by
//! [`crate::canon::memo_key`].
//!
//! On a miss the *canonical* form is handed to the worker's own [`Solver`], so the
//! verdict depends only on the cache key; this is what makes cached parallel runs
//! produce exactly the verdicts of a sequential run — and what makes read-through
//! caching trivially coherent: a value can never be stale, only absent.

use crate::cache::{MemoStore, RecordKind};
use crate::canon::{axioms_fingerprint, canonicalize, memo_key, CanonicalMemoKey};
use crate::tier::{LocalMap, LocalTier};
use hat_logic::{Atom, AxiomSet, Formula, Ident, ScopedSession, Solver, Sort};
use hat_sfa::{MemoAnswer, MemoKind, MemoQuery, MintermSet, Sfa, SolverOracle};
use std::borrow::Cow;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// A solver wrapped with the tiered memo store. Each worker owns one per job (the
/// underlying solver is not thread-safe); the shared store is shared through an [`Arc`],
/// and the worker's local tier — shared by every oracle the worker creates — through an
/// [`Rc`].
pub struct CachingOracle {
    solver: Solver,
    store: Arc<MemoStore>,
    /// The worker's lock-free read-through tier; `None` runs shared-only (the
    /// measurement baseline for `--local-tier off`).
    local: Option<Rc<LocalTier>>,
    /// Fingerprint of the solver's axiom set, prefixed onto every axiom-dependent cache
    /// key: a verdict depends on the axioms instantiated into the query, and the store
    /// is shared across oracles with *different* axiom sets (one per benchmark).
    key_prefix: String,
    /// The canonicalisation computed by the last memo-lookup miss of each kind. Every
    /// store is paired with a preceding miss for the same query, so the store reuses
    /// these instead of re-canonicalising; the `unwrap_or_else` fallbacks only fire if
    /// that pairing is ever broken by an unexpected call sequence.
    pending_minterms: Option<(String, crate::canon::AlphabetKey)>,
    pending_inclusion: Option<String>,
    pending_shape: Option<String>,
    pending_subsumption: Option<String>,
    pending_transition: Option<(String, crate::canon::TransitionKey)>,
    queries: usize,
    hits: usize,
    misses: usize,
    /// Shared-tier shard-lock acquisitions performed by this oracle (each shared get or
    /// put is exactly one). Local-tier hits bypass the shared tier entirely, so this is
    /// the number the read-through tier drives down.
    shared_locks: usize,
}

impl CachingOracle {
    /// Creates an oracle over the given background axioms and shared store.
    pub fn new(axioms: AxiomSet, store: Arc<MemoStore>) -> Self {
        let key_prefix = Self::key_prefix_for(&axioms);
        Self::with_key_prefix(axioms, store, key_prefix)
    }

    /// The cache-key prefix [`CachingOracle::new`] would derive for an axiom set. Callers
    /// spawning many oracles over the same axioms (one per method job) can compute it
    /// once and pass it to [`CachingOracle::with_key_prefix`].
    pub fn key_prefix_for(axioms: &AxiomSet) -> String {
        format!("ax{}|", axioms_fingerprint(axioms))
    }

    /// Creates an oracle with a precomputed key prefix. The prefix must be
    /// [`CachingOracle::key_prefix_for`] of the same axiom set, or cache entries would be
    /// shared across incompatible axiom sets.
    pub fn with_key_prefix(axioms: AxiomSet, store: Arc<MemoStore>, key_prefix: String) -> Self {
        CachingOracle {
            solver: Solver::with_axioms(axioms),
            store,
            local: None,
            key_prefix,
            pending_minterms: None,
            pending_inclusion: None,
            pending_shape: None,
            pending_subsumption: None,
            pending_transition: None,
            queries: 0,
            hits: 0,
            misses: 0,
            shared_locks: 0,
        }
    }

    /// Attaches a worker-local read-through tier: lookups probe it lock-free before the
    /// shared tier, and shared hits are promoted into it. Values are pure functions of
    /// their keys, so promotion cannot introduce staleness — the jobs=6 coherence test
    /// in `tests/tiers.rs` asserts verdict identity against shared-only and sequential
    /// runs.
    pub fn with_local_tier(mut self, local: Rc<LocalTier>) -> Self {
        self.local = Some(local);
        self
    }

    /// The shared store this oracle reads and writes.
    pub fn cache(&self) -> &Arc<MemoStore> {
        &self.store
    }

    /// Read-through lookup of one boolean kind: local tier (lock-free), then shared
    /// tier (one shard lock), promoting shared hits into the local tier.
    fn tier_lookup_bool(&mut self, kind: RecordKind, key: &str) -> Option<bool> {
        if let Some(local) = &self.local {
            if let Some(v) = Self::local_bools(local, kind).get_str(key) {
                self.store.note_local_hit(kind);
                return Some(v);
            }
        }
        self.shared_locks += 1;
        let found = self.store.lookup_bool(kind, key);
        if let (Some(v), Some(local)) = (found, &self.local) {
            Self::local_bools(local, kind).put_owned(key.to_string(), v);
        }
        found
    }

    /// Write-through store of one boolean kind: local tier first (the worker will ask
    /// again), then the shared tier (which appends to the disk tier when fresh).
    fn tier_store_bool(&mut self, kind: RecordKind, key: String, verdict: bool) {
        if let Some(local) = &self.local {
            Self::local_bools(local, kind).put_owned(key.clone(), verdict);
        }
        self.shared_locks += 1;
        self.store.insert_bool(kind, key, verdict);
    }

    fn local_bools(local: &LocalTier, kind: RecordKind) -> &LocalMap<bool> {
        match kind {
            RecordKind::Solver => &local.solver,
            RecordKind::Inclusion => &local.inclusion,
            RecordKind::Shape => &local.shape,
            RecordKind::Subsumption => &local.subsumption,
            RecordKind::Minterms | RecordKind::Transition => {
                unreachable!("{kind:?} is not a boolean record kind")
            }
        }
    }

    fn tier_lookup_minterms(&mut self, key: &str) -> Option<MintermSet> {
        if let Some(local) = &self.local {
            if let Some(set) = local.minterms.get_str(key) {
                self.store.note_local_hit(RecordKind::Minterms);
                return Some(set);
            }
        }
        self.shared_locks += 1;
        let found = self.store.lookup_minterms(key);
        if let (Some(set), Some(local)) = (&found, &self.local) {
            local.minterms.put_owned(key.to_string(), set.clone());
        }
        found
    }

    fn tier_store_minterms(&mut self, key: String, set: MintermSet) {
        if let Some(local) = &self.local {
            local.minterms.put_owned(key.clone(), set.clone());
        }
        self.shared_locks += 1;
        self.store.insert_minterms(key, set);
    }

    /// Transitions use the [`ShardMirror`](crate::tier::ShardMirror) policy instead of
    /// per-key read-through: they are the hottest kind, so whole-shard syncs plus
    /// write-behind insert batches replace almost every per-key shared-tier round-trip.
    /// Since cache v6 they are persisted too — the store path logs inside
    /// `insert_transition`, and the mirror path (which bypasses the store) logs through
    /// [`MemoStore::log_transition`] below.
    fn tier_lookup_transition(&mut self, key: &str) -> Option<Sfa> {
        if let Some(local) = &self.local {
            let (found, locks) = local
                .transitions
                .get_or_sync(self.store.transition_tier(), key);
            self.shared_locks += locks;
            self.store
                .note_local(RecordKind::Transition, found.is_some());
            return found;
        }
        self.shared_locks += 1;
        self.store.lookup_transition(key)
    }

    fn tier_store_transition(&mut self, key: String, succ: Sfa) {
        if let Some(local) = &self.local {
            // The mirror cannot tell a fresh derivation from a repeat, so this logs
            // unconditionally; the memtable and compaction drop the duplicates.
            self.store.log_transition(&key, &succ);
            self.shared_locks += local
                .transitions
                .put(self.store.transition_tier(), key, succ);
            return;
        }
        self.shared_locks += 1;
        self.store.insert_transition(key, succ);
    }

    /// Answers a satisfiability query through the tiers, solving the canonical form on a
    /// miss.
    fn cached_sat(&mut self, vars: &[(Ident, Sort)], f: &Formula) -> bool {
        self.queries += 1;
        // Constant formulas need no solver and would only pollute the cache.
        match f {
            Formula::True => return true,
            Formula::False => return false,
            _ => {}
        }
        let canonical = canonicalize(vars, f);
        let key = format!("{}{}", self.key_prefix, canonical.key);
        if let Some(verdict) = self.tier_lookup_bool(RecordKind::Solver, &key) {
            self.hits += 1;
            return verdict;
        }
        self.misses += 1;
        let verdict = self
            .solver
            .is_satisfiable(&canonical.vars, &canonical.formula);
        self.tier_store_bool(RecordKind::Solver, key, verdict);
        verdict
    }
}

impl Drop for CachingOracle {
    fn drop(&mut self) {
        // Safety net: the checker flushes via `flush_memos` before harvesting stats,
        // so this is a no-op (0 locks) unless an oracle is dropped mid-check.
        if let Some(local) = &self.local {
            local.transitions.flush(self.store.transition_tier());
        }
    }
}

impl SolverOracle for CachingOracle {
    fn is_sat(&mut self, vars: &[(Ident, Sort)], facts: &[Formula]) -> bool {
        let f = Formula::and(facts.to_vec());
        self.cached_sat(vars, &f)
    }

    fn entails(&mut self, vars: &[(Ident, Sort)], facts: &[Formula], goal: &Formula) -> bool {
        // facts ⊨ goal iff facts ∧ ¬goal is unsatisfiable — the same reduction the plain
        // solver applies, phrased so entailments and satisfiability share cache entries.
        let f = Formula::and(
            facts
                .iter()
                .cloned()
                .chain(std::iter::once(Formula::not(goal.clone())))
                .collect(),
        );
        !self.cached_sat(vars, &f)
    }

    fn query_count(&self) -> usize {
        self.queries
    }

    fn query_time(&self) -> Duration {
        self.solver.stats.time
    }

    fn cache_hits(&self) -> usize {
        self.hits
    }

    fn cache_misses(&self) -> usize {
        self.misses
    }

    fn shared_tier_locks(&self) -> usize {
        self.shared_locks
    }

    fn flush_memos(&mut self) {
        // Publish the write-behind transition batch at the job boundary, so workers
        // picking up the next method see everything this method derived — and count
        // the flush's locks against this oracle, keeping the per-method
        // `shared_tier_locks` sums reconcilable with the store-level counter.
        if let Some(local) = &self.local {
            self.shared_locks += local.transitions.flush(self.store.transition_tier());
        }
    }

    fn scoped_session<'a>(
        &'a mut self,
        vars: &[(Ident, Sort)],
        base: &[Formula],
        literals: &[Atom],
    ) -> Option<ScopedSession<'a>> {
        // Incremental checks bypass the per-query cache (they are cheaper than a cache
        // round-trip); the whole enumeration is instead memoised as a minterm set.
        Some(self.solver.scoped(vars, base, literals))
    }

    fn memoises(&self, _kind: MemoKind) -> bool {
        // Every kind has a tier stack; the store decides per kind what reaches disk.
        true
    }

    fn memo_lookup(&mut self, query: &MemoQuery) -> Option<MemoAnswer<'static>> {
        match memo_key(query) {
            CanonicalMemoKey::Minterms(alphabet) => {
                let key = format!("{}{}", self.key_prefix, alphabet.key);
                let found = self
                    .tier_lookup_minterms(&key)
                    .map(|stored| alphabet.from_canonical(&stored));
                self.pending_minterms = if found.is_none() {
                    Some((key, alphabet))
                } else {
                    None
                };
                found.map(|set| MemoAnswer::Minterms(Cow::Owned(set)))
            }
            CanonicalMemoKey::Inclusion(key) => {
                let key = format!("{}{key}", self.key_prefix);
                let found = self.tier_lookup_bool(RecordKind::Inclusion, &key);
                self.pending_inclusion = found.is_none().then_some(key);
                found.map(MemoAnswer::Verdict)
            }
            CanonicalMemoKey::Shape(key) => {
                // No axiom prefix: like a transition, a per-group product walk is a pure
                // syntactic function of the automaton pair and its minterm alphabet
                // (every transition is resolved propositionally from data in the key),
                // so α-equal shapes share one verdict across benchmarks with different
                // axiom sets. The checker refuses to store if a context-dependent SMT
                // fallback ever fired.
                let found = self.tier_lookup_bool(RecordKind::Shape, &key);
                self.pending_shape = found.is_none().then_some(key);
                found.map(MemoAnswer::Verdict)
            }
            CanonicalMemoKey::Subsumption(key) => {
                // No axiom prefix: like a shape, a simulation verdict is a semantic
                // fact about the residual pair and its minterm alphabet (the fixpoint
                // only chases rows resolved propositionally from data in the key), so
                // it is shared across benchmarks with different axiom sets. The checker
                // refuses to store if a context-dependent SMT fallback ever fired.
                let found = self.tier_lookup_bool(RecordKind::Subsumption, &key);
                self.pending_subsumption = found.is_none().then_some(key);
                found.map(MemoAnswer::Verdict)
            }
            CanonicalMemoKey::Transition(tk) => {
                // No axiom prefix: the successor is a pure syntactic function of the
                // state and the signed answers (which the key contains).
                let found = self
                    .tier_lookup_transition(&tk.key)
                    .map(|stored| tk.from_canonical(&stored));
                self.pending_transition = if found.is_none() {
                    let key = tk.key.clone();
                    Some((key, tk))
                } else {
                    None
                };
                found.map(|succ| MemoAnswer::Transition(Cow::Owned(succ)))
            }
        }
    }

    fn memo_store(&mut self, query: &MemoQuery, answer: &MemoAnswer) {
        // Each arm reuses the canonicalisation left behind by the paired lookup miss,
        // recomputing only if the pairing was broken by an unexpected call sequence.
        match (query.kind(), answer) {
            (MemoKind::Minterms, MemoAnswer::Minterms(set)) => {
                let (key, alphabet) = self.pending_minterms.take().unwrap_or_else(|| {
                    let CanonicalMemoKey::Minterms(alphabet) = memo_key(query) else {
                        unreachable!("kind() matches the query shape")
                    };
                    (format!("{}{}", self.key_prefix, alphabet.key), alphabet)
                });
                self.tier_store_minterms(key, alphabet.to_canonical(set));
            }
            (MemoKind::Inclusion, MemoAnswer::Verdict(verdict)) => {
                let key = self.pending_inclusion.take().unwrap_or_else(|| {
                    let CanonicalMemoKey::Inclusion(key) = memo_key(query) else {
                        unreachable!("kind() matches the query shape")
                    };
                    format!("{}{key}", self.key_prefix)
                });
                self.tier_store_bool(RecordKind::Inclusion, key, *verdict);
            }
            (MemoKind::Shape, MemoAnswer::Verdict(verdict)) => {
                let key = self.pending_shape.take().unwrap_or_else(|| {
                    let CanonicalMemoKey::Shape(key) = memo_key(query) else {
                        unreachable!("kind() matches the query shape")
                    };
                    key
                });
                self.tier_store_bool(RecordKind::Shape, key, *verdict);
            }
            (MemoKind::Subsumption, MemoAnswer::Verdict(verdict)) => {
                let key = self.pending_subsumption.take().unwrap_or_else(|| {
                    let CanonicalMemoKey::Subsumption(key) = memo_key(query) else {
                        unreachable!("kind() matches the query shape")
                    };
                    key
                });
                self.tier_store_bool(RecordKind::Subsumption, key, *verdict);
            }
            (MemoKind::Transition, MemoAnswer::Transition(succ)) => {
                let (key, tk) = self.pending_transition.take().unwrap_or_else(|| {
                    let CanonicalMemoKey::Transition(tk) = memo_key(query) else {
                        unreachable!("kind() matches the query shape")
                    };
                    (tk.key.clone(), tk)
                });
                self.tier_store_transition(key, tk.to_canonical(succ));
            }
            // A mismatched (kind, answer) pair is a caller bug; storing nothing is the
            // safe response (the memo is an accelerator, not a source of truth).
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::Term;

    fn env(names: &[&str]) -> Vec<(Ident, Sort)> {
        names.iter().map(|n| (n.to_string(), Sort::Int)).collect()
    }

    #[test]
    fn verdicts_match_the_plain_solver() {
        let cache = Arc::new(MemoStore::in_memory());
        let mut cached = CachingOracle::new(AxiomSet::new(), cache);
        let mut plain = Solver::default();
        let vars = env(&["x", "y", "z"]);
        let cases: Vec<(Vec<Formula>, Formula)> = vec![
            (
                vec![
                    Formula::lt(Term::var("x"), Term::var("y")),
                    Formula::lt(Term::var("y"), Term::var("z")),
                ],
                Formula::lt(Term::var("x"), Term::var("z")),
            ),
            (
                vec![Formula::lt(Term::var("x"), Term::var("y"))],
                Formula::lt(Term::var("y"), Term::var("x")),
            ),
            (
                vec![Formula::eq(Term::var("x"), Term::int(2))],
                Formula::lt(Term::var("x"), Term::int(3)),
            ),
        ];
        for (facts, goal) in &cases {
            assert_eq!(
                SolverOracle::entails(&mut cached, &vars, facts, goal),
                plain.entails(&vars, facts, goal),
                "entailment mismatch for {facts:?} ⊢ {goal}"
            );
            assert_eq!(
                SolverOracle::is_sat(&mut cached, &vars, facts),
                plain.is_satisfiable(&vars, &Formula::and(facts.clone())),
            );
        }
    }

    #[test]
    fn repeated_queries_hit_without_touching_the_solver() {
        let cache = Arc::new(MemoStore::in_memory());
        let mut oracle = CachingOracle::new(AxiomSet::new(), cache);
        let vars = env(&["x"]);
        let facts = vec![Formula::lt(Term::int(0), Term::var("x"))];
        let goal = Formula::le(Term::int(0), Term::var("x"));
        assert!(SolverOracle::entails(&mut oracle, &vars, &facts, &goal));
        let solver_queries = oracle.solver.stats.queries;
        assert!(SolverOracle::entails(&mut oracle, &vars, &facts, &goal));
        assert_eq!(
            oracle.solver.stats.queries, solver_queries,
            "second run must be a pure hit"
        );
        assert_eq!(oracle.cache_hits(), 1);
        assert_eq!(oracle.cache_misses(), 1);
        assert_eq!(oracle.query_count(), 2);
    }

    #[test]
    fn local_tier_absorbs_repeat_lookups_without_shared_locks() {
        let cache = Arc::new(MemoStore::in_memory());
        let local = Rc::new(LocalTier::default());
        let mut oracle =
            CachingOracle::new(AxiomSet::new(), cache.clone()).with_local_tier(local.clone());
        let vars = env(&["x"]);
        let facts = vec![Formula::lt(Term::int(0), Term::var("x"))];
        assert!(SolverOracle::is_sat(&mut oracle, &vars, &facts));
        let locks_after_miss = oracle.shared_tier_locks();
        assert_eq!(locks_after_miss, 2, "one shared lookup + one shared insert");
        for _ in 0..10 {
            assert!(SolverOracle::is_sat(&mut oracle, &vars, &facts));
        }
        assert_eq!(
            oracle.shared_tier_locks(),
            locks_after_miss,
            "repeat lookups must be answered by the local tier, lock-free"
        );
        assert_eq!(oracle.cache_hits(), 10);
        assert_eq!(
            cache.stats().hits,
            10,
            "local hits still count as memo hits in the store snapshot"
        );

        // A second oracle of the same worker shares the local tier: the promotion
        // made by the first oracle serves it without a shared lookup for the hit
        // (the shared tier was touched only while the entry was still missing).
        let mut second = CachingOracle::new(AxiomSet::new(), cache.clone()).with_local_tier(local);
        assert!(SolverOracle::is_sat(&mut second, &vars, &facts));
        assert_eq!(second.shared_tier_locks(), 0);

        // A shared-only oracle pays one shared lock per lookup.
        let mut shared_only = CachingOracle::new(AxiomSet::new(), cache);
        for _ in 0..5 {
            assert!(SolverOracle::is_sat(&mut shared_only, &vars, &facts));
        }
        assert_eq!(shared_only.shared_tier_locks(), 5);
    }

    #[test]
    fn alpha_equivalent_queries_share_entries() {
        let cache = Arc::new(MemoStore::in_memory());
        let mut oracle = CachingOracle::new(AxiomSet::new(), cache.clone());
        let f1 = vec![Formula::lt(Term::var("a"), Term::var("b"))];
        let f2 = vec![Formula::lt(Term::var("p"), Term::var("q"))];
        assert!(SolverOracle::is_sat(&mut oracle, &env(&["a", "b"]), &f1));
        assert!(SolverOracle::is_sat(&mut oracle, &env(&["p", "q"]), &f2));
        assert_eq!(oracle.cache_hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn constant_formulas_bypass_the_cache() {
        let cache = Arc::new(MemoStore::in_memory());
        let mut oracle = CachingOracle::new(AxiomSet::new(), cache.clone());
        assert!(SolverOracle::is_sat(&mut oracle, &[], &[]));
        assert!(!SolverOracle::is_sat(&mut oracle, &[], &[Formula::False]));
        assert!(cache.is_empty());
        assert_eq!(oracle.shared_tier_locks(), 0);
    }

    #[test]
    fn shape_memo_shares_product_walks_across_axiom_sets() {
        use hat_sfa::{InclusionChecker, OpSig, Sfa, VarCtx};
        let cache = Arc::new(MemoStore::in_memory());
        let ops = vec![OpSig::new(
            "insert",
            vec![("x".into(), Sort::Int)],
            Sort::Unit,
        )];
        let ins = Sfa::event(
            "insert",
            vec!["x".into()],
            "v",
            Formula::eq(Term::var("x"), Term::var("el")),
        );
        let never = Sfa::globally(Sfa::not(ins.clone()));
        let at_most_once = Sfa::globally(Sfa::implies(
            ins.clone(),
            Sfa::next(Sfa::not(Sfa::eventually(ins))),
        ));
        let ctx = VarCtx::new(vec![("el".into(), Sort::Int)], vec![]);

        let mut first = CachingOracle::new(AxiomSet::new(), cache.clone());
        let mut checker = InclusionChecker::new(ops.clone());
        assert!(checker
            .check(&ctx, &never, &at_most_once, &mut first)
            .unwrap());
        assert_eq!(checker.stats.shape_memo_hits, 0, "the first walk is cold");
        assert!(checker.stats.fa_inclusions > 0);

        // Under a *different* axiom set the axiom-prefixed inclusion memo cannot answer,
        // but a per-group product walk is a pure function of its shape — the `D` entries
        // are shared and every walk is skipped.
        let mut other_axioms = AxiomSet::new();
        other_axioms.declare_pred("unrelated", vec![Sort::Int]);
        let mut second = CachingOracle::new(other_axioms, cache);
        let mut fresh_checker = InclusionChecker::new(ops);
        assert!(fresh_checker
            .check(&ctx, &never, &at_most_once, &mut second)
            .unwrap());
        assert_eq!(
            fresh_checker.stats.inclusion_memo_hits, 0,
            "different axiom sets must not share whole-check verdicts"
        );
        assert_eq!(
            fresh_checker.stats.shape_memo_hits, checker.stats.fa_inclusions,
            "every per-group walk must be answered from the shape memo"
        );
        assert_eq!(
            fresh_checker.stats.fa_inclusions, 0,
            "no walk may run when its shape is memoised"
        );
    }

    #[test]
    fn oracles_with_different_axiom_sets_do_not_share_entries() {
        // Regression test: verdicts depend on the axiom set, so a cache shared by
        // benchmarks with different axioms must keep their entries apart.
        use hat_logic::axioms::Axiom;
        let sort = Sort::named("Bytes.t");
        let vars = vec![("v".to_string(), sort.clone())];
        let query = vec![
            Formula::pred("isDir", vec![Term::var("v")]),
            Formula::pred("isDel", vec![Term::var("v")]),
        ];
        let mut strict = AxiomSet::new();
        strict.declare_pred("isDir", vec![sort.clone()]);
        strict.declare_pred("isDel", vec![sort.clone()]);
        strict.add_axiom(Axiom::new(
            "dir-not-del",
            vec![("b".into(), sort)],
            Formula::implies(
                Formula::pred("isDir", vec![Term::var("b")]),
                Formula::not(Formula::pred("isDel", vec![Term::var("b")])),
            ),
        ));
        let cache = Arc::new(MemoStore::in_memory());
        // Under no axioms the conjunction is satisfiable...
        let mut lax_oracle = CachingOracle::new(AxiomSet::new(), cache.clone());
        assert!(SolverOracle::is_sat(&mut lax_oracle, &vars, &query));
        // ...under the disjointness axiom it is not, even with the lax verdict cached.
        let mut strict_oracle = CachingOracle::new(strict, cache.clone());
        assert!(!SolverOracle::is_sat(&mut strict_oracle, &vars, &query));
        assert_eq!(
            strict_oracle.cache_hits(),
            0,
            "must not reuse the lax entry"
        );
        assert_eq!(cache.len(), 2);
    }
}
