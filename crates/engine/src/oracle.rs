//! A caching [`SolverOracle`]: the bridge between the checker layers and the shared
//! [`QueryCache`].
//!
//! Every oracle query — context-consistency checks and subtyping entailments from
//! `hat-core`, minterm-satisfiability and transition queries from `hat-sfa` — is reduced
//! to one satisfiability problem, canonicalised ([`crate::canon`]), and looked up in the
//! cache. On a miss the *canonical* form is handed to the worker's own [`Solver`], so the
//! verdict depends only on the cache key; this is what makes cached parallel runs produce
//! exactly the verdicts of a sequential run.

use crate::cache::QueryCache;
use crate::canon::{
    alphabet_key, axioms_fingerprint, canonicalize, inclusion_check_key, shape_key, transition_key,
};
use hat_logic::{Atom, AxiomSet, Formula, Ident, ScopedSession, Solver, Sort};
use hat_sfa::{LiteralPool, Minterm, MintermSet, OpSig, Sfa, SolverOracle, SymbolicEvent, VarCtx};
use std::sync::Arc;
use std::time::Duration;

/// A solver wrapped with the shared query cache. Each worker owns one (the underlying
/// solver is not thread-safe); the cache is shared through an [`Arc`].
pub struct CachingOracle {
    solver: Solver,
    cache: Arc<QueryCache>,
    /// Fingerprint of the solver's axiom set, prefixed onto every cache key: a verdict
    /// depends on the axioms instantiated into the query, and the cache is shared across
    /// oracles with *different* axiom sets (one per benchmark).
    key_prefix: String,
    /// The alphabet key computed by the last `minterm_lookup` miss. `build_minterms_with`
    /// always pairs a miss with a `minterm_store` for the same transformation, so the
    /// store reuses this instead of re-canonicalising the whole alphabet.
    pending_alphabet: Option<(String, crate::canon::AlphabetKey)>,
    /// The transition key computed by the last `transition_lookup` miss. The DFA
    /// construction always pairs a miss with a `transition_store` for the same
    /// transition, so the store reuses this instead of re-canonicalising.
    pending_transition: Option<(String, crate::canon::TransitionKey)>,
    queries: usize,
    hits: usize,
    misses: usize,
}

impl CachingOracle {
    /// Creates an oracle over the given background axioms and shared cache.
    pub fn new(axioms: AxiomSet, cache: Arc<QueryCache>) -> Self {
        let key_prefix = Self::key_prefix_for(&axioms);
        Self::with_key_prefix(axioms, cache, key_prefix)
    }

    /// The cache-key prefix [`CachingOracle::new`] would derive for an axiom set. Callers
    /// spawning many oracles over the same axioms (one per method job) can compute it
    /// once and pass it to [`CachingOracle::with_key_prefix`].
    pub fn key_prefix_for(axioms: &AxiomSet) -> String {
        format!("ax{}|", axioms_fingerprint(axioms))
    }

    /// Creates an oracle with a precomputed key prefix. The prefix must be
    /// [`CachingOracle::key_prefix_for`] of the same axiom set, or cache entries would be
    /// shared across incompatible axiom sets.
    pub fn with_key_prefix(axioms: AxiomSet, cache: Arc<QueryCache>, key_prefix: String) -> Self {
        CachingOracle {
            solver: Solver::with_axioms(axioms),
            cache,
            key_prefix,
            pending_alphabet: None,
            pending_transition: None,
            queries: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The shared cache this oracle reads and writes.
    pub fn cache(&self) -> &Arc<QueryCache> {
        &self.cache
    }

    /// Answers a satisfiability query through the cache, solving the canonical form on a
    /// miss.
    fn cached_sat(&mut self, vars: &[(Ident, Sort)], f: &Formula) -> bool {
        self.queries += 1;
        // Constant formulas need no solver and would only pollute the cache.
        match f {
            Formula::True => return true,
            Formula::False => return false,
            _ => {}
        }
        let canonical = canonicalize(vars, f);
        let key = format!("{}{}", self.key_prefix, canonical.key);
        if let Some(verdict) = self.cache.lookup(&key) {
            self.hits += 1;
            return verdict;
        }
        self.misses += 1;
        let verdict = self
            .solver
            .is_satisfiable(&canonical.vars, &canonical.formula);
        self.cache.insert(key, verdict);
        verdict
    }
}

impl SolverOracle for CachingOracle {
    fn is_sat(&mut self, vars: &[(Ident, Sort)], facts: &[Formula]) -> bool {
        let f = Formula::and(facts.to_vec());
        self.cached_sat(vars, &f)
    }

    fn entails(&mut self, vars: &[(Ident, Sort)], facts: &[Formula], goal: &Formula) -> bool {
        // facts ⊨ goal iff facts ∧ ¬goal is unsatisfiable — the same reduction the plain
        // solver applies, phrased so entailments and satisfiability share cache entries.
        let f = Formula::and(
            facts
                .iter()
                .cloned()
                .chain(std::iter::once(Formula::not(goal.clone())))
                .collect(),
        );
        !self.cached_sat(vars, &f)
    }

    fn query_count(&self) -> usize {
        self.queries
    }

    fn query_time(&self) -> Duration {
        self.solver.stats.time
    }

    fn cache_hits(&self) -> usize {
        self.hits
    }

    fn cache_misses(&self) -> usize {
        self.misses
    }

    fn scoped_session<'a>(
        &'a mut self,
        vars: &[(Ident, Sort)],
        base: &[Formula],
        literals: &[Atom],
    ) -> Option<ScopedSession<'a>> {
        // Incremental checks bypass the per-query cache (they are cheaper than a cache
        // round-trip); the whole enumeration is instead memoised as a minterm set.
        Some(self.solver.scoped(vars, base, literals))
    }

    fn minterm_lookup(
        &mut self,
        ctx: &VarCtx,
        ops: &[OpSig],
        pool: &LiteralPool,
    ) -> Option<MintermSet> {
        let alphabet = alphabet_key(ctx, ops, pool);
        let key = format!("{}{}", self.key_prefix, alphabet.key);
        let found = self
            .cache
            .lookup_minterms(&key)
            .map(|stored| alphabet.from_canonical(&stored));
        self.pending_alphabet = if found.is_none() {
            Some((key, alphabet))
        } else {
            None
        };
        found
    }

    fn minterm_store(&mut self, ctx: &VarCtx, ops: &[OpSig], pool: &LiteralPool, set: &MintermSet) {
        // The paired lookup (a miss) left its key behind; recompute only if the pairing
        // was broken by an unexpected call sequence.
        let (key, alphabet) = self.pending_alphabet.take().unwrap_or_else(|| {
            let alphabet = alphabet_key(ctx, ops, pool);
            (format!("{}{}", self.key_prefix, alphabet.key), alphabet)
        });
        self.cache.insert_minterms(key, alphabet.to_canonical(set));
    }

    fn inclusion_key(
        &mut self,
        ctx: &VarCtx,
        ops: &[OpSig],
        max_states: usize,
        a: &Sfa,
        b: &Sfa,
    ) -> Option<String> {
        Some(format!(
            "{}{}",
            self.key_prefix,
            inclusion_check_key(ctx, ops, max_states, a, b)
        ))
    }

    fn inclusion_lookup(&mut self, key: &str) -> Option<bool> {
        self.cache.lookup_inclusion(key)
    }

    fn inclusion_store(&mut self, key: &str, verdict: bool) {
        self.cache.insert_inclusion(key.to_string(), verdict);
    }

    fn memoises_transitions(&self) -> bool {
        true
    }

    fn shape_key(
        &mut self,
        a: &Sfa,
        b: &Sfa,
        alphabet: &[Minterm],
        max_states: usize,
    ) -> Option<String> {
        // No axiom prefix: like a transition, a per-group product walk is a pure
        // syntactic function of the automaton pair and its minterm alphabet (every
        // transition is resolved propositionally from data in the key), so α-equal
        // shapes share one verdict across benchmarks with different axiom sets. The
        // checker refuses to store if a context-dependent SMT fallback ever fired.
        Some(shape_key(a, b, alphabet, max_states))
    }

    fn shape_lookup(&mut self, key: &str) -> Option<bool> {
        self.cache.lookup_shape(key)
    }

    fn shape_store(&mut self, key: &str, verdict: bool) {
        self.cache.insert_shape(key.to_string(), verdict);
    }

    fn transition_lookup(
        &mut self,
        state: &Sfa,
        event_answers: &[(&SymbolicEvent, bool)],
        guard_answers: &[(&Formula, bool)],
    ) -> Option<Sfa> {
        // No axiom prefix: the successor is a pure syntactic function of the state and
        // the signed answers (which the key contains), so structurally equal transitions
        // are shared across benchmarks with different axiom sets.
        let tk = transition_key(state, event_answers, guard_answers);
        let found = self
            .cache
            .lookup_transition(&tk.key)
            .map(|stored| tk.from_canonical(&stored));
        self.pending_transition = if found.is_none() {
            let key = tk.key.clone();
            Some((key, tk))
        } else {
            None
        };
        found
    }

    fn transition_store(
        &mut self,
        state: &Sfa,
        event_answers: &[(&SymbolicEvent, bool)],
        guard_answers: &[(&Formula, bool)],
        succ: &Sfa,
    ) {
        // The paired lookup (a miss) left its key behind; recompute only if the pairing
        // was broken by an unexpected call sequence.
        let (key, tk) = self.pending_transition.take().unwrap_or_else(|| {
            let tk = transition_key(state, event_answers, guard_answers);
            (tk.key.clone(), tk)
        });
        self.cache.insert_transition(key, tk.to_canonical(succ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::Term;

    fn env(names: &[&str]) -> Vec<(Ident, Sort)> {
        names.iter().map(|n| (n.to_string(), Sort::Int)).collect()
    }

    #[test]
    fn verdicts_match_the_plain_solver() {
        let cache = Arc::new(QueryCache::in_memory());
        let mut cached = CachingOracle::new(AxiomSet::new(), cache);
        let mut plain = Solver::default();
        let vars = env(&["x", "y", "z"]);
        let cases: Vec<(Vec<Formula>, Formula)> = vec![
            (
                vec![
                    Formula::lt(Term::var("x"), Term::var("y")),
                    Formula::lt(Term::var("y"), Term::var("z")),
                ],
                Formula::lt(Term::var("x"), Term::var("z")),
            ),
            (
                vec![Formula::lt(Term::var("x"), Term::var("y"))],
                Formula::lt(Term::var("y"), Term::var("x")),
            ),
            (
                vec![Formula::eq(Term::var("x"), Term::int(2))],
                Formula::lt(Term::var("x"), Term::int(3)),
            ),
        ];
        for (facts, goal) in &cases {
            assert_eq!(
                SolverOracle::entails(&mut cached, &vars, facts, goal),
                plain.entails(&vars, facts, goal),
                "entailment mismatch for {facts:?} ⊢ {goal}"
            );
            assert_eq!(
                SolverOracle::is_sat(&mut cached, &vars, facts),
                plain.is_satisfiable(&vars, &Formula::and(facts.clone())),
            );
        }
    }

    #[test]
    fn repeated_queries_hit_without_touching_the_solver() {
        let cache = Arc::new(QueryCache::in_memory());
        let mut oracle = CachingOracle::new(AxiomSet::new(), cache);
        let vars = env(&["x"]);
        let facts = vec![Formula::lt(Term::int(0), Term::var("x"))];
        let goal = Formula::le(Term::int(0), Term::var("x"));
        assert!(SolverOracle::entails(&mut oracle, &vars, &facts, &goal));
        let solver_queries = oracle.solver.stats.queries;
        assert!(SolverOracle::entails(&mut oracle, &vars, &facts, &goal));
        assert_eq!(
            oracle.solver.stats.queries, solver_queries,
            "second run must be a pure hit"
        );
        assert_eq!(oracle.cache_hits(), 1);
        assert_eq!(oracle.cache_misses(), 1);
        assert_eq!(oracle.query_count(), 2);
    }

    #[test]
    fn alpha_equivalent_queries_share_entries() {
        let cache = Arc::new(QueryCache::in_memory());
        let mut oracle = CachingOracle::new(AxiomSet::new(), cache.clone());
        let f1 = vec![Formula::lt(Term::var("a"), Term::var("b"))];
        let f2 = vec![Formula::lt(Term::var("p"), Term::var("q"))];
        assert!(SolverOracle::is_sat(&mut oracle, &env(&["a", "b"]), &f1));
        assert!(SolverOracle::is_sat(&mut oracle, &env(&["p", "q"]), &f2));
        assert_eq!(oracle.cache_hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn constant_formulas_bypass_the_cache() {
        let cache = Arc::new(QueryCache::in_memory());
        let mut oracle = CachingOracle::new(AxiomSet::new(), cache.clone());
        assert!(SolverOracle::is_sat(&mut oracle, &[], &[]));
        assert!(!SolverOracle::is_sat(&mut oracle, &[], &[Formula::False]));
        assert!(cache.is_empty());
    }

    #[test]
    fn shape_memo_shares_product_walks_across_axiom_sets() {
        use hat_sfa::{InclusionChecker, OpSig, Sfa, VarCtx};
        let cache = Arc::new(QueryCache::in_memory());
        let ops = vec![OpSig::new(
            "insert",
            vec![("x".into(), Sort::Int)],
            Sort::Unit,
        )];
        let ins = Sfa::event(
            "insert",
            vec!["x".into()],
            "v",
            Formula::eq(Term::var("x"), Term::var("el")),
        );
        let never = Sfa::globally(Sfa::not(ins.clone()));
        let at_most_once = Sfa::globally(Sfa::implies(
            ins.clone(),
            Sfa::next(Sfa::not(Sfa::eventually(ins))),
        ));
        let ctx = VarCtx::new(vec![("el".into(), Sort::Int)], vec![]);

        let mut first = CachingOracle::new(AxiomSet::new(), cache.clone());
        let mut checker = InclusionChecker::new(ops.clone());
        assert!(checker
            .check(&ctx, &never, &at_most_once, &mut first)
            .unwrap());
        assert_eq!(checker.stats.shape_memo_hits, 0, "the first walk is cold");
        assert!(checker.stats.fa_inclusions > 0);

        // Under a *different* axiom set the axiom-prefixed inclusion memo cannot answer,
        // but a per-group product walk is a pure function of its shape — the `D` entries
        // are shared and every walk is skipped.
        let mut other_axioms = AxiomSet::new();
        other_axioms.declare_pred("unrelated", vec![Sort::Int]);
        let mut second = CachingOracle::new(other_axioms, cache);
        let mut fresh_checker = InclusionChecker::new(ops);
        assert!(fresh_checker
            .check(&ctx, &never, &at_most_once, &mut second)
            .unwrap());
        assert_eq!(
            fresh_checker.stats.inclusion_memo_hits, 0,
            "different axiom sets must not share whole-check verdicts"
        );
        assert_eq!(
            fresh_checker.stats.shape_memo_hits, checker.stats.fa_inclusions,
            "every per-group walk must be answered from the shape memo"
        );
        assert_eq!(
            fresh_checker.stats.fa_inclusions, 0,
            "no walk may run when its shape is memoised"
        );
    }

    #[test]
    fn oracles_with_different_axiom_sets_do_not_share_entries() {
        // Regression test: verdicts depend on the axiom set, so a cache shared by
        // benchmarks with different axioms must keep their entries apart.
        use hat_logic::axioms::Axiom;
        let sort = Sort::named("Bytes.t");
        let vars = vec![("v".to_string(), sort.clone())];
        let query = vec![
            Formula::pred("isDir", vec![Term::var("v")]),
            Formula::pred("isDel", vec![Term::var("v")]),
        ];
        let mut strict = AxiomSet::new();
        strict.declare_pred("isDir", vec![sort.clone()]);
        strict.declare_pred("isDel", vec![sort.clone()]);
        strict.add_axiom(Axiom::new(
            "dir-not-del",
            vec![("b".into(), sort)],
            Formula::implies(
                Formula::pred("isDir", vec![Term::var("b")]),
                Formula::not(Formula::pred("isDel", vec![Term::var("b")])),
            ),
        ));
        let cache = Arc::new(QueryCache::in_memory());
        // Under no axioms the conjunction is satisfiable...
        let mut lax_oracle = CachingOracle::new(AxiomSet::new(), cache.clone());
        assert!(SolverOracle::is_sat(&mut lax_oracle, &vars, &query));
        // ...under the disjointness axiom it is not, even with the lax verdict cached.
        let mut strict_oracle = CachingOracle::new(strict, cache.clone());
        assert!(!SolverOracle::is_sat(&mut strict_oracle, &vars, &query));
        assert_eq!(
            strict_oracle.cache_hits(),
            0,
            "must not reuse the lax entry"
        );
        assert_eq!(cache.len(), 2);
    }
}
