//! The LSM-structured disk backend of the memo store (`hat-engine-cache v6`).
//!
//! The v5 backend was a single append-only log: every record kind shared one file,
//! compaction was a stop-the-world rewrite in the serving process, and the hot
//! transition memo was never persisted because appending large payloads from workers
//! was too expensive. v6 restructures the persistent tier as a small log-structured
//! merge store:
//!
//! * **Memtable.** Fresh records are appended to an in-memory memtable (a mutex-guarded
//!   vector of pre-serialised record lines — the same worker-side cost as the v5
//!   buffered appender). When the memtable passes [`LsmConfig::memtable_bytes`] it is
//!   *rotated*: the frozen contents are handed to the background thread and workers
//!   continue into a fresh memtable without waiting on any I/O.
//! * **Segments.** The background thread flushes a frozen memtable as sorted,
//!   fingerprint-partitioned, per-kind *segment files* under `<path>.d/`: records are
//!   grouped by `(kind, partition)` where `partition = fnv1a(key) % 4`, deduplicated,
//!   sorted by key and written to `<tag>-p<partition>-L<level>-<seq>.seg` via a
//!   temporary file, `sync_all` and an atomic rename. Because the fingerprint is a pure
//!   function of the canonical key, a key lives in exactly one partition family and
//!   compaction never needs to look outside a family.
//! * **Manifest.** `<path>` itself becomes the *manifest*: the `hat-engine-cache v6`
//!   header, a sequence cursor and one `seg` line per live segment. Every flush or
//!   compaction commits by atomically rewriting the manifest; a segment file not named
//!   by the manifest is an orphan from an interrupted flush and is garbage-collected at
//!   the next locked open. Crash recovery therefore never sees a half-trusted state:
//!   either the manifest names the new segment (which was synced and renamed first) or
//!   it does not (and the orphan is invisible).
//! * **Background compaction.** After each flush the background thread merges any
//!   `(kind, partition)` family holding at least [`LsmConfig::compact_fanin`] segments
//!   into one segment at the next level, newest record wins, dead records (duplicates,
//!   unparseable lines, torn segments) dropped. Compaction touches only segment files
//!   and the manifest — never the shared or disk tiers — so scheduler workers observe
//!   zero tier-lock acquisitions from it (asserted in `engine/tests/tiers.rs`).
//!
//! Commands to the background thread (`Flush`, `Compact`, `Drain`) are processed in
//! order, so a `Drain` reply means every previously rotated memtable has reached disk —
//! this is what the daemon's graceful shutdown waits on before releasing the
//! single-writer lock.

use crate::cache::RecordKind;
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;

/// The v6 manifest header (the first line of the cache path itself).
pub const MANIFEST_HEADER_V6: &str = "hat-engine-cache v6";
/// The header prefix of every segment file: `hat-engine-segment v6\t<tag>\t<records>`.
pub const SEGMENT_HEADER_V6: &str = "hat-engine-segment v6";
/// Fingerprint partitions per record kind. Coarse on purpose: the store holds tens of
/// thousands of records, and each partition family compacts independently.
pub const PARTITIONS: u8 = 4;

const DEFAULT_MEMTABLE_BYTES: usize = 256 * 1024;
const DEFAULT_COMPACT_FANIN: usize = 4;

/// Tuning of the LSM backend. [`LsmConfig::from_env`] honours `HAT_MEMTABLE_BYTES` and
/// `HAT_COMPACT_FANIN`, which CI uses to force rotations and compactions on small
/// workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmConfig {
    /// Rotate the memtable into a frozen flush once it holds this many bytes.
    pub memtable_bytes: usize,
    /// Merge a `(kind, partition)` family once it holds this many segments (≥ 2).
    pub compact_fanin: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_bytes: DEFAULT_MEMTABLE_BYTES,
            compact_fanin: DEFAULT_COMPACT_FANIN,
        }
    }
}

impl LsmConfig {
    /// The default configuration with environment overrides applied.
    pub fn from_env() -> Self {
        let defaults = LsmConfig::default();
        LsmConfig {
            memtable_bytes: std::env::var("HAT_MEMTABLE_BYTES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(defaults.memtable_bytes),
            compact_fanin: std::env::var("HAT_COMPACT_FANIN")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 2)
                .unwrap_or(defaults.compact_fanin),
        }
    }
}

/// 64-bit FNV-1a. Hand-rolled so the segment partition of a key is stable across Rust
/// releases (`DefaultHasher` makes no such promise, and a partition flip would strand
/// records in segments compaction never merges them against).
pub fn fingerprint(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The segment partition of a canonical key.
pub fn partition_of(key: &str) -> u8 {
    (fingerprint(key) % u64::from(PARTITIONS)) as u8
}

/// One live segment as named by the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Record kind stored in the segment (one kind per segment).
    pub kind: RecordKind,
    /// Fingerprint partition ([`partition_of`]) of every key in the segment.
    pub partition: u8,
    /// Compaction level: flushes write level 0, each merge writes max(level)+1.
    pub level: u32,
    /// Globally unique, monotone sequence number — newer segments shadow older ones.
    pub seq: u64,
    /// Record lines in the segment (also in the segment's own header, cross-checked).
    pub records: usize,
    /// Segment file size in bytes.
    pub bytes: u64,
}

impl SegmentMeta {
    /// The segment's file name under the segment directory.
    pub fn file_name(&self) -> String {
        format!(
            "{}-p{}-L{}-{:08}.seg",
            self.kind.tag(),
            self.partition,
            self.level,
            self.seq
        )
    }
}

/// The manifest: the live segment set and the next segment sequence number.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ManifestState {
    /// Sequence number the next flushed or merged segment will take.
    pub next_seq: u64,
    /// Live segments, in manifest order.
    pub segments: Vec<SegmentMeta>,
}

impl ManifestState {
    /// Total record lines across live segments (including cross-segment duplicates).
    pub fn records(&self) -> usize {
        self.segments.iter().map(|s| s.records).sum()
    }

    /// Total segment bytes across live segments.
    pub fn segment_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// Live segment count for one record kind.
    pub fn segments_of(&self, kind: RecordKind) -> usize {
        self.segments.iter().filter(|s| s.kind == kind).count()
    }
}

fn kind_of_tag(tag: &str) -> Option<RecordKind> {
    match tag {
        "S" => Some(RecordKind::Solver),
        "I" => Some(RecordKind::Inclusion),
        "D" => Some(RecordKind::Shape),
        "M" => Some(RecordKind::Minterms),
        "T" => Some(RecordKind::Transition),
        "U" => Some(RecordKind::Subsumption),
        _ => None,
    }
}

/// Parses the manifest at `path`. Returns `Ok(None)` when the file's header is not the
/// v6 manifest header (a v1–v5 log, a foreign version, or not a cache file at all —
/// the caller dispatches). Malformed body lines are skipped and counted, never trusted:
/// a segment the manifest fails to name cleanly is simply invisible (cold), which can
/// lose cache entries but never corrupt verdicts.
pub fn read_manifest(path: &Path) -> std::io::Result<Option<(ManifestState, usize)>> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    match lines.next() {
        Some(Ok(header)) if header == MANIFEST_HEADER_V6 => {}
        _ => return Ok(None),
    }
    let mut state = ManifestState::default();
    let mut malformed = 0usize;
    for line in lines {
        let Ok(line) = line else {
            malformed += 1;
            continue;
        };
        let mut fields = line.split('\t');
        match fields.next() {
            Some("seq") => match fields.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(seq) if fields.next().is_none() => {
                    state.next_seq = state.next_seq.max(seq);
                }
                _ => malformed += 1,
            },
            Some("seg") => {
                let parsed = (|| {
                    let kind = kind_of_tag(fields.next()?)?;
                    let partition: u8 = fields.next()?.parse().ok()?;
                    let level: u32 = fields.next()?.parse().ok()?;
                    let seq: u64 = fields.next()?.parse().ok()?;
                    let records: usize = fields.next()?.parse().ok()?;
                    let bytes: u64 = fields.next()?.parse().ok()?;
                    if fields.next().is_some() || partition >= PARTITIONS {
                        return None;
                    }
                    Some(SegmentMeta {
                        kind,
                        partition,
                        level,
                        seq,
                        records,
                        bytes,
                    })
                })();
                match parsed {
                    Some(meta) => state.segments.push(meta),
                    None => malformed += 1,
                }
            }
            _ => malformed += 1,
        }
    }
    // A crash can only lose the `seq` line to truncation along with `seg` lines after
    // it; recover monotonicity from the segments themselves.
    if let Some(max_seq) = state.segments.iter().map(|s| s.seq).max() {
        state.next_seq = state.next_seq.max(max_seq + 1);
    }
    Ok(Some((state, malformed)))
}

/// Atomically rewrites the manifest at `path`: temporary file, `sync_all`, rename.
pub fn write_manifest(path: &Path, state: &ManifestState) -> std::io::Result<()> {
    let mut tmp = path.to_path_buf();
    tmp.set_extension("compacting");
    {
        let mut out = BufWriter::new(File::create(&tmp)?);
        writeln!(out, "{MANIFEST_HEADER_V6}")?;
        writeln!(out, "seq\t{}", state.next_seq)?;
        for s in &state.segments {
            writeln!(
                out,
                "seg\t{}\t{}\t{}\t{}\t{}\t{}",
                s.kind.tag(),
                s.partition,
                s.level,
                s.seq,
                s.records,
                s.bytes
            )?;
        }
        out.flush()?;
        out.get_ref().sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// The segment directory of a cache at `log_path` (`<path>.d`, a sibling directory).
pub fn segment_dir_for(log_path: &Path) -> PathBuf {
    let mut name = log_path.file_name().unwrap_or_default().to_os_string();
    name.push(".d");
    log_path.with_file_name(name)
}

/// What reading one segment file found.
#[derive(Debug, Default)]
pub struct SegmentScan {
    /// The record lines, in file order. Empty when the segment is torn.
    pub lines: Vec<String>,
    /// Set when the file is missing, its header is wrong, or its line count does not
    /// match the header — the whole segment degrades to cold rather than being half
    /// trusted.
    pub torn: bool,
}

/// Reads a segment file. Never errors: any malformation marks the scan torn.
pub fn read_segment(dir: &Path, meta: &SegmentMeta) -> SegmentScan {
    let mut scan = SegmentScan::default();
    let Ok(file) = File::open(dir.join(meta.file_name())) else {
        scan.torn = true;
        return scan;
    };
    let mut lines = BufReader::new(file).lines();
    let header_ok = match lines.next() {
        Some(Ok(header)) => {
            let mut fields = header.split('\t');
            fields.next() == Some(SEGMENT_HEADER_V6)
                && fields.next().and_then(kind_of_tag) == Some(meta.kind)
                && fields.next().and_then(|n| n.parse::<usize>().ok()) == Some(meta.records)
                && fields.next().is_none()
        }
        _ => false,
    };
    if !header_ok {
        scan.torn = true;
        return scan;
    }
    for line in lines {
        match line {
            Ok(line) => scan.lines.push(line),
            Err(_) => {
                scan.torn = true;
                break;
            }
        }
    }
    if scan.lines.len() != meta.records {
        scan.torn = true;
    }
    if scan.torn {
        scan.lines.clear();
    }
    scan
}

/// Writes one segment file (already grouped, deduplicated and sorted) via a temporary
/// file, `sync_all` and an atomic rename, and returns its manifest entry. Crate-visible
/// so the store's v1–v5 migration can emit the initial level-0 segments directly.
pub(crate) fn write_segment(
    dir: &Path,
    kind: RecordKind,
    partition: u8,
    level: u32,
    seq: u64,
    lines: &[(String, String)],
) -> std::io::Result<SegmentMeta> {
    let mut meta = SegmentMeta {
        kind,
        partition,
        level,
        seq,
        records: lines.len(),
        bytes: 0,
    };
    let final_path = dir.join(meta.file_name());
    let tmp_path = dir.join(format!("{}.tmp", meta.file_name()));
    {
        let mut out = BufWriter::new(File::create(&tmp_path)?);
        writeln!(out, "{SEGMENT_HEADER_V6}\t{}\t{}", kind.tag(), lines.len())?;
        for (_, line) in lines {
            writeln!(out, "{line}")?;
        }
        out.flush()?;
        out.get_ref().sync_all()?;
    }
    meta.bytes = fs::metadata(&tmp_path)?.len();
    fs::rename(&tmp_path, &final_path)?;
    Ok(meta)
}

/// Deletes segment-directory files the manifest does not name: leftovers of a flush or
/// compaction interrupted between writing a file and committing the manifest (and any
/// abandoned `.tmp`). Only called under the single-writer lock — a read-only inspector
/// must never delete another writer's in-flight files. Segment files whose tag this
/// binary does not know are spared: they are a *newer* binary's record kind riding the
/// same v6 layout (as `U` did when it extended the five original kinds), not orphans —
/// an older writer must degrade them to stale, never destroy them.
pub fn gc_orphans(dir: &Path, state: &ManifestState) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let live: Vec<String> = state.segments.iter().map(|s| s.file_name()).collect();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        if future_kind_segment(name) {
            continue;
        }
        if !live.iter().any(|l| l == name) {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// Whether a directory entry looks like a well-formed segment file of a record kind
/// this binary does not know (`<tag>-p<partition>-L<level>-<seq>.seg` with an
/// unrecognised tag).
fn future_kind_segment(name: &str) -> bool {
    let Some(stem) = name.strip_suffix(".seg") else {
        return false;
    };
    let mut parts = stem.split('-');
    let unknown_tag = parts.next().is_some_and(|tag| kind_of_tag(tag).is_none());
    unknown_tag
        && parts.next().is_some_and(|p| p.starts_with('p'))
        && parts.next().is_some_and(|l| l.starts_with('L'))
        && parts.next().is_some_and(|s| !s.is_empty())
        && parts.next().is_none()
}

/// One memtable record: the kind, the canonical key (for sorting and deduplication)
/// and the fully serialised record line it will occupy in a segment.
#[derive(Debug)]
pub struct MemRecord {
    kind: RecordKind,
    key: String,
    line: String,
}

#[derive(Debug, Default)]
struct MemTable {
    records: Vec<MemRecord>,
    bytes: usize,
}

/// Point-in-time counters of the LSM backend (for `marple cache stats`, daemon status
/// and the `lsm` bench section).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsmStatsSnapshot {
    /// Memtable rotations (frozen memtables handed to the background thread).
    pub rotations: usize,
    /// Frozen memtables flushed to segment files.
    pub flushes: usize,
    /// Segment files written by flushes.
    pub segments_written: usize,
    /// Input segments consumed by merges.
    pub segments_merged: usize,
    /// Merge passes performed.
    pub compactions: usize,
    /// Bytes written by flushes (user data reaching disk the first time).
    pub bytes_flushed: usize,
    /// Bytes written by compaction merges (rewritten data).
    pub bytes_compacted: usize,
}

impl LsmStatsSnapshot {
    /// Total bytes written over bytes of user data flushed, ≥ 1.0 once anything was
    /// flushed — the classic LSM write-amplification figure.
    pub fn write_amplification(&self) -> f64 {
        if self.bytes_flushed == 0 {
            1.0
        } else {
            (self.bytes_flushed + self.bytes_compacted) as f64 / self.bytes_flushed as f64
        }
    }
}

#[derive(Debug, Default)]
struct LsmStats {
    rotations: AtomicUsize,
    flushes: AtomicUsize,
    segments_written: AtomicUsize,
    segments_merged: AtomicUsize,
    compactions: AtomicUsize,
    bytes_flushed: AtomicUsize,
    bytes_compacted: AtomicUsize,
}

/// The outcome of one explicit compaction pass, totalled over the whole store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactOutcome {
    /// Record lines across live segments before the pass.
    pub records_before: usize,
    /// Record lines after the pass.
    pub records_after: usize,
    /// Segment bytes before the pass.
    pub bytes_before: u64,
    /// Segment bytes after the pass.
    pub bytes_after: u64,
    /// Input segments consumed by this pass.
    pub segments_merged: usize,
}

enum BgCmd {
    Flush(Vec<MemRecord>),
    Compact { reply: Sender<CompactOutcome> },
    Drain(Sender<()>),
}

/// The live write side of the LSM backend: the memtable and the handle to the
/// background flush-and-compaction thread. Constructed only by a store that holds the
/// single-writer lock.
pub struct Lsm {
    config: LsmConfig,
    mem: Mutex<MemTable>,
    state: Arc<Mutex<ManifestState>>,
    stats: Arc<LsmStats>,
    tx: Option<Sender<BgCmd>>,
    handle: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Lsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lsm")
            .field("config", &self.config)
            .field("state", &self.state_snapshot())
            .field("stats", &self.stats_snapshot())
            .finish()
    }
}

impl Lsm {
    /// Starts the backend over an already-read manifest: creates the segment directory,
    /// garbage-collects orphans and spawns the background thread. The caller holds the
    /// single-writer lock and has already migrated or replayed the on-disk state.
    pub fn start(
        manifest_path: &Path,
        state: ManifestState,
        config: LsmConfig,
    ) -> std::io::Result<Lsm> {
        let dir = segment_dir_for(manifest_path);
        fs::create_dir_all(&dir)?;
        gc_orphans(&dir, &state);
        let state = Arc::new(Mutex::new(state));
        let stats = Arc::new(LsmStats::default());
        let worker = Worker {
            dir,
            manifest_path: manifest_path.to_path_buf(),
            state: Arc::clone(&state),
            stats: Arc::clone(&stats),
            fanin: config.compact_fanin,
        };
        let (tx, rx) = mpsc::channel();
        let handle = thread::Builder::new()
            .name("hat-lsm".into())
            .spawn(move || worker.run(rx))?;
        Ok(Lsm {
            config,
            mem: Mutex::new(MemTable::default()),
            state,
            stats,
            tx: Some(tx),
            handle: Some(handle),
        })
    }

    /// Appends one pre-serialised record line to the memtable, rotating it into a
    /// background flush once it passes the size threshold. Never blocks on I/O.
    pub fn log(&self, kind: RecordKind, key: &str, line: String) {
        let frozen = {
            let mut mem = self.mem.lock().expect("memtable poisoned");
            mem.bytes += line.len() + 1;
            mem.records.push(MemRecord {
                kind,
                key: key.to_string(),
                line,
            });
            if mem.bytes >= self.config.memtable_bytes {
                Some(std::mem::take(&mut *mem).records)
            } else {
                None
            }
        };
        if let Some(records) = frozen {
            self.rotate_frozen(records);
        }
    }

    /// Rotates whatever the memtable currently holds into a background flush.
    fn rotate(&self) {
        let mem = std::mem::take(&mut *self.mem.lock().expect("memtable poisoned"));
        if !mem.records.is_empty() {
            self.rotate_frozen(mem.records);
        }
    }

    fn rotate_frozen(&self, records: Vec<MemRecord>) {
        self.stats.rotations.fetch_add(1, Ordering::Relaxed);
        if let Some(tx) = &self.tx {
            let _ = tx.send(BgCmd::Flush(records));
        }
    }

    /// Rotates the memtable and blocks until the background thread has flushed every
    /// frozen table and gone idle. After `drain` returns, everything ever logged is in
    /// segment files named by the manifest.
    pub fn drain(&self) {
        self.rotate();
        let (reply, done) = mpsc::channel();
        if let Some(tx) = &self.tx {
            if tx.send(BgCmd::Drain(reply)).is_ok() {
                let _ = done.recv();
            }
        }
    }

    /// Drains, then merges every multi-segment family down to one segment (newest
    /// record wins, dead records dropped) and blocks for the outcome.
    pub fn compact(&self) -> CompactOutcome {
        self.rotate();
        let (reply, done) = mpsc::channel();
        match &self.tx {
            Some(tx) if tx.send(BgCmd::Compact { reply }).is_ok() => {
                done.recv().unwrap_or_default()
            }
            _ => CompactOutcome::default(),
        }
    }

    /// Whether any `(kind, partition)` family has reached the merge fan-in (an explicit
    /// compaction would actually do work).
    pub fn wants_compaction(&self) -> bool {
        let state = self.state.lock().expect("manifest state poisoned");
        let mut families: HashMap<(RecordKind, u8), usize> = HashMap::new();
        for s in &state.segments {
            *families.entry((s.kind, s.partition)).or_default() += 1;
        }
        families.values().any(|&n| n >= self.config.compact_fanin)
    }

    /// A clone of the current manifest state.
    pub fn state_snapshot(&self) -> ManifestState {
        self.state.lock().expect("manifest state poisoned").clone()
    }

    /// A snapshot of the backend counters.
    pub fn stats_snapshot(&self) -> LsmStatsSnapshot {
        LsmStatsSnapshot {
            rotations: self.stats.rotations.load(Ordering::Relaxed),
            flushes: self.stats.flushes.load(Ordering::Relaxed),
            segments_written: self.stats.segments_written.load(Ordering::Relaxed),
            segments_merged: self.stats.segments_merged.load(Ordering::Relaxed),
            compactions: self.stats.compactions.load(Ordering::Relaxed),
            bytes_flushed: self.stats.bytes_flushed.load(Ordering::Relaxed),
            bytes_compacted: self.stats.bytes_compacted.load(Ordering::Relaxed),
        }
    }

    /// Records currently buffered in the memtable (not yet rotated).
    pub fn memtable_records(&self) -> usize {
        self.mem.lock().expect("memtable poisoned").records.len()
    }
}

impl Drop for Lsm {
    fn drop(&mut self) {
        // Rotate any leftovers, close the channel so the worker exits after the final
        // flush, and join it — a dropped store leaves everything durable.
        self.rotate();
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The background thread: flushes frozen memtables and merges segment families. It
/// owns every mutation of the manifest; the foreground only reads snapshots.
struct Worker {
    dir: PathBuf,
    manifest_path: PathBuf,
    state: Arc<Mutex<ManifestState>>,
    stats: Arc<LsmStats>,
    fanin: usize,
}

impl Worker {
    fn run(self, rx: Receiver<BgCmd>) {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                BgCmd::Flush(records) => {
                    if let Err(e) = self.flush(records) {
                        eprintln!("warning: cache segment flush failed: {e}");
                    }
                    if let Err(e) = self.compact_families(self.fanin) {
                        eprintln!("warning: cache compaction failed: {e}");
                    }
                }
                BgCmd::Compact { reply } => {
                    let before = self.state.lock().expect("manifest state poisoned").clone();
                    let merged = match self.compact_families(2) {
                        Ok(n) => n,
                        Err(e) => {
                            eprintln!("warning: cache compaction failed: {e}");
                            0
                        }
                    };
                    let after = self.state.lock().expect("manifest state poisoned").clone();
                    let _ = reply.send(CompactOutcome {
                        records_before: before.records(),
                        records_after: after.records(),
                        bytes_before: before.segment_bytes(),
                        bytes_after: after.segment_bytes(),
                        segments_merged: merged,
                    });
                }
                BgCmd::Drain(reply) => {
                    let _ = reply.send(());
                }
            }
        }
    }

    /// Flushes one frozen memtable: group by `(kind, partition)`, dedup within each
    /// group (last write wins — values are pure functions of keys anyway), sort by key,
    /// write level-0 segments, commit the manifest once.
    fn flush(&self, records: Vec<MemRecord>) -> std::io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut groups: HashMap<(RecordKind, u8), Vec<(String, String)>> = HashMap::new();
        for r in records {
            let partition = partition_of(&r.key);
            groups
                .entry((r.kind, partition))
                .or_default()
                .push((r.key, r.line));
        }
        let mut keys: Vec<(RecordKind, u8)> = groups.keys().copied().collect();
        keys.sort();
        let mut state = self.state.lock().expect("manifest state poisoned").clone();
        let mut written = 0usize;
        let mut flushed_bytes = 0usize;
        for family in keys {
            let mut lines = groups.remove(&family).expect("family listed");
            lines.sort_by(|a, b| a.0.cmp(&b.0));
            // Last write wins within the frozen table: keep the final occurrence.
            lines.reverse();
            lines.dedup_by(|a, b| a.0 == b.0);
            lines.reverse();
            let seq = state.next_seq;
            state.next_seq += 1;
            let meta = write_segment(&self.dir, family.0, family.1, 0, seq, &lines)?;
            flushed_bytes += meta.bytes as usize;
            state.segments.push(meta);
            written += 1;
        }
        self.commit(state)?;
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .segments_written
            .fetch_add(written, Ordering::Relaxed);
        self.stats
            .bytes_flushed
            .fetch_add(flushed_bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Merges every `(kind, partition)` family holding at least `fanin` segments down
    /// to one segment. Returns the number of input segments consumed.
    fn compact_families(&self, fanin: usize) -> std::io::Result<usize> {
        let fanin = fanin.max(2);
        let mut consumed = 0usize;
        loop {
            let state = self.state.lock().expect("manifest state poisoned").clone();
            let mut families: HashMap<(RecordKind, u8), Vec<SegmentMeta>> = HashMap::new();
            for s in &state.segments {
                families.entry((s.kind, s.partition)).or_default().push(*s);
            }
            let mut ripe: Vec<_> = families
                .into_iter()
                .filter(|(_, segs)| segs.len() >= fanin)
                .collect();
            ripe.sort_by_key(|(family, _)| *family);
            let Some((family, segs)) = ripe.into_iter().next() else {
                return Ok(consumed);
            };
            consumed += self.merge_family(state, family, segs)?;
        }
    }

    /// Merges one family's segments into a single segment at the next level and
    /// commits: newest sequence wins per key, torn segments contribute nothing (their
    /// records degrade to cold), input files are unlinked only after the manifest no
    /// longer names them.
    fn merge_family(
        &self,
        mut state: ManifestState,
        family: (RecordKind, u8),
        mut segs: Vec<SegmentMeta>,
    ) -> std::io::Result<usize> {
        segs.sort_by_key(|s| std::cmp::Reverse(s.seq));
        let mut merged: Vec<(String, String)> = Vec::new();
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for meta in &segs {
            let scan = read_segment(&self.dir, meta);
            for line in scan.lines {
                // A record line's key is its second tab-separated field; lines that do
                // not even have one are torn and dropped here.
                let Some(key) = line.split('\t').nth(1) else {
                    continue;
                };
                if seen.insert(key.to_string()) {
                    merged.push((key.to_string(), line));
                }
            }
        }
        merged.sort_by(|a, b| a.0.cmp(&b.0));
        let level = segs.iter().map(|s| s.level).max().unwrap_or(0) + 1;
        let seq = state.next_seq;
        state.next_seq += 1;
        let out = write_segment(&self.dir, family.0, family.1, level, seq, &merged)?;
        let out_bytes = out.bytes as usize;
        state.segments.retain(|s| {
            !segs
                .iter()
                .any(|old| old.seq == s.seq && old.kind == s.kind)
        });
        state.segments.push(out);
        self.commit(state)?;
        for old in &segs {
            let _ = fs::remove_file(self.dir.join(old.file_name()));
        }
        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        self.stats
            .segments_merged
            .fetch_add(segs.len(), Ordering::Relaxed);
        self.stats
            .bytes_compacted
            .fetch_add(out_bytes, Ordering::Relaxed);
        Ok(segs.len())
    }

    /// Commits a new manifest state: atomic rewrite on disk first, then publish to the
    /// shared snapshot.
    fn commit(&self, state: ManifestState) -> std::io::Result<()> {
        write_manifest(&self.manifest_path, &state)?;
        *self.state.lock().expect("manifest state poisoned") = state;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_manifest(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hat-lsm-test-{}-{name}", std::process::id()));
        p
    }

    fn cleanup(path: &Path) {
        let _ = fs::remove_file(path);
        let _ = fs::remove_dir_all(segment_dir_for(path));
    }

    #[test]
    fn fingerprint_partitions_are_stable() {
        // Pin the FNV-1a values: a silent change would strand existing segments.
        assert_eq!(fingerprint(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint("a"), 0xaf63_dc4c_8601_ec8c);
        let p: Vec<u8> = ["sat|k0", "sat|k1", "inc|k2", "tr|k3"]
            .iter()
            .map(|k| partition_of(k))
            .collect();
        assert!(p.iter().all(|&x| x < PARTITIONS));
        assert_eq!(
            p,
            vec![2, 1, 0, 3],
            "partition assignment must never change"
        );
    }

    #[test]
    fn manifest_roundtrips_and_recovers_seq() {
        let path = temp_manifest("manifest-roundtrip");
        cleanup(&path);
        let state = ManifestState {
            next_seq: 7,
            segments: vec![
                SegmentMeta {
                    kind: RecordKind::Solver,
                    partition: 1,
                    level: 0,
                    seq: 3,
                    records: 10,
                    bytes: 222,
                },
                SegmentMeta {
                    kind: RecordKind::Transition,
                    partition: 0,
                    level: 2,
                    seq: 6,
                    records: 4,
                    bytes: 999,
                },
            ],
        };
        write_manifest(&path, &state).expect("writes");
        let (back, malformed) = read_manifest(&path).expect("reads").expect("v6");
        assert_eq!(back, state);
        assert_eq!(malformed, 0);
        // Drop the seq line: next_seq recovers from the max segment seq.
        let contents = fs::read_to_string(&path).expect("readable");
        let without_seq: String = contents
            .lines()
            .filter(|l| !l.starts_with("seq\t"))
            .map(|l| format!("{l}\n"))
            .collect();
        fs::write(&path, without_seq).expect("writable");
        let (back, _) = read_manifest(&path).expect("reads").expect("v6");
        assert_eq!(back.next_seq, 7);
        cleanup(&path);
    }

    #[test]
    fn manifest_malformed_lines_are_counted_not_trusted() {
        let path = temp_manifest("manifest-malformed");
        cleanup(&path);
        fs::write(
            &path,
            format!(
                "{MANIFEST_HEADER_V6}\nseq\t5\nseg\tS\t0\t0\t1\t2\t33\nseg\tS\t9\t0\t2\t2\t33\nwhat\nseg\tZ\t0\t0\t3\t2\t33\n"
            ),
        )
        .expect("writable");
        let (state, malformed) = read_manifest(&path).expect("reads").expect("v6");
        assert_eq!(
            state.segments.len(),
            1,
            "partition 9 and tag Z are rejected"
        );
        assert_eq!(malformed, 3);
        cleanup(&path);
    }

    #[test]
    fn non_v6_headers_are_not_manifests() {
        let path = temp_manifest("manifest-foreign");
        cleanup(&path);
        fs::write(&path, "hat-engine-cache v5\nS1\tk\n").expect("writable");
        assert!(read_manifest(&path).expect("reads").is_none());
        cleanup(&path);
    }

    #[test]
    fn torn_segments_degrade_to_cold() {
        let path = temp_manifest("torn-segment");
        cleanup(&path);
        let dir = segment_dir_for(&path);
        fs::create_dir_all(&dir).expect("mkdir");
        let lines = vec![
            ("k0".to_string(), "S1\tk0".to_string()),
            ("k1".to_string(), "S0\tk1".to_string()),
        ];
        let meta = write_segment(&dir, RecordKind::Solver, 0, 0, 1, &lines).expect("writes");
        assert_eq!(read_segment(&dir, &meta).lines.len(), 2);
        // Truncate a record: the count mismatch marks the whole segment torn.
        let file = dir.join(meta.file_name());
        let contents = fs::read_to_string(&file).expect("readable");
        let cut: String = contents.lines().take(2).map(|l| format!("{l}\n")).collect();
        fs::write(&file, cut).expect("writable");
        let scan = read_segment(&dir, &meta);
        assert!(scan.torn && scan.lines.is_empty());
        // Missing file: torn too.
        fs::remove_file(&file).expect("removable");
        assert!(read_segment(&dir, &meta).torn);
        cleanup(&path);
    }

    #[test]
    fn flush_rotation_and_compaction_lifecycle() {
        let path = temp_manifest("lifecycle");
        cleanup(&path);
        let config = LsmConfig {
            memtable_bytes: 64,
            compact_fanin: 3,
        };
        let lsm = Lsm::start(&path, ManifestState::default(), config).expect("starts");
        for i in 0..40 {
            let key = format!("sat|k{i}");
            lsm.log(RecordKind::Solver, &key, format!("S1\t{key}"));
        }
        // Duplicates for dead records:
        for i in 0..10 {
            let key = format!("sat|k{i}");
            lsm.log(RecordKind::Solver, &key, format!("S1\t{key}"));
        }
        lsm.drain();
        let stats = lsm.stats_snapshot();
        assert!(stats.rotations >= 2, "tiny memtable must rotate repeatedly");
        assert!(stats.flushes >= 2);
        let state = lsm.state_snapshot();
        assert!(!state.segments.is_empty());
        assert!(
            state.segments.iter().all(|s| s.kind == RecordKind::Solver),
            "only solver records were logged"
        );
        // Fan-in 3 auto-compaction has likely already merged some families; an explicit
        // pass leaves each family with exactly one segment and drops every duplicate.
        let outcome = lsm.compact();
        let state = lsm.state_snapshot();
        let mut families: HashMap<(RecordKind, u8), usize> = HashMap::new();
        for s in &state.segments {
            *families.entry((s.kind, s.partition)).or_default() += 1;
        }
        assert!(families.values().all(|&n| n == 1));
        assert_eq!(state.records(), 40, "40 distinct keys survive");
        assert!(outcome.records_after <= outcome.records_before);
        // Replay every segment: all 40 keys present, none duplicated.
        let dir = segment_dir_for(&path);
        let mut seen = std::collections::HashSet::new();
        for meta in &state.segments {
            let scan = read_segment(&dir, meta);
            assert!(!scan.torn);
            for line in scan.lines {
                let key = line.split('\t').nth(1).expect("keyed").to_string();
                assert_eq!(partition_of(&key), meta.partition);
                assert!(seen.insert(key), "no duplicates after compaction");
            }
        }
        assert_eq!(seen.len(), 40);
        // Idempotence: a second compaction has nothing to merge.
        let second = lsm.compact();
        assert_eq!(second.segments_merged, 0);
        assert_eq!(second.bytes_before, second.bytes_after);
        drop(lsm);
        cleanup(&path);
    }

    #[test]
    fn drop_drains_the_memtable() {
        let path = temp_manifest("drop-drains");
        cleanup(&path);
        let lsm =
            Lsm::start(&path, ManifestState::default(), LsmConfig::default()).expect("starts");
        lsm.log(RecordKind::Inclusion, "inc|x", "I1\tinc|x".to_string());
        lsm.log(
            RecordKind::Minterms,
            "ab|y",
            "M\tab|y\tU0;M0;P0;Q0;".to_string(),
        );
        assert_eq!(lsm.memtable_records(), 2);
        drop(lsm);
        let (state, _) = read_manifest(&path).expect("reads").expect("v6");
        assert_eq!(state.records(), 2, "drop must flush the memtable");
        let dir = segment_dir_for(&path);
        for meta in &state.segments {
            assert!(!read_segment(&dir, meta).torn);
        }
        cleanup(&path);
    }

    #[test]
    fn gc_removes_only_orphans() {
        let path = temp_manifest("gc");
        cleanup(&path);
        let dir = segment_dir_for(&path);
        fs::create_dir_all(&dir).expect("mkdir");
        let lines = vec![("k".to_string(), "S1\tk".to_string())];
        let live = write_segment(&dir, RecordKind::Solver, 0, 0, 1, &lines).expect("writes");
        let orphan = write_segment(&dir, RecordKind::Solver, 0, 0, 2, &lines).expect("writes");
        fs::write(dir.join("stray.seg.tmp"), b"partial").expect("writable");
        let state = ManifestState {
            next_seq: 3,
            segments: vec![live],
        };
        // A well-formed segment of a kind this binary does not know belongs to a newer
        // binary extending v6 (as `U` did): it must be spared, not collected.
        fs::write(dir.join("X-p0-L0-00000009.seg"), b"future kind").expect("writable");
        // An unknown-tag name that is not segment-shaped is an ordinary stray.
        fs::write(dir.join("X-junk.seg"), b"stray").expect("writable");
        gc_orphans(&dir, &state);
        assert!(dir.join(live.file_name()).exists());
        assert!(!dir.join(orphan.file_name()).exists());
        assert!(!dir.join("stray.seg.tmp").exists());
        assert!(dir.join("X-p0-L0-00000009.seg").exists());
        assert!(!dir.join("X-junk.seg").exists());
        cleanup(&path);
    }
}
