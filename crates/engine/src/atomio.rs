//! Line-safe serialisation of minterm sets for the disk cache.
//!
//! `hat-engine-cache v3` persists whole alphabet transformations as `M` records, so warm
//! runs skip minterm enumeration entirely. A record's payload is the canonical
//! ([`crate::canon::alphabet_key`]-renamed) [`MintermSet`] in the format below — a
//! self-delimiting prefix encoding in which every user-supplied name is length-prefixed
//! and control characters are escaped, so a payload can never contain the log's record
//! delimiters (tab, newline) and parsing is injective:
//!
//! ```text
//! set     := 'U' count { atom } 'M' count { minterm } 'P' count 'Q' count
//! minterm := 'O' name count { sign atom }         sign: '+' (true) | '-' (false)
//! atom    := '=' term term | '<' term term | 'L' term term
//!          | 'P' name count { term } | 'B' term
//! term    := 'v' name | 'c' const | 'a' fnsym count { term }
//! const   := 'u' | 't' | 'f' | 'i' int ';' | 'n' name
//! fnsym   := '+' | '-' | '*' | '%' | '~' | 'N' name
//! name    := bytelen '#' escaped-utf8
//! count   := decimal ';'
//! ```
//!
//! Unparseable payloads are rejected (`None`), which the cache counts as stale lines —
//! a torn final write degrades to a cold enumeration, never to a wrong alphabet.
//!
//! `hat-engine-cache v6` additionally persists the transition memo as `T` records whose
//! payload is a canonical (alpha-normalised) successor [`Sfa`], in the same discipline:
//!
//! ```text
//! sfa     := 'Z' | 'E' | 'V' event | 'G' formula | '!' sfa | '&' count { sfa }
//!          | '|' count { sfa } | ';' sfa sfa | 'X' sfa | 'U' sfa sfa | '*' sfa
//! event   := name count { name } name formula        op, args, result, phi
//! formula := 'T' | 'F' | 'A' atom | 'N' formula | '&' count { formula }
//!          | '|' count { formula } | 'I' formula formula | 'B' formula formula
//!          | 'Q' name sort formula
//! sort    := 'u' | 'b' | 'i' | 'n' name
//! ```

use hat_logic::{Atom, Constant, Formula, FuncSym, Sort, Term};
use hat_sfa::{Minterm, MintermSet, Sfa, SymbolicEvent};
use std::fmt::Write as _;

/// Nesting bound for parsed [`Sfa`]/[`Formula`] payloads: a corrupt segment line must
/// degrade to a cold derivation, not blow the parser's stack.
const MAX_DEPTH: usize = 128;

/// Serialises a canonical minterm set into a single line-safe payload.
pub fn ser_minterm_set(set: &MintermSet) -> String {
    let mut out = String::with_capacity(256);
    out.push('U');
    ser_count(set.uniform_literals.len(), &mut out);
    for a in &set.uniform_literals {
        ser_atom(a, &mut out);
    }
    out.push('M');
    ser_count(set.minterms.len(), &mut out);
    for m in &set.minterms {
        out.push('O');
        ser_name(&m.op, &mut out);
        ser_count(m.assignment.len(), &mut out);
        for (a, v) in &m.assignment {
            out.push(if *v { '+' } else { '-' });
            ser_atom(a, &mut out);
        }
    }
    // The enumeration-work counters are stored so a warm run can report what the cold
    // enumeration cost (they are zeroed on memo hits anyway, see `build_minterms_with`).
    out.push('P');
    ser_count(set.pruned, &mut out);
    out.push('Q');
    ser_count(set.enum_queries, &mut out);
    out
}

/// Parses a payload produced by [`ser_minterm_set`]. Returns `None` on any malformation
/// (including trailing garbage).
pub fn parse_minterm_set(payload: &str) -> Option<MintermSet> {
    let mut p = Parser { rest: payload };
    p.expect('U')?;
    let n = p.count()?;
    let mut uniform_literals = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        uniform_literals.push(p.atom()?);
    }
    p.expect('M')?;
    let n = p.count()?;
    let mut minterms = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        p.expect('O')?;
        let op = p.name()?;
        let k = p.count()?;
        let mut assignment = Vec::with_capacity(k.min(1024));
        for _ in 0..k {
            let v = match p.bump()? {
                '+' => true,
                '-' => false,
                _ => return None,
            };
            assignment.push((p.atom()?, v));
        }
        minterms.push(Minterm { op, assignment });
    }
    p.expect('P')?;
    let pruned = p.count()?;
    p.expect('Q')?;
    let enum_queries = p.count()?;
    if !p.rest.is_empty() {
        return None;
    }
    Some(MintermSet {
        minterms,
        uniform_literals,
        pruned,
        enum_queries,
        from_memo: false,
    })
}

/// Serialises a canonical successor automaton into a single line-safe payload for a `T`
/// (transition memo) cache record.
pub fn ser_sfa(sfa: &Sfa) -> String {
    let mut out = String::with_capacity(128);
    ser_sfa_into(sfa, &mut out);
    out
}

/// Parses a payload produced by [`ser_sfa`]. Returns `None` on any malformation,
/// trailing garbage, or nesting beyond `MAX_DEPTH`.
pub fn parse_sfa(payload: &str) -> Option<Sfa> {
    let mut p = Parser { rest: payload };
    let sfa = p.sfa(0)?;
    p.rest.is_empty().then_some(sfa)
}

fn ser_sfa_into(sfa: &Sfa, out: &mut String) {
    match sfa {
        Sfa::Zero => out.push('Z'),
        Sfa::Epsilon => out.push('E'),
        Sfa::Event(ev) => {
            out.push('V');
            ser_name(&ev.op, out);
            ser_count(ev.args.len(), out);
            for a in &ev.args {
                ser_name(a, out);
            }
            ser_name(&ev.result, out);
            ser_formula_into(&ev.phi, out);
        }
        Sfa::Guard(phi) => {
            out.push('G');
            ser_formula_into(phi, out);
        }
        Sfa::Not(a) => {
            out.push('!');
            ser_sfa_into(a, out);
        }
        Sfa::And(xs) => {
            out.push('&');
            ser_count(xs.len(), out);
            for x in xs {
                ser_sfa_into(x, out);
            }
        }
        Sfa::Or(xs) => {
            out.push('|');
            ser_count(xs.len(), out);
            for x in xs {
                ser_sfa_into(x, out);
            }
        }
        Sfa::Concat(a, b) => {
            out.push(';');
            ser_sfa_into(a, out);
            ser_sfa_into(b, out);
        }
        Sfa::Next(a) => {
            out.push('X');
            ser_sfa_into(a, out);
        }
        Sfa::Until(a, b) => {
            out.push('U');
            ser_sfa_into(a, out);
            ser_sfa_into(b, out);
        }
        Sfa::Star(a) => {
            out.push('*');
            ser_sfa_into(a, out);
        }
    }
}

fn ser_formula_into(phi: &Formula, out: &mut String) {
    match phi {
        Formula::True => out.push('T'),
        Formula::False => out.push('F'),
        Formula::Atom(a) => {
            out.push('A');
            ser_atom(a, out);
        }
        Formula::Not(f) => {
            out.push('N');
            ser_formula_into(f, out);
        }
        Formula::And(fs) => {
            out.push('&');
            ser_count(fs.len(), out);
            for f in fs {
                ser_formula_into(f, out);
            }
        }
        Formula::Or(fs) => {
            out.push('|');
            ser_count(fs.len(), out);
            for f in fs {
                ser_formula_into(f, out);
            }
        }
        Formula::Implies(a, b) => {
            out.push('I');
            ser_formula_into(a, out);
            ser_formula_into(b, out);
        }
        Formula::Iff(a, b) => {
            out.push('B');
            ser_formula_into(a, out);
            ser_formula_into(b, out);
        }
        Formula::Forall(x, sort, f) => {
            out.push('Q');
            ser_name(x, out);
            match sort {
                Sort::Unit => out.push('u'),
                Sort::Bool => out.push('b'),
                Sort::Int => out.push('i'),
                Sort::Named(n) => {
                    out.push('n');
                    ser_name(n, out);
                }
            }
            ser_formula_into(f, out);
        }
    }
}

fn ser_count(n: usize, out: &mut String) {
    let _ = write!(out, "{n};");
}

/// Length-prefixed, escaped name — the same discipline as the cache keys (see
/// `canon::ser_name`): no tab or newline can survive into the payload, and the byte
/// length counts the escaped form, keeping the encoding injective.
fn ser_name(n: &str, out: &mut String) {
    let escaped: String = n
        .chars()
        .flat_map(|c| match c {
            '\\' => "\\\\".chars().collect::<Vec<_>>(),
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                format!("\\x{:02x}", c as u32).chars().collect()
            }
            c => vec![c],
        })
        .collect();
    let _ = write!(out, "{}#{}", escaped.len(), escaped);
}

fn ser_atom(a: &Atom, out: &mut String) {
    match a {
        Atom::Eq(l, r) => {
            out.push('=');
            ser_term(l, out);
            ser_term(r, out);
        }
        Atom::Lt(l, r) => {
            out.push('<');
            ser_term(l, out);
            ser_term(r, out);
        }
        Atom::Le(l, r) => {
            out.push('L');
            ser_term(l, out);
            ser_term(r, out);
        }
        Atom::Pred(p, args) => {
            out.push('P');
            ser_name(p, out);
            ser_count(args.len(), out);
            for t in args {
                ser_term(t, out);
            }
        }
        Atom::BoolTerm(t) => {
            out.push('B');
            ser_term(t, out);
        }
    }
}

fn ser_term(t: &Term, out: &mut String) {
    match t {
        Term::Var(x) => {
            out.push('v');
            ser_name(x, out);
        }
        Term::Const(c) => {
            out.push('c');
            match c {
                Constant::Unit => out.push('u'),
                Constant::Bool(true) => out.push('t'),
                Constant::Bool(false) => out.push('f'),
                Constant::Int(i) => {
                    let _ = write!(out, "i{i};");
                }
                Constant::Atom(a) => {
                    out.push('n');
                    ser_name(a, out);
                }
            }
        }
        Term::App(f, args) => {
            out.push('a');
            match f {
                FuncSym::Add => out.push('+'),
                FuncSym::Sub => out.push('-'),
                FuncSym::Mul => out.push('*'),
                FuncSym::Mod => out.push('%'),
                FuncSym::Neg => out.push('~'),
                FuncSym::Named(n) => {
                    out.push('N');
                    ser_name(n, out);
                }
            }
            ser_count(args.len(), out);
            for a in args {
                ser_term(a, out);
            }
        }
    }
}

struct Parser<'a> {
    rest: &'a str,
}

impl Parser<'_> {
    fn bump(&mut self) -> Option<char> {
        let c = self.rest.chars().next()?;
        self.rest = &self.rest[c.len_utf8()..];
        Some(c)
    }

    fn expect(&mut self, c: char) -> Option<()> {
        (self.bump()? == c).then_some(())
    }

    /// A decimal count terminated by `;`, with a sanity bound so a corrupt length cannot
    /// drive huge pre-allocations.
    fn count(&mut self) -> Option<usize> {
        let end = self.rest.find(';')?;
        let n: usize = self.rest[..end].parse().ok()?;
        self.rest = &self.rest[end + 1..];
        (n <= 100_000_000).then_some(n)
    }

    /// A (possibly negative) decimal integer terminated by `;`.
    fn int(&mut self) -> Option<i64> {
        let end = self.rest.find(';')?;
        let n: i64 = self.rest[..end].parse().ok()?;
        self.rest = &self.rest[end + 1..];
        Some(n)
    }

    fn name(&mut self) -> Option<String> {
        let hash = self.rest.find('#')?;
        let len: usize = self.rest[..hash].parse().ok()?;
        let body = self.rest.get(hash + 1..hash + 1 + len)?;
        self.rest = &self.rest[hash + 1 + len..];
        unescape(body)
    }

    fn sfa(&mut self, depth: usize) -> Option<Sfa> {
        if depth > MAX_DEPTH {
            return None;
        }
        match self.bump()? {
            'Z' => Some(Sfa::Zero),
            'E' => Some(Sfa::Epsilon),
            'V' => {
                let op = self.name()?;
                let n = self.count()?;
                let mut args = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    args.push(self.name()?);
                }
                let result = self.name()?;
                let phi = self.formula(depth + 1)?;
                Some(Sfa::Event(SymbolicEvent {
                    op,
                    args,
                    result,
                    phi,
                }))
            }
            'G' => Some(Sfa::Guard(self.formula(depth + 1)?)),
            '!' => Some(Sfa::Not(Box::new(self.sfa(depth + 1)?))),
            '&' => {
                let n = self.count()?;
                let mut xs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    xs.push(self.sfa(depth + 1)?);
                }
                Some(Sfa::And(xs))
            }
            '|' => {
                let n = self.count()?;
                let mut xs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    xs.push(self.sfa(depth + 1)?);
                }
                Some(Sfa::Or(xs))
            }
            ';' => Some(Sfa::Concat(
                Box::new(self.sfa(depth + 1)?),
                Box::new(self.sfa(depth + 1)?),
            )),
            'X' => Some(Sfa::Next(Box::new(self.sfa(depth + 1)?))),
            'U' => Some(Sfa::Until(
                Box::new(self.sfa(depth + 1)?),
                Box::new(self.sfa(depth + 1)?),
            )),
            '*' => Some(Sfa::Star(Box::new(self.sfa(depth + 1)?))),
            _ => None,
        }
    }

    fn formula(&mut self, depth: usize) -> Option<Formula> {
        if depth > MAX_DEPTH {
            return None;
        }
        match self.bump()? {
            'T' => Some(Formula::True),
            'F' => Some(Formula::False),
            'A' => Some(Formula::Atom(self.atom()?)),
            'N' => Some(Formula::Not(Box::new(self.formula(depth + 1)?))),
            '&' => {
                let n = self.count()?;
                let mut fs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    fs.push(self.formula(depth + 1)?);
                }
                Some(Formula::And(fs))
            }
            '|' => {
                let n = self.count()?;
                let mut fs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    fs.push(self.formula(depth + 1)?);
                }
                Some(Formula::Or(fs))
            }
            'I' => Some(Formula::Implies(
                Box::new(self.formula(depth + 1)?),
                Box::new(self.formula(depth + 1)?),
            )),
            'B' => Some(Formula::Iff(
                Box::new(self.formula(depth + 1)?),
                Box::new(self.formula(depth + 1)?),
            )),
            'Q' => {
                let x = self.name()?;
                let sort = match self.bump()? {
                    'u' => Sort::Unit,
                    'b' => Sort::Bool,
                    'i' => Sort::Int,
                    'n' => Sort::Named(self.name()?),
                    _ => return None,
                };
                Some(Formula::Forall(x, sort, Box::new(self.formula(depth + 1)?)))
            }
            _ => None,
        }
    }

    fn atom(&mut self) -> Option<Atom> {
        match self.bump()? {
            '=' => Some(Atom::Eq(self.term()?, self.term()?)),
            '<' => Some(Atom::Lt(self.term()?, self.term()?)),
            'L' => Some(Atom::Le(self.term()?, self.term()?)),
            'P' => {
                let p = self.name()?;
                let n = self.count()?;
                let mut args = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    args.push(self.term()?);
                }
                Some(Atom::Pred(p, args))
            }
            'B' => Some(Atom::BoolTerm(self.term()?)),
            _ => None,
        }
    }

    fn term(&mut self) -> Option<Term> {
        match self.bump()? {
            'v' => Some(Term::Var(self.name()?)),
            'c' => {
                let c = match self.bump()? {
                    'u' => Constant::Unit,
                    't' => Constant::Bool(true),
                    'f' => Constant::Bool(false),
                    'i' => Constant::Int(self.int()?),
                    'n' => Constant::Atom(self.name()?),
                    _ => return None,
                };
                Some(Term::Const(c))
            }
            'a' => {
                let f = match self.bump()? {
                    '+' => FuncSym::Add,
                    '-' => FuncSym::Sub,
                    '*' => FuncSym::Mul,
                    '%' => FuncSym::Mod,
                    '~' => FuncSym::Neg,
                    'N' => FuncSym::Named(self.name()?),
                    _ => return None,
                };
                let n = self.count()?;
                let mut args = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    args.push(self.term()?);
                }
                Some(Term::App(f, args))
            }
            _ => None,
        }
    }
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            'x' => {
                let hi = chars.next()?.to_digit(16)?;
                let lo = chars.next()?.to_digit(16)?;
                out.push(char::from_u32(hi * 16 + lo)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> MintermSet {
        MintermSet {
            minterms: vec![
                Minterm {
                    op: "put".into(),
                    assignment: vec![
                        (Atom::Eq(Term::var("#arg0"), Term::var("$k0")), true),
                        (Atom::Pred("isDir".into(), vec![Term::var("#arg1")]), false),
                    ],
                },
                Minterm {
                    op: "exists".into(),
                    assignment: vec![(
                        Atom::Lt(Term::int(-3), Term::app("parent", vec![Term::var("$k1")])),
                        true,
                    )],
                },
            ],
            uniform_literals: vec![
                Atom::Le(Term::var("$k0"), Term::atom("node:0")),
                Atom::BoolTerm(Term::var("$k2")),
            ],
            pruned: 7,
            enum_queries: 12,
            from_memo: false,
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let set = sample_set();
        let payload = ser_minterm_set(&set);
        assert!(!payload.contains('\t') && !payload.contains('\n'));
        let back = parse_minterm_set(&payload).expect("roundtrip parses");
        assert_eq!(back.minterms, set.minterms);
        assert_eq!(back.uniform_literals, set.uniform_literals);
        assert_eq!(back.pruned, set.pruned);
        assert_eq!(back.enum_queries, set.enum_queries);
        assert!(!back.from_memo);
    }

    #[test]
    fn empty_set_roundtrips() {
        let payload = ser_minterm_set(&MintermSet::default());
        let back = parse_minterm_set(&payload).expect("empty set parses");
        assert!(back.minterms.is_empty() && back.uniform_literals.is_empty());
    }

    #[test]
    fn hostile_names_stay_line_safe_and_roundtrip() {
        // Deterministic xorshift fuzz over names biased towards delimiters and escapes.
        struct XorShift(u64);
        impl XorShift {
            fn next(&mut self) -> u64 {
                let mut x = self.0;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.0 = x;
                x
            }
        }
        let alphabet: Vec<char> = vec![
            '\t', '\n', '\r', '\\', '#', ';', '+', '-', 'O', 'M', 'v', '0', '\u{7f}', '\u{1}', 'é',
            '→', 'a',
        ];
        let mut rng = XorShift(0x9e3779b97f4a7c15);
        for _ in 0..256 {
            let len = (rng.next() % 10) as usize;
            let name: String = (0..len)
                .map(|_| alphabet[(rng.next() % alphabet.len() as u64) as usize])
                .collect();
            let set = MintermSet {
                minterms: vec![Minterm {
                    op: name.clone(),
                    assignment: vec![(
                        Atom::Pred(name.clone(), vec![Term::atom(name.clone())]),
                        rng.next().is_multiple_of(2),
                    )],
                }],
                uniform_literals: vec![Atom::Eq(Term::var(name.clone()), Term::var(name.clone()))],
                ..MintermSet::default()
            };
            let payload = ser_minterm_set(&set);
            assert!(
                !payload.contains('\t') && !payload.contains('\n') && !payload.contains('\r'),
                "payload for {name:?} leaks a record delimiter"
            );
            let back = parse_minterm_set(&payload).expect("fuzzed payload parses");
            assert_eq!(back.minterms, set.minterms);
            assert_eq!(back.uniform_literals, set.uniform_literals);
        }
    }

    fn sample_sfa() -> Sfa {
        Sfa::Until(
            Box::new(Sfa::Or(vec![
                Sfa::Event(SymbolicEvent {
                    op: "put".into(),
                    args: vec!["#arg0".into(), "#arg1".into()],
                    result: "#res".into(),
                    phi: Formula::Implies(
                        Box::new(Formula::Atom(Atom::Eq(
                            Term::var("#arg0"),
                            Term::var("$k0"),
                        ))),
                        Box::new(Formula::Forall(
                            "p".into(),
                            Sort::Named("Path.t".into()),
                            Box::new(Formula::Iff(
                                Box::new(Formula::Atom(Atom::Pred(
                                    "isDir".into(),
                                    vec![Term::var("p")],
                                ))),
                                Box::new(Formula::False),
                            )),
                        )),
                    ),
                }),
                Sfa::Guard(Formula::And(vec![
                    Formula::True,
                    Formula::Not(Box::new(Formula::Atom(Atom::BoolTerm(Term::var("$k2"))))),
                ])),
                Sfa::Concat(
                    Box::new(Sfa::Epsilon),
                    Box::new(Sfa::Star(Box::new(Sfa::Next(Box::new(Sfa::Zero))))),
                ),
            ])),
            Box::new(Sfa::Not(Box::new(Sfa::And(vec![
                Sfa::Guard(Formula::Or(vec![])),
                Sfa::Guard(Formula::Forall(
                    "n".into(),
                    Sort::Int,
                    Box::new(Formula::True),
                )),
                Sfa::Guard(Formula::Forall(
                    "u".into(),
                    Sort::Unit,
                    Box::new(Formula::True),
                )),
                Sfa::Guard(Formula::Forall(
                    "b".into(),
                    Sort::Bool,
                    Box::new(Formula::True),
                )),
            ])))),
        )
    }

    #[test]
    fn sfa_roundtrip_preserves_structure() {
        let sfa = sample_sfa();
        let payload = ser_sfa(&sfa);
        assert!(!payload.contains('\t') && !payload.contains('\n'));
        let back = parse_sfa(&payload).expect("sfa roundtrip parses");
        assert_eq!(back, sfa);
    }

    #[test]
    fn sfa_truncations_and_garble_are_rejected() {
        let payload = ser_sfa(&sample_sfa());
        for cut in 0..payload.len() {
            if payload.is_char_boundary(cut) {
                assert!(
                    parse_sfa(&payload[..cut]).is_none(),
                    "truncation at {cut} must not parse"
                );
            }
        }
        assert!(parse_sfa(&format!("{payload}Z")).is_none());
        assert!(parse_sfa("").is_none());
        assert!(parse_sfa("?").is_none());
        // Nesting past the depth bound is rejected, not a stack overflow.
        let deep = format!("{}Z", "!".repeat(MAX_DEPTH + 2));
        assert!(parse_sfa(&deep).is_none());
    }

    #[test]
    fn sfa_hostile_names_fuzz_roundtrip() {
        struct XorShift(u64);
        impl XorShift {
            fn next(&mut self) -> u64 {
                let mut x = self.0;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.0 = x;
                x
            }
        }
        let alphabet: Vec<char> = vec![
            '\t', '\n', '\r', '\\', '#', ';', 'Z', 'V', 'Q', '&', '|', '!', '*', '\u{7f}', '\u{2}',
            'λ', '→', 'x',
        ];
        let mut rng = XorShift(0x9e3779b97f4a7c15);
        for _ in 0..256 {
            let len = (rng.next() % 12) as usize;
            let name: String = (0..len)
                .map(|_| alphabet[(rng.next() % alphabet.len() as u64) as usize])
                .collect();
            let sfa = Sfa::Event(SymbolicEvent {
                op: name.clone(),
                args: vec![name.clone(), name.clone()],
                result: name.clone(),
                phi: Formula::Forall(
                    name.clone(),
                    Sort::Named(name.clone()),
                    Box::new(Formula::Atom(Atom::Eq(
                        Term::var(name.clone()),
                        Term::atom(name.clone()),
                    ))),
                ),
            });
            let payload = ser_sfa(&sfa);
            assert!(
                !payload.contains('\t') && !payload.contains('\n') && !payload.contains('\r'),
                "payload for {name:?} leaks a record delimiter"
            );
            assert_eq!(parse_sfa(&payload).as_ref(), Some(&sfa));
        }
    }

    #[test]
    fn truncated_and_garbled_payloads_are_rejected() {
        let payload = ser_minterm_set(&sample_set());
        for cut in [1, payload.len() / 2, payload.len() - 1] {
            // Cut on a char boundary (payloads are ASCII except inside names).
            if payload.is_char_boundary(cut) {
                assert!(
                    parse_minterm_set(&payload[..cut]).is_none(),
                    "truncation at {cut} must not parse"
                );
            }
        }
        assert!(parse_minterm_set(&format!("{payload}x")).is_none());
        assert!(parse_minterm_set("U1;").is_none());
        assert!(parse_minterm_set("").is_none());
    }
}
