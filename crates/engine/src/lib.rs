//! # hat-engine
//!
//! The parallel verification engine of the HAT checker: a worker pool over
//! (benchmark, method) verification jobs, sharing one solver-query cache that is optionally
//! persisted to disk so repeated runs start warm. This is the subsystem behind
//! `marple check-all --jobs N --cache <path>`.
//!
//! ## Tiered memo store
//!
//! Every SMT query the checker issues — subtyping entailments and context-consistency
//! checks from `hat-core`, minterm-satisfiability and transition queries from
//! `hat-sfa::inclusion` — funnels through one [`hat_sfa::SolverOracle`] implementation,
//! [`CachingOracle`]. The oracle reduces each query to a satisfiability problem,
//! α-renames it into a canonical form ([`canon`]) — free variables become `$k0, $k1, …`
//! in order of first occurrence (with their sorts), bound variables `$q0, $q1, …` in
//! traversal order — and serialises that form into a stable textual key. Queries that
//! differ only in variable or binder names therefore share one cache entry, while
//! structurally different queries (reordered conjuncts, a named sort shadowing a built-in
//! sort's name, crafted predicate names) never collide: user-supplied names are
//! length-prefixed in the key. On a miss the oracle solves the *canonical* form, so every
//! verdict is a pure function of its key — which is why `--jobs N` produces verdicts
//! identical to a sequential run no matter how the cache interleaves.
//!
//! Each key is served by a three-level tier stack ([`tier`]), instantiated once per
//! record kind in the [`MemoStore`]: a worker-local lock-free map (read-through, hits
//! promoted on the way back — this is what keeps shard-lock traffic flat under
//! `--jobs N`), the shared sharded map, and the disk log.
//!
//! ## Memo hierarchy
//!
//! Beyond the per-query cache, whole units of work are memoised at four higher levels
//! through the single typed [`hat_sfa::MemoQuery`] interface, all keyed α-canonically
//! (see [`canon::memo_key`] and `docs/ARCHITECTURE.md` for the hierarchy diagram):
//! minterm sets (whole alphabet transformations), DFA transitions
//! (`state × answers → successor`), per-group *DFA shapes* (one product walk over an
//! (automaton pair, pruned alphabet) — shared across benchmarks, no axiom fingerprint)
//! and whole inclusion checks. A hit at an outer level skips every inner level.
//!
//! ## Disk store (LSM)
//!
//! With [`EngineConfig::cache_path`] set, verdicts flow through an LSM-structured
//! store (`hat-engine-cache v6`): writes land in an in-memory memtable that rotates
//! at a size threshold into frozen tables, which a dedicated background thread
//! flushes as sorted, fingerprint-partitioned, per-kind segment files under
//! `<path>.d/` — the cache path itself holds only the manifest naming the live
//! segments. The same thread merges segment families levelled-up and drops dead
//! records, so compaction never blocks a reader or a scheduler worker. The record
//! grammar, single-writer locking, crash-consistency and migration rules are
//! specified in `docs/CACHE_FORMAT.md` and summarised in [`cache`] and [`lsm`]. The
//! next run replays manifest + segments into memory and starts warm; `v1`–`v5` logs
//! are migrated atomically on first open, files from any other format version are
//! ignored wholesale and counted as stale, and a store crowded with dead records is
//! compacted — automatically past a threshold at open, or explicitly via
//! [`MemoStore::compact`] / `marple cache compact`.
//!
//! ## Scheduler
//!
//! [`Engine::check_benchmarks`] flattens the benchmark suite into (benchmark, method)
//! jobs, drains them from an atomic work-queue with `jobs` worker threads (each with its
//! own solver and local tier, all with the shared store), and reassembles reports into
//! input order — so output is deterministic regardless of which worker finishes first.
//!
//! ```
//! use hat_engine::{Engine, EngineConfig};
//!
//! let benches = vec![hat_suite::find("Stack", "LinkedList").expect("configuration exists")];
//! let engine = Engine::new(EngineConfig { jobs: 2, ..EngineConfig::default() }).expect("engine");
//! let summary = engine.check_benchmarks(&benches);
//! assert!(summary.benchmarks[0].reports.iter().any(|r| r.verified));
//! ```

pub mod atomio;
pub mod cache;
pub mod canon;
pub mod lsm;
pub mod oracle;
pub mod schedule;
pub mod tier;

pub use cache::{
    addr_path_for, CacheFileStats, CacheStatsSnapshot, CompactionReport, LockHolder, MemoStore,
    QueryCache, RecordKind,
};
pub use canon::{canonicalize, memo_key, CanonicalMemoKey, CanonicalQuery};
pub use lsm::{LsmConfig, LsmStatsSnapshot, ManifestState, SegmentMeta};
pub use oracle::CachingOracle;
pub use schedule::{
    BenchmarkRun, Engine, EngineConfig, JobReport, PollReport, RunHandle, RunSummary,
};
pub use tier::{DiskTier, LocalTier, MemoTier, SharedTier};
