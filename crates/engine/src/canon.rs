//! Canonical forms for solver queries.
//!
//! Two satisfiability queries that differ only in the *names* of their variables have the
//! same answer, and — after the determinism fix in `hat-logic` (the fresh-name counter is
//! restarted per query) — the solver produces that answer by an identical computation on
//! the renamed form. This module exploits that: it α-renames a query into a canonical form
//! whose free variables are numbered `$k0, $k1, …` in order of first occurrence and whose
//! bound variables are numbered `$q0, $q1, …` in traversal order, then serialises the
//! result into a stable textual key.
//!
//! Keys are *sound*, not complete: α-equivalent queries (same sorts, renamed variables,
//! renamed binders) collide; queries that differ in structure — reordered conjuncts,
//! distinct sorts that merely share a display name, different goals — do not. Every
//! user-supplied identifier (predicate names, function symbols, named sorts, atom
//! constants) is length-prefixed in the key, so no crafted name can alias another key.

use hat_logic::{Atom, AxiomSet, Constant, Formula, FuncSym, Ident, Sort, Term};
use hat_sfa::{LiteralPool, MemoQuery, Minterm, MintermSet, OpSig, Sfa, VarCtx};
use std::collections::BTreeMap;

/// A query in canonical form: the renamed sort environment, the renamed formula, and the
/// stable cache key. Solving `formula` under `vars` is equivalent to solving the original
/// query, and depends only on `key`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalQuery {
    /// Sorts of the canonical free variables, in order of first occurrence.
    pub vars: Vec<(Ident, Sort)>,
    /// The α-renamed formula.
    pub formula: Formula,
    /// The stable textual key identifying the query up to α-equivalence.
    pub key: String,
}

struct Renamer<'a> {
    /// Declared sorts of the original free variables.
    env: BTreeMap<&'a str, &'a Sort>,
    /// Original free-variable name → canonical name.
    free: BTreeMap<Ident, Ident>,
    /// Canonical environment, in assignment order.
    out_vars: Vec<(Ident, Sort)>,
    /// Number of binders renamed so far.
    binders: usize,
}

impl Renamer<'_> {
    fn free_name(&mut self, x: &str) -> Ident {
        if let Some(c) = self.free.get(x) {
            return c.clone();
        }
        let canon = format!("$k{}", self.free.len());
        self.free.insert(x.to_string(), canon.clone());
        if let Some(sort) = self.env.get(x) {
            self.out_vars.push((canon.clone(), (*sort).clone()));
        }
        canon
    }

    fn term(&mut self, t: &Term, bound: &[(Ident, Ident)]) -> Term {
        match t {
            Term::Var(x) => match bound.iter().rev().find(|(orig, _)| orig == x) {
                Some((_, canon)) => Term::Var(canon.clone()),
                None => Term::Var(self.free_name(x)),
            },
            Term::Const(_) => t.clone(),
            Term::App(f, args) => Term::App(
                f.clone(),
                args.iter().map(|a| self.term(a, bound)).collect(),
            ),
        }
    }

    fn atom(&mut self, a: &Atom, bound: &[(Ident, Ident)]) -> Atom {
        match a {
            Atom::Eq(l, r) => Atom::Eq(self.term(l, bound), self.term(r, bound)),
            Atom::Lt(l, r) => Atom::Lt(self.term(l, bound), self.term(r, bound)),
            Atom::Le(l, r) => Atom::Le(self.term(l, bound), self.term(r, bound)),
            Atom::Pred(p, args) => Atom::Pred(
                p.clone(),
                args.iter().map(|t| self.term(t, bound)).collect(),
            ),
            Atom::BoolTerm(t) => Atom::BoolTerm(self.term(t, bound)),
        }
    }

    fn formula(&mut self, f: &Formula, bound: &mut Vec<(Ident, Ident)>) -> Formula {
        match f {
            Formula::True | Formula::False => f.clone(),
            Formula::Atom(a) => Formula::Atom(self.atom(a, bound)),
            Formula::Not(g) => Formula::Not(Box::new(self.formula(g, bound))),
            Formula::And(fs) => Formula::And(fs.iter().map(|g| self.formula(g, bound)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|g| self.formula(g, bound)).collect()),
            Formula::Implies(p, q) => Formula::Implies(
                Box::new(self.formula(p, bound)),
                Box::new(self.formula(q, bound)),
            ),
            Formula::Iff(p, q) => Formula::Iff(
                Box::new(self.formula(p, bound)),
                Box::new(self.formula(q, bound)),
            ),
            Formula::Forall(x, s, body) => {
                let canon = format!("$q{}", self.binders);
                self.binders += 1;
                bound.push((x.clone(), canon.clone()));
                let renamed = self.formula(body, bound);
                bound.pop();
                Formula::Forall(canon, s.clone(), Box::new(renamed))
            }
        }
    }
}

/// Canonicalises a satisfiability query. Variables declared in `vars` but not occurring in
/// `f` are dropped (they cannot affect satisfiability: every sort is inhabited).
///
/// ```
/// use hat_engine::canonicalize;
/// use hat_logic::{Formula, Sort, Term};
///
/// let env = |names: &[&str]| -> Vec<(String, Sort)> {
///     names.iter().map(|n| (n.to_string(), Sort::Int)).collect()
/// };
/// // α-equivalent queries share a key — including y < x, which first-occurrence
/// // numbering renames to the same canonical form ($k0 < $k1)...
/// let xy = canonicalize(&env(&["x", "y"]), &Formula::lt(Term::var("x"), Term::var("y")));
/// let ab = canonicalize(&env(&["a", "b"]), &Formula::lt(Term::var("a"), Term::var("b")));
/// let yx = canonicalize(&env(&["x", "y"]), &Formula::lt(Term::var("y"), Term::var("x")));
/// assert_eq!(xy.key, ab.key);
/// assert_eq!(xy.key, yx.key);
/// // ...while structurally different queries never collide.
/// let le = canonicalize(&env(&["x", "y"]), &Formula::le(Term::var("x"), Term::var("y")));
/// assert_ne!(xy.key, le.key);
/// ```
pub fn canonicalize(vars: &[(Ident, Sort)], f: &Formula) -> CanonicalQuery {
    let mut renamer = Renamer {
        env: vars.iter().map(|(x, s)| (x.as_str(), s)).collect(),
        free: BTreeMap::new(),
        out_vars: Vec::new(),
        binders: 0,
    };
    let mut bound = Vec::new();
    let formula = renamer.formula(f, &mut bound);
    let mut key = String::with_capacity(128);
    key.push_str("sat|");
    for (x, s) in &renamer.out_vars {
        key.push_str(x);
        key.push(':');
        ser_sort(s, &mut key);
        key.push(',');
    }
    key.push('|');
    ser_formula(&formula, &mut key);
    CanonicalQuery {
        vars: renamer.out_vars,
        formula,
        key,
    }
}

/// A canonical key for one alphabet transformation — the typing context, the operator
/// alphabet and the collected literal pool, α-renamed — together with the renaming that
/// produced it. Two structurally equal transformations (e.g. the same obligation under
/// differently-freshened ghost variables) share a key; the renaming moves a memoised
/// [`MintermSet`] between them.
#[derive(Debug, Clone)]
pub struct AlphabetKey {
    /// The stable textual key (prefix it with an axiom-set fingerprint before sharing a
    /// cache across benchmarks).
    pub key: String,
    /// Original free-variable name → canonical name, in order of first occurrence.
    forward: BTreeMap<Ident, Ident>,
}

impl AlphabetKey {
    fn rename_set(set: &MintermSet, rename: &dyn Fn(&str) -> Option<Ident>) -> MintermSet {
        MintermSet {
            minterms: set
                .minterms
                .iter()
                .map(|m| Minterm {
                    op: m.op.clone(),
                    assignment: m
                        .assignment
                        .iter()
                        .map(|(a, v)| (a.rename_vars(rename), *v))
                        .collect(),
                })
                .collect(),
            uniform_literals: set
                .uniform_literals
                .iter()
                .map(|a| a.rename_vars(rename))
                .collect(),
            pruned: set.pruned,
            enum_queries: set.enum_queries,
            from_memo: set.from_memo,
        }
    }

    /// Renames a minterm set built for this key's original query into canonical names
    /// (the form stored in a shared memo).
    pub fn to_canonical(&self, set: &MintermSet) -> MintermSet {
        Self::rename_set(set, &|x| self.forward.get(x).cloned())
    }

    /// Renames a memoised canonical minterm set back into this key's original names.
    pub fn from_canonical(&self, set: &MintermSet) -> MintermSet {
        let inverse: BTreeMap<&str, &Ident> = self
            .forward
            .iter()
            .map(|(orig, canon)| (canon.as_str(), orig))
            .collect();
        Self::rename_set(set, &|x| inverse.get(x).map(|orig| (*orig).clone()))
    }
}

fn renamer_for<'a>(ctx: &'a VarCtx) -> Renamer<'a> {
    Renamer {
        env: ctx.vars.iter().map(|(x, s)| (x.as_str(), s)).collect(),
        free: BTreeMap::new(),
        out_vars: Vec::new(),
        binders: 0,
    }
}

fn ser_ops(ops: &[OpSig], out: &mut String) {
    for op in ops {
        out.push('O');
        ser_name(&op.name, out);
        out.push(':');
        // Argument names are irrelevant (minterm literals use the canonical `#argN`
        // names); only the sorts and the arity matter.
        for (_, sort) in &op.args {
            ser_sort(sort, out);
        }
        out.push('>');
        ser_sort(&op.ret, out);
    }
}

/// Canonicalises an alphabet transformation: the context facts, operator alphabet and
/// literal pool, α-renamed with one shared renamer so a memoised minterm set can be
/// transported between α-equivalent queries.
pub fn alphabet_key(ctx: &VarCtx, ops: &[OpSig], pool: &LiteralPool) -> AlphabetKey {
    let mut renamer = renamer_for(ctx);
    let mut bound = Vec::new();
    let mut body = String::with_capacity(256);
    for fact in &ctx.facts {
        body.push('f');
        ser_formula(&renamer.formula(fact, &mut bound), &mut body);
    }
    ser_ops(ops, &mut body);
    for (op, atoms) in &pool.per_op {
        body.push('p');
        ser_name(op, &mut body);
        for a in atoms {
            ser_atom(&renamer.atom(a, &bound), &mut body);
        }
    }
    body.push('u');
    for a in &pool.uniform {
        ser_atom(&renamer.atom(a, &bound), &mut body);
    }
    let mut key = String::with_capacity(body.len() + 64);
    key.push_str("mt|");
    for (x, s) in &renamer.out_vars {
        key.push_str(x);
        key.push(':');
        ser_sort(s, &mut key);
        key.push(',');
    }
    key.push('|');
    key.push_str(&body);
    AlphabetKey {
        key,
        forward: renamer.free,
    }
}

/// A canonical key for one DFA transition — the residual state formula together with the
/// signed oracle answers for every symbolic event and guard occurring in it, α-renamed —
/// plus the renaming that produced it.
///
/// A Brzozowski successor is a pure *syntactic* function of exactly this data: the
/// derivative construction consults the oracle only for events and guards of the formula
/// it derives, and axioms, context facts and the concrete minterm influence the successor
/// only through those answers (which are part of the key). The key therefore carries no
/// axiom fingerprint — structurally equal transitions are shared across benchmarks.
#[derive(Debug, Clone)]
pub struct TransitionKey {
    /// The stable textual key.
    pub key: String,
    /// Original free-variable name → canonical name, in order of first occurrence.
    forward: BTreeMap<Ident, Ident>,
}

impl TransitionKey {
    /// Renames a successor computed for this key's original state into canonical names
    /// (the form stored in a shared memo). The caller must pass the successor in
    /// [`Sfa::alpha_normal`] form, so its binders are `$q…` and cannot collide with the
    /// canonical `$k…` free names.
    pub fn to_canonical(&self, succ: &Sfa) -> Sfa {
        succ.rename_free_vars(&|x| self.forward.get(x).cloned())
    }

    /// Renames a memoised canonical successor back into this key's original names. The
    /// result is re-sorted by the caller (`Sfa::alpha_normal`): `And`/`Or` children were
    /// ordered under the storer's names.
    pub fn from_canonical(&self, succ: &Sfa) -> Sfa {
        let inverse: BTreeMap<&str, &Ident> = self
            .forward
            .iter()
            .map(|(orig, canon)| (canon.as_str(), orig))
            .collect();
        succ.rename_free_vars(&|x| inverse.get(x).map(|orig| (*orig).clone()))
    }
}

/// Canonicalises one DFA transition: the residual state and the signed event/guard
/// answers, α-renamed with one shared renamer so a memoised successor can be transported
/// between α-equivalent states.
pub fn transition_key(
    state: &Sfa,
    event_answers: &[(&hat_sfa::SymbolicEvent, bool)],
    guard_answers: &[(&Formula, bool)],
) -> TransitionKey {
    let mut renamer = Renamer {
        env: BTreeMap::new(),
        free: BTreeMap::new(),
        out_vars: Vec::new(),
        binders: 0,
    };
    let mut bound = Vec::new();
    let mut key = String::with_capacity(256);
    key.push_str("tr|");
    ser_sfa(&mut renamer, state, &mut bound, &mut key);
    key.push('|');
    for (e, answer) in event_answers {
        ser_event(&mut renamer, e, &mut bound, &mut key);
        key.push(if *answer { '1' } else { '0' });
    }
    key.push('|');
    for (phi, answer) in guard_answers {
        ser_formula(&renamer.formula(phi, &mut bound), &mut key);
        key.push(if *answer { '1' } else { '0' });
    }
    TransitionKey {
        key,
        forward: renamer.free,
    }
}

/// Canonicalises a whole automata-inclusion check `Γ ⊢ A ⊆ B` into a stable key: the
/// context facts, the operator alphabet, the DFA state bound and both automata, α-renamed
/// with one shared renamer. The verdict of an inclusion check is a pure function of this
/// key (given the axiom-set fingerprint callers prefix), so structurally equal checks can
/// share one memoised verdict and skip minterm construction and DFA building entirely.
pub fn inclusion_check_key(
    ctx: &VarCtx,
    ops: &[OpSig],
    max_states: usize,
    a: &Sfa,
    b: &Sfa,
) -> String {
    let mut renamer = renamer_for(ctx);
    let mut bound = Vec::new();
    let mut body = String::with_capacity(256);
    for fact in &ctx.facts {
        body.push('f');
        ser_formula(&renamer.formula(fact, &mut bound), &mut body);
    }
    ser_ops(ops, &mut body);
    body.push('a');
    ser_sfa(&mut renamer, a, &mut bound, &mut body);
    body.push('b');
    ser_sfa(&mut renamer, b, &mut bound, &mut body);
    let mut key = String::with_capacity(body.len() + 64);
    key.push_str("incl|");
    key.push_str(&max_states.to_string());
    key.push('|');
    for (x, s) in &renamer.out_vars {
        key.push_str(x);
        key.push(':');
        ser_sort(s, &mut key);
        key.push(',');
    }
    key.push('|');
    key.push_str(&body);
    key
}

/// Serialises a symbolic event under the shared renamer. Argument and result names are
/// binders scoping over the event qualifier: they are renamed like quantifier binders,
/// so two events differing only in those names collide.
fn ser_event(
    renamer: &mut Renamer,
    e: &hat_sfa::SymbolicEvent,
    bound: &mut Vec<(Ident, Ident)>,
    out: &mut String,
) {
    out.push_str("(E");
    ser_name(&e.op, out);
    let before = bound.len();
    for arg in &e.args {
        let canon = format!("$q{}", renamer.binders);
        renamer.binders += 1;
        bound.push((arg.clone(), canon));
    }
    let res_canon = format!("$q{}", renamer.binders);
    renamer.binders += 1;
    bound.push((e.result.clone(), res_canon));
    out.push(' ');
    ser_formula(&renamer.formula(&e.phi, bound), out);
    bound.truncate(before);
    out.push(')');
}

/// Serialises a symbolic automaton under the shared renamer (see [`ser_event`] for the
/// binder discipline).
fn ser_sfa(renamer: &mut Renamer, sfa: &Sfa, bound: &mut Vec<(Ident, Ident)>, out: &mut String) {
    match sfa {
        Sfa::Zero => out.push('0'),
        Sfa::Epsilon => out.push('1'),
        Sfa::Event(e) => ser_event(renamer, e, bound, out),
        Sfa::Guard(phi) => {
            out.push_str("(G ");
            ser_formula(&renamer.formula(phi, bound), out);
            out.push(')');
        }
        Sfa::Not(x) => {
            out.push_str("(N ");
            ser_sfa(renamer, x, bound, out);
            out.push(')');
        }
        Sfa::Next(x) => {
            out.push_str("(X ");
            ser_sfa(renamer, x, bound, out);
            out.push(')');
        }
        Sfa::Star(x) => {
            out.push_str("(S ");
            ser_sfa(renamer, x, bound, out);
            out.push(')');
        }
        Sfa::And(parts) => {
            out.push_str("(C ");
            for p in parts {
                ser_sfa(renamer, p, bound, out);
            }
            out.push(')');
        }
        Sfa::Or(parts) => {
            out.push_str("(D ");
            for p in parts {
                ser_sfa(renamer, p, bound, out);
            }
            out.push(')');
        }
        Sfa::Concat(x, y) => {
            out.push_str("(; ");
            ser_sfa(renamer, x, bound, out);
            ser_sfa(renamer, y, bound, out);
            out.push(')');
        }
        Sfa::Until(x, y) => {
            out.push_str("(U ");
            ser_sfa(renamer, x, bound, out);
            ser_sfa(renamer, y, bound, out);
            out.push(')');
        }
    }
}

/// Canonicalises one per-group product walk — its *DFA shape* — into a stable key: both
/// automata in [`Sfa::alpha_normal`] form and every minterm of the (pruned) group
/// alphabet (operator plus signed literal assignment), α-renamed with one shared
/// renamer, plus the DFA state bound.
///
/// The walk's verdict is a pure function of this key: every transition it takes is
/// resolved by evaluating a qualifier of `a`/`b` (or of one of their derivatives, whose
/// qualifiers are subterms) under a minterm's complete literal assignment — both parts
/// of the key — so neither the typing context, the background axioms nor the concrete
/// benchmark enter the computation. The key therefore carries no axiom fingerprint:
/// α-equal shapes share one memoised verdict *across benchmarks*, like the transition
/// memo one level below. (The inclusion checker additionally refuses to store a verdict
/// if an out-of-pool atom ever forced a context-dependent SMT fallback.)
pub fn shape_key(a: &Sfa, b: &Sfa, alphabet: &[Minterm], max_states: usize) -> String {
    let mut renamer = Renamer {
        env: BTreeMap::new(),
        free: BTreeMap::new(),
        out_vars: Vec::new(),
        binders: 0,
    };
    let mut bound = Vec::new();
    let mut key = String::with_capacity(512);
    key.push_str("shape|");
    key.push_str(&max_states.to_string());
    key.push('|');
    ser_sfa(&mut renamer, &a.alpha_normal(), &mut bound, &mut key);
    key.push('|');
    ser_sfa(&mut renamer, &b.alpha_normal(), &mut bound, &mut key);
    key.push('|');
    for m in alphabet {
        key.push('m');
        ser_name(&m.op, &mut key);
        for (atom, value) in &m.assignment {
            ser_atom(&renamer.atom(atom, &bound), &mut key);
            key.push(if *value { '1' } else { '0' });
        }
    }
    key
}

/// Canonicalises one simulation-subsumption verdict `L(a) ⊆ L(b)` over a pruned group
/// alphabet, following [`shape_key`]'s construction (one shared renamer, α-normal
/// residuals, signed minterm assignments) and its axiom-independence argument: the
/// simulation fixpoint only chases transition rows, each resolved by evaluating a
/// qualifier of `a`/`b` (or of a derivative, whose qualifiers are subterms) under a
/// minterm assignment that is part of this key. No state bound is included — the
/// verdict is a semantic fact about the residual pair, not about any walk's budget.
/// (The inclusion checker refuses to store when an SMT fallback fired, and the walk
/// refuses to store pessimistic verdicts that depend on which rows happen to exist.)
pub fn subsumption_key(a: &Sfa, b: &Sfa, alphabet: &[Minterm]) -> String {
    let mut renamer = Renamer {
        env: BTreeMap::new(),
        free: BTreeMap::new(),
        out_vars: Vec::new(),
        binders: 0,
    };
    let mut bound = Vec::new();
    let mut key = String::with_capacity(512);
    key.push_str("subsume|");
    ser_sfa(&mut renamer, &a.alpha_normal(), &mut bound, &mut key);
    key.push('|');
    ser_sfa(&mut renamer, &b.alpha_normal(), &mut bound, &mut key);
    key.push('|');
    for m in alphabet {
        key.push('m');
        ser_name(&m.op, &mut key);
        for (atom, value) in &m.assignment {
            ser_atom(&renamer.atom(atom, &bound), &mut key);
            key.push(if *value { '1' } else { '0' });
        }
    }
    key
}

/// The canonical key of one [`MemoQuery`], together with the renaming needed to
/// transport a stored value back into the query's own variable names (for the kinds
/// whose values contain variables).
///
/// This is the single entry point tying the unified memo interface of
/// [`hat_sfa::SolverOracle`] to the per-kind key constructors of this module; the
/// axiom-fingerprint discipline (prefix [`Minterms`](CanonicalMemoKey::Minterms) and
/// [`Inclusion`](CanonicalMemoKey::Inclusion) keys, never
/// [`Shape`](CanonicalMemoKey::Shape) or [`Transition`](CanonicalMemoKey::Transition)
/// ones) is applied by the caller, which knows its axiom set.
#[derive(Debug, Clone)]
pub enum CanonicalMemoKey {
    /// An [`alphabet_key`] (axiom-dependent: prefix before sharing).
    Minterms(AlphabetKey),
    /// An [`inclusion_check_key`] (axiom-dependent: prefix before sharing).
    Inclusion(String),
    /// A [`shape_key`] (axiom-independent by construction).
    Shape(String),
    /// A [`subsumption_key`] (axiom-independent by construction).
    Subsumption(String),
    /// A [`transition_key`] (axiom-independent by construction).
    Transition(TransitionKey),
}

impl CanonicalMemoKey {
    /// Whether verdicts under this key depend on the background axiom set (and the key
    /// must therefore be prefixed with an axiom fingerprint before use in a store shared
    /// across benchmarks).
    pub fn axiom_dependent(&self) -> bool {
        matches!(
            self,
            CanonicalMemoKey::Minterms(_) | CanonicalMemoKey::Inclusion(_)
        )
    }
}

/// Canonicalises one memo query: dispatches each [`MemoQuery`] variant to its key
/// constructor.
pub fn memo_key(query: &MemoQuery) -> CanonicalMemoKey {
    match query {
        MemoQuery::Minterms { ctx, ops, pool } => {
            CanonicalMemoKey::Minterms(alphabet_key(ctx, ops, pool))
        }
        MemoQuery::Inclusion {
            ctx,
            ops,
            max_states,
            a,
            b,
        } => CanonicalMemoKey::Inclusion(inclusion_check_key(ctx, ops, *max_states, a, b)),
        MemoQuery::Shape {
            a,
            b,
            alphabet,
            max_states,
        } => CanonicalMemoKey::Shape(shape_key(a, b, alphabet, *max_states)),
        MemoQuery::Subsumption { a, b, alphabet } => {
            CanonicalMemoKey::Subsumption(subsumption_key(a, b, alphabet))
        }
        MemoQuery::Transition {
            state,
            events,
            guards,
        } => CanonicalMemoKey::Transition(transition_key(state, events, guards)),
    }
}

/// A stable fingerprint of an axiom set, for inclusion in cache keys.
///
/// A solver verdict is a function of *(axioms, vars, formula)* — axioms are instantiated
/// into every query — so a cache shared across oracles with different axiom sets (the
/// engine shares one cache across all benchmarks) must separate their entries. Function
/// and predicate declarations come from sorted maps; axioms are canonicalised
/// individually (so binder names don't matter) and then sorted (so declaration order
/// doesn't matter). The serialisation is hashed (FNV-1a, two 64-bit lanes) to keep keys
/// short.
pub fn axioms_fingerprint(ax: &AxiomSet) -> String {
    let mut s = String::new();
    for (name, (args, ret)) in &ax.functions {
        s.push('F');
        ser_name(name, &mut s);
        s.push(':');
        for a in args {
            ser_sort(a, &mut s);
        }
        s.push('>');
        ser_sort(ret, &mut s);
    }
    for (name, pred) in &ax.predicates {
        s.push('P');
        ser_name(name, &mut s);
        s.push(':');
        for a in &pred.args {
            ser_sort(a, &mut s);
        }
    }
    let mut axiom_keys: Vec<String> = ax
        .axioms
        .iter()
        .map(|a| {
            // Close the axiom over its quantified variables; canonicalisation then makes
            // the key independent of the variable names the axiom was written with.
            let closed = a.vars.iter().rev().fold(a.body.clone(), |acc, (x, sort)| {
                Formula::Forall(x.clone(), sort.clone(), Box::new(acc))
            });
            canonicalize(&[], &closed).key
        })
        .collect();
    axiom_keys.sort();
    for k in axiom_keys {
        s.push('A');
        s.push_str(&k);
    }
    format!(
        "{:016x}{:016x}",
        fnv1a64(&s, 0xcbf29ce484222325),
        fnv1a64(&s, 0x811c9dc5a003f285)
    )
}

fn fnv1a64(s: &str, offset_basis: u64) -> u64 {
    let mut h = offset_basis;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Serialises a user-supplied name with a length prefix, so names containing the key's
/// delimiter characters cannot forge a different key. Control characters (and the escape
/// character itself) are escaped so keys never contain tabs or newlines — the disk-log
/// format (`<verdict>\t<key>\n` lines) depends on that invariant; the length prefix
/// counts the escaped form, which keeps the encoding injective.
fn ser_name(n: &str, out: &mut String) {
    let escaped: String = n
        .chars()
        .flat_map(|c| match c {
            '\\' => "\\\\".chars().collect::<Vec<_>>(),
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                format!("\\x{:02x}", c as u32).chars().collect()
            }
            c => vec![c],
        })
        .collect();
    out.push_str(&escaped.len().to_string());
    out.push('#');
    out.push_str(&escaped);
}

fn ser_sort(s: &Sort, out: &mut String) {
    match s {
        Sort::Unit => out.push('u'),
        Sort::Bool => out.push('b'),
        Sort::Int => out.push('i'),
        Sort::Named(n) => {
            out.push('N');
            ser_name(n, out);
        }
    }
}

fn ser_const(c: &Constant, out: &mut String) {
    match c {
        Constant::Unit => out.push_str("cu"),
        Constant::Bool(b) => out.push_str(if *b { "ct" } else { "cf" }),
        Constant::Int(i) => {
            out.push_str("ci");
            out.push_str(&i.to_string());
        }
        Constant::Atom(a) => {
            out.push_str("ca");
            ser_name(a, out);
        }
    }
}

fn ser_func(f: &FuncSym, out: &mut String) {
    match f {
        FuncSym::Add => out.push('+'),
        FuncSym::Sub => out.push('-'),
        FuncSym::Mul => out.push('*'),
        FuncSym::Mod => out.push('%'),
        FuncSym::Neg => out.push('~'),
        FuncSym::Named(n) => {
            out.push('f');
            ser_name(n, out);
        }
    }
}

fn ser_term(t: &Term, out: &mut String) {
    match t {
        // Canonical variable names ($k…/$q…) contain no delimiters, so they are safe raw.
        Term::Var(x) => {
            out.push('v');
            out.push_str(x);
            out.push(';');
        }
        Term::Const(c) => {
            ser_const(c, out);
            out.push(';');
        }
        Term::App(f, args) => {
            out.push('(');
            ser_func(f, out);
            out.push(' ');
            for a in args {
                ser_term(a, out);
            }
            out.push(')');
        }
    }
}

fn ser_atom(a: &Atom, out: &mut String) {
    match a {
        Atom::Eq(l, r) => {
            out.push_str("(= ");
            ser_term(l, out);
            ser_term(r, out);
            out.push(')');
        }
        Atom::Lt(l, r) => {
            out.push_str("(< ");
            ser_term(l, out);
            ser_term(r, out);
            out.push(')');
        }
        Atom::Le(l, r) => {
            out.push_str("(<= ");
            ser_term(l, out);
            ser_term(r, out);
            out.push(')');
        }
        Atom::Pred(p, args) => {
            out.push_str("(P");
            ser_name(p, out);
            out.push(' ');
            for t in args {
                ser_term(t, out);
            }
            out.push(')');
        }
        Atom::BoolTerm(t) => {
            out.push_str("(B ");
            ser_term(t, out);
            out.push(')');
        }
    }
}

fn ser_formula(f: &Formula, out: &mut String) {
    match f {
        Formula::True => out.push('T'),
        Formula::False => out.push('F'),
        Formula::Atom(a) => ser_atom(a, out),
        Formula::Not(g) => {
            out.push_str("(! ");
            ser_formula(g, out);
            out.push(')');
        }
        Formula::And(fs) => {
            out.push_str("(& ");
            for g in fs {
                ser_formula(g, out);
            }
            out.push(')');
        }
        Formula::Or(fs) => {
            out.push_str("(| ");
            for g in fs {
                ser_formula(g, out);
            }
            out.push(')');
        }
        Formula::Implies(p, q) => {
            out.push_str("(-> ");
            ser_formula(p, out);
            ser_formula(q, out);
            out.push(')');
        }
        Formula::Iff(p, q) => {
            out.push_str("(<-> ");
            ser_formula(p, out);
            ser_formula(q, out);
            out.push(')');
        }
        Formula::Forall(x, s, body) => {
            out.push_str("(A ");
            out.push_str(x);
            out.push(':');
            ser_sort(s, out);
            out.push('.');
            ser_formula(body, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vars: &[(Ident, Sort)], f: &Formula) -> String {
        canonicalize(vars, f).key
    }

    fn int_env(names: &[&str]) -> Vec<(Ident, Sort)> {
        names.iter().map(|n| (n.to_string(), Sort::Int)).collect()
    }

    #[test]
    fn renamed_free_variables_collide() {
        let f = Formula::lt(Term::var("x"), Term::var("y"));
        let g = Formula::lt(Term::var("a"), Term::var("b"));
        assert_eq!(
            key(&int_env(&["x", "y"]), &f),
            key(&int_env(&["a", "b"]), &g)
        );
    }

    #[test]
    fn swapped_binder_names_collide() {
        let f = Formula::forall("x", Sort::Int, Formula::lt(Term::var("x"), Term::int(3)));
        let g = Formula::forall("y", Sort::Int, Formula::lt(Term::var("y"), Term::int(3)));
        assert_eq!(key(&[], &f), key(&[], &g));
    }

    #[test]
    fn nested_binders_respect_shadowing() {
        // ∀x. (x > 0 ∧ ∀x. x < 9) vs ∀x. (x > 0 ∧ ∀y. y < 9): α-equivalent.
        let inner_x = Formula::forall("x", Sort::Int, Formula::lt(Term::var("x"), Term::int(9)));
        let inner_y = Formula::forall("y", Sort::Int, Formula::lt(Term::var("y"), Term::int(9)));
        let outer = |inner: Formula| {
            Formula::forall(
                "x",
                Sort::Int,
                Formula::And(vec![Formula::lt(Term::int(0), Term::var("x")), inner]),
            )
        };
        assert_eq!(key(&[], &outer(inner_x)), key(&[], &outer(inner_y.clone())));
        // ...but ∀x. (x > 0 ∧ ∀y. x < 9) refers to the *outer* binder: different key.
        let inner_outer_ref =
            Formula::forall("y", Sort::Int, Formula::lt(Term::var("x"), Term::int(9)));
        assert_ne!(key(&[], &outer(inner_y)), key(&[], &outer(inner_outer_ref)));
    }

    #[test]
    fn reordered_conjuncts_do_not_collide() {
        let p = Formula::pred("p", vec![Term::var("x")]);
        let q = Formula::pred("q", vec![Term::var("y")]);
        let env = int_env(&["x", "y"]);
        let pq = Formula::And(vec![p.clone(), q.clone()]);
        let qp = Formula::And(vec![q, p]);
        assert_ne!(key(&env, &pq), key(&env, &qp));
    }

    #[test]
    fn swapped_predicates_do_not_collide() {
        // p(x) ∧ q(y) vs q(x) ∧ p(y): same shape after naive renaming, different meaning.
        let env = int_env(&["x", "y"]);
        let f = Formula::And(vec![
            Formula::pred("p", vec![Term::var("x")]),
            Formula::pred("q", vec![Term::var("y")]),
        ]);
        let g = Formula::And(vec![
            Formula::pred("q", vec![Term::var("x")]),
            Formula::pred("p", vec![Term::var("y")]),
        ]);
        assert_ne!(key(&env, &f), key(&env, &g));
    }

    #[test]
    fn distinct_sorts_with_same_display_name_do_not_collide() {
        // Sort::Int and Sort::Named("int") both display as "int" but must key differently.
        let f = Formula::pred("p", vec![Term::var("x")]);
        let as_int = vec![("x".to_string(), Sort::Int)];
        let as_named = vec![("x".to_string(), Sort::named("int"))];
        assert_ne!(key(&as_int, &f), key(&as_named, &f));
    }

    #[test]
    fn declared_and_undeclared_variables_do_not_collide() {
        let f = Formula::pred("p", vec![Term::var("x")]);
        assert_ne!(key(&int_env(&["x"]), &f), key(&[], &f));
    }

    #[test]
    fn crafted_names_cannot_alias_keys() {
        // A predicate named "p(v$k0;)" must not produce the key of p applied to a variable.
        let env = int_env(&["x"]);
        let f = Formula::pred("p", vec![Term::var("x")]);
        let crafted = Formula::pred("p(v$k0;)", vec![]);
        assert_ne!(key(&env, &f), key(&env, &crafted));
    }

    #[test]
    fn control_characters_in_names_are_escaped_out_of_keys() {
        // The disk log stores one `<verdict>\t<key>\n` record per line, so keys must never
        // contain raw tabs or newlines, and the escaping must stay injective.
        let f = Formula::pred("p\n1\tinjected", vec![]);
        let k = key(&[], &f);
        assert!(
            !k.contains('\n') && !k.contains('\t'),
            "raw control chars leaked: {k:?}"
        );
        // A name spelling out the escape sequence must not collide with the escaped name.
        let spelled = Formula::pred("p\\x0a1\\x09injected", vec![]);
        assert_ne!(key(&[], &f), key(&[], &spelled));
    }

    #[test]
    fn unused_context_variables_are_dropped() {
        let f = Formula::lt(Term::var("x"), Term::int(0));
        assert_eq!(
            key(&int_env(&["x"]), &f),
            key(&int_env(&["x", "unused"]), &f)
        );
    }

    #[test]
    fn fuzzed_names_never_break_key_invariants() {
        // A proptest-free fuzz loop (deterministic xorshift, as in the suite's
        // end-to-end tests) over name escaping: keys must never contain record
        // delimiters, and distinct name multisets must never collide.
        struct XorShift(u64);
        impl XorShift {
            fn next(&mut self) -> u64 {
                let mut x = self.0;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.0 = x;
                x
            }
        }
        let mut rng = XorShift(0x6a09e667f3bcc909);
        // An alphabet biased towards the characters the escaping must defend against.
        let alphabet: Vec<char> = vec![
            '\t', '\n', '\r', '\\', '#', '|', ';', '(', ')', ':', ',', '$', 'a', 'b', '0',
            '\u{7f}', '\u{1}', 'é', '→',
        ];
        let random_name = |rng: &mut XorShift| -> String {
            let len = (rng.next() % 12) as usize;
            (0..len)
                .map(|_| alphabet[(rng.next() % alphabet.len() as u64) as usize])
                .collect()
        };
        let mut seen: BTreeMap<String, String> = BTreeMap::new();
        for _ in 0..512 {
            let name = random_name(&mut rng);
            let f = Formula::pred(name.clone(), vec![Term::atom(random_name(&mut rng))]);
            let k = key(&[], &f);
            assert!(
                !k.contains('\t') && !k.contains('\n') && !k.contains('\r'),
                "key for {name:?} leaks a record delimiter: {k:?}"
            );
            // Same formula → same key; a different pred/constant pair → different key.
            assert_eq!(k, key(&[], &f), "keys must be deterministic");
            if let Some(prev) = seen.get(&k) {
                assert_eq!(
                    prev,
                    &format!("{f}"),
                    "two distinct formulas collided on key {k:?}"
                );
            } else {
                seen.insert(k, format!("{f}"));
            }
        }
    }

    #[test]
    fn alphabet_keys_share_across_renamings_and_transport_minterm_sets() {
        let pool_for = |var: &str| LiteralPool {
            per_op: vec![(
                "put".to_string(),
                vec![Atom::Eq(Term::var("#arg0"), Term::var(var))],
            )],
            uniform: vec![Atom::Lt(Term::int(0), Term::var(var))],
        };
        let ops = vec![hat_sfa::OpSig::new(
            "put",
            vec![("key".to_string(), Sort::Int)],
            Sort::Unit,
        )];
        let ctx_p = VarCtx::new(vec![("p".to_string(), Sort::Int)], vec![]);
        let ctx_q = VarCtx::new(vec![("q".to_string(), Sort::Int)], vec![]);
        let key_p = alphabet_key(&ctx_p, &ops, &pool_for("p"));
        let key_q = alphabet_key(&ctx_q, &ops, &pool_for("q"));
        assert_eq!(
            key_p.key, key_q.key,
            "α-equivalent transformations share a key"
        );

        // A set built under `p` transports to `q` through the canonical form.
        let set_p = MintermSet {
            minterms: vec![Minterm {
                op: "put".into(),
                assignment: vec![(Atom::Eq(Term::var("#arg0"), Term::var("p")), true)],
            }],
            uniform_literals: vec![Atom::Lt(Term::int(0), Term::var("p"))],
            ..MintermSet::default()
        };
        let transported = key_q.from_canonical(&key_p.to_canonical(&set_p));
        assert_eq!(
            transported.minterms[0].assignment[0].0,
            Atom::Eq(Term::var("#arg0"), Term::var("q"))
        );
        assert_eq!(
            transported.uniform_literals[0],
            Atom::Lt(Term::int(0), Term::var("q"))
        );

        // Different literal pools must not collide.
        let mut bigger = pool_for("p");
        bigger.uniform.push(Atom::Le(Term::var("p"), Term::int(9)));
        assert_ne!(key_p.key, alphabet_key(&ctx_p, &ops, &bigger).key);
    }

    #[test]
    fn inclusion_keys_distinguish_direction_and_share_alpha_equivalent_checks() {
        let ops = vec![hat_sfa::OpSig::new(
            "put",
            vec![("key".to_string(), Sort::Int)],
            Sort::Unit,
        )];
        let ev = |ctx_var: &str| {
            Sfa::event(
                "put",
                vec!["key".into()],
                "v",
                Formula::eq(Term::var("key"), Term::var(ctx_var)),
            )
        };
        let ctx_p = VarCtx::new(vec![("p".to_string(), Sort::Int)], vec![]);
        let ctx_q = VarCtx::new(vec![("q".to_string(), Sort::Int)], vec![]);
        let a_p = Sfa::globally(Sfa::not(ev("p")));
        let b_p = Sfa::eventually(ev("p"));
        let forward = inclusion_check_key(&ctx_p, &ops, 64, &a_p, &b_p);
        let backward = inclusion_check_key(&ctx_p, &ops, 64, &b_p, &a_p);
        assert_ne!(
            forward, backward,
            "A ⊆ B and B ⊆ A must not share a verdict"
        );
        // α-renamed contexts (freshened ghosts) share keys.
        let a_q = Sfa::globally(Sfa::not(ev("q")));
        let b_q = Sfa::eventually(ev("q"));
        assert_eq!(forward, inclusion_check_key(&ctx_q, &ops, 64, &a_q, &b_q));
        // A different state bound is a different key.
        assert_ne!(forward, inclusion_check_key(&ctx_p, &ops, 65, &a_p, &b_p));
        // Event binder names do not matter...
        let ev_renamed = Sfa::event(
            "put",
            vec!["k2".into()],
            "w",
            Formula::eq(Term::var("k2"), Term::var("p")),
        );
        assert_eq!(
            forward,
            inclusion_check_key(&ctx_p, &ops, 64, &Sfa::globally(Sfa::not(ev_renamed)), &b_p)
        );
        // ...but the automaton structure does.
        assert_ne!(
            forward,
            inclusion_check_key(&ctx_p, &ops, 64, &Sfa::globally(ev("p")), &b_p)
        );
    }

    #[test]
    fn shape_keys_share_alpha_equivalent_walks_and_distinguish_alphabets() {
        let ev = |ctx_var: &str, binder: &str| {
            Sfa::event(
                "put",
                vec![binder.into()],
                "v",
                Formula::eq(Term::var(binder), Term::var(ctx_var)),
            )
        };
        let alphabet_for = |var: &str| {
            vec![
                Minterm {
                    op: "put".into(),
                    assignment: vec![(Atom::Eq(Term::var("#arg0"), Term::var(var)), true)],
                },
                Minterm {
                    op: "put".into(),
                    assignment: vec![(Atom::Eq(Term::var("#arg0"), Term::var(var)), false)],
                },
            ]
        };
        let a_p = Sfa::globally(Sfa::not(ev("p", "key")));
        let b_p = Sfa::eventually(ev("p", "key"));
        let forward = shape_key(&a_p, &b_p, &alphabet_for("p"), 64);
        // Direction matters.
        assert_ne!(forward, shape_key(&b_p, &a_p, &alphabet_for("p"), 64));
        // Renamed context variables and event binders share a key.
        let a_q = Sfa::globally(Sfa::not(ev("q", "k2")));
        let b_q = Sfa::eventually(ev("q", "k2"));
        assert_eq!(forward, shape_key(&a_q, &b_q, &alphabet_for("q"), 64));
        // A different alphabet (one symbol dropped) is a different shape.
        assert_ne!(
            forward,
            shape_key(&a_p, &b_p, &alphabet_for("p")[..1], 64),
            "the pruned alphabet is part of the shape"
        );
        // Flipped symbol polarity is a different shape.
        let mut flipped = alphabet_for("p");
        flipped[0].assignment[0].1 = false;
        flipped[1].assignment[0].1 = true;
        assert_ne!(forward, shape_key(&a_p, &b_p, &flipped, 64));
        // A different state bound is a different key.
        assert_ne!(forward, shape_key(&a_p, &b_p, &alphabet_for("p"), 65));
    }

    #[test]
    fn canonical_form_is_alpha_renamed_and_solvable() {
        let f = Formula::lt(Term::var("n"), Term::var("m"));
        let c = canonicalize(&int_env(&["n", "m"]), &f);
        assert_eq!(
            c.vars,
            vec![
                ("$k0".to_string(), Sort::Int),
                ("$k1".to_string(), Sort::Int)
            ]
        );
        assert_eq!(c.formula, Formula::lt(Term::var("$k0"), Term::var("$k1")));
        let mut solver = hat_logic::Solver::default();
        assert!(solver.is_satisfiable(&c.vars, &c.formula));
    }
}
