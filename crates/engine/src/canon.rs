//! Canonical forms for solver queries.
//!
//! Two satisfiability queries that differ only in the *names* of their variables have the
//! same answer, and — after the determinism fix in `hat-logic` (the fresh-name counter is
//! restarted per query) — the solver produces that answer by an identical computation on
//! the renamed form. This module exploits that: it α-renames a query into a canonical form
//! whose free variables are numbered `$k0, $k1, …` in order of first occurrence and whose
//! bound variables are numbered `$q0, $q1, …` in traversal order, then serialises the
//! result into a stable textual key.
//!
//! Keys are *sound*, not complete: α-equivalent queries (same sorts, renamed variables,
//! renamed binders) collide; queries that differ in structure — reordered conjuncts,
//! distinct sorts that merely share a display name, different goals — do not. Every
//! user-supplied identifier (predicate names, function symbols, named sorts, atom
//! constants) is length-prefixed in the key, so no crafted name can alias another key.

use hat_logic::{Atom, AxiomSet, Constant, Formula, FuncSym, Ident, Sort, Term};
use std::collections::BTreeMap;

/// A query in canonical form: the renamed sort environment, the renamed formula, and the
/// stable cache key. Solving `formula` under `vars` is equivalent to solving the original
/// query, and depends only on `key`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalQuery {
    /// Sorts of the canonical free variables, in order of first occurrence.
    pub vars: Vec<(Ident, Sort)>,
    /// The α-renamed formula.
    pub formula: Formula,
    /// The stable textual key identifying the query up to α-equivalence.
    pub key: String,
}

struct Renamer<'a> {
    /// Declared sorts of the original free variables.
    env: BTreeMap<&'a str, &'a Sort>,
    /// Original free-variable name → canonical name.
    free: BTreeMap<Ident, Ident>,
    /// Canonical environment, in assignment order.
    out_vars: Vec<(Ident, Sort)>,
    /// Number of binders renamed so far.
    binders: usize,
}

impl Renamer<'_> {
    fn free_name(&mut self, x: &str) -> Ident {
        if let Some(c) = self.free.get(x) {
            return c.clone();
        }
        let canon = format!("$k{}", self.free.len());
        self.free.insert(x.to_string(), canon.clone());
        if let Some(sort) = self.env.get(x) {
            self.out_vars.push((canon.clone(), (*sort).clone()));
        }
        canon
    }

    fn term(&mut self, t: &Term, bound: &[(Ident, Ident)]) -> Term {
        match t {
            Term::Var(x) => match bound.iter().rev().find(|(orig, _)| orig == x) {
                Some((_, canon)) => Term::Var(canon.clone()),
                None => Term::Var(self.free_name(x)),
            },
            Term::Const(_) => t.clone(),
            Term::App(f, args) => Term::App(
                f.clone(),
                args.iter().map(|a| self.term(a, bound)).collect(),
            ),
        }
    }

    fn atom(&mut self, a: &Atom, bound: &[(Ident, Ident)]) -> Atom {
        match a {
            Atom::Eq(l, r) => Atom::Eq(self.term(l, bound), self.term(r, bound)),
            Atom::Lt(l, r) => Atom::Lt(self.term(l, bound), self.term(r, bound)),
            Atom::Le(l, r) => Atom::Le(self.term(l, bound), self.term(r, bound)),
            Atom::Pred(p, args) => Atom::Pred(
                p.clone(),
                args.iter().map(|t| self.term(t, bound)).collect(),
            ),
            Atom::BoolTerm(t) => Atom::BoolTerm(self.term(t, bound)),
        }
    }

    fn formula(&mut self, f: &Formula, bound: &mut Vec<(Ident, Ident)>) -> Formula {
        match f {
            Formula::True | Formula::False => f.clone(),
            Formula::Atom(a) => Formula::Atom(self.atom(a, bound)),
            Formula::Not(g) => Formula::Not(Box::new(self.formula(g, bound))),
            Formula::And(fs) => Formula::And(fs.iter().map(|g| self.formula(g, bound)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|g| self.formula(g, bound)).collect()),
            Formula::Implies(p, q) => Formula::Implies(
                Box::new(self.formula(p, bound)),
                Box::new(self.formula(q, bound)),
            ),
            Formula::Iff(p, q) => Formula::Iff(
                Box::new(self.formula(p, bound)),
                Box::new(self.formula(q, bound)),
            ),
            Formula::Forall(x, s, body) => {
                let canon = format!("$q{}", self.binders);
                self.binders += 1;
                bound.push((x.clone(), canon.clone()));
                let renamed = self.formula(body, bound);
                bound.pop();
                Formula::Forall(canon, s.clone(), Box::new(renamed))
            }
        }
    }
}

/// Canonicalises a satisfiability query. Variables declared in `vars` but not occurring in
/// `f` are dropped (they cannot affect satisfiability: every sort is inhabited).
pub fn canonicalize(vars: &[(Ident, Sort)], f: &Formula) -> CanonicalQuery {
    let mut renamer = Renamer {
        env: vars.iter().map(|(x, s)| (x.as_str(), s)).collect(),
        free: BTreeMap::new(),
        out_vars: Vec::new(),
        binders: 0,
    };
    let mut bound = Vec::new();
    let formula = renamer.formula(f, &mut bound);
    let mut key = String::with_capacity(128);
    key.push_str("sat|");
    for (x, s) in &renamer.out_vars {
        key.push_str(x);
        key.push(':');
        ser_sort(s, &mut key);
        key.push(',');
    }
    key.push('|');
    ser_formula(&formula, &mut key);
    CanonicalQuery {
        vars: renamer.out_vars,
        formula,
        key,
    }
}

/// A stable fingerprint of an axiom set, for inclusion in cache keys.
///
/// A solver verdict is a function of *(axioms, vars, formula)* — axioms are instantiated
/// into every query — so a cache shared across oracles with different axiom sets (the
/// engine shares one cache across all benchmarks) must separate their entries. Function
/// and predicate declarations come from sorted maps; axioms are canonicalised
/// individually (so binder names don't matter) and then sorted (so declaration order
/// doesn't matter). The serialisation is hashed (FNV-1a, two 64-bit lanes) to keep keys
/// short.
pub fn axioms_fingerprint(ax: &AxiomSet) -> String {
    let mut s = String::new();
    for (name, (args, ret)) in &ax.functions {
        s.push('F');
        ser_name(name, &mut s);
        s.push(':');
        for a in args {
            ser_sort(a, &mut s);
        }
        s.push('>');
        ser_sort(ret, &mut s);
    }
    for (name, pred) in &ax.predicates {
        s.push('P');
        ser_name(name, &mut s);
        s.push(':');
        for a in &pred.args {
            ser_sort(a, &mut s);
        }
    }
    let mut axiom_keys: Vec<String> = ax
        .axioms
        .iter()
        .map(|a| {
            // Close the axiom over its quantified variables; canonicalisation then makes
            // the key independent of the variable names the axiom was written with.
            let closed = a.vars.iter().rev().fold(a.body.clone(), |acc, (x, sort)| {
                Formula::Forall(x.clone(), sort.clone(), Box::new(acc))
            });
            canonicalize(&[], &closed).key
        })
        .collect();
    axiom_keys.sort();
    for k in axiom_keys {
        s.push('A');
        s.push_str(&k);
    }
    format!(
        "{:016x}{:016x}",
        fnv1a64(&s, 0xcbf29ce484222325),
        fnv1a64(&s, 0x811c9dc5a003f285)
    )
}

fn fnv1a64(s: &str, offset_basis: u64) -> u64 {
    let mut h = offset_basis;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Serialises a user-supplied name with a length prefix, so names containing the key's
/// delimiter characters cannot forge a different key. Control characters (and the escape
/// character itself) are escaped so keys never contain tabs or newlines — the disk-log
/// format (`<verdict>\t<key>\n` lines) depends on that invariant; the length prefix
/// counts the escaped form, which keeps the encoding injective.
fn ser_name(n: &str, out: &mut String) {
    let escaped: String = n
        .chars()
        .flat_map(|c| match c {
            '\\' => "\\\\".chars().collect::<Vec<_>>(),
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                format!("\\x{:02x}", c as u32).chars().collect()
            }
            c => vec![c],
        })
        .collect();
    out.push_str(&escaped.len().to_string());
    out.push('#');
    out.push_str(&escaped);
}

fn ser_sort(s: &Sort, out: &mut String) {
    match s {
        Sort::Unit => out.push('u'),
        Sort::Bool => out.push('b'),
        Sort::Int => out.push('i'),
        Sort::Named(n) => {
            out.push('N');
            ser_name(n, out);
        }
    }
}

fn ser_const(c: &Constant, out: &mut String) {
    match c {
        Constant::Unit => out.push_str("cu"),
        Constant::Bool(b) => out.push_str(if *b { "ct" } else { "cf" }),
        Constant::Int(i) => {
            out.push_str("ci");
            out.push_str(&i.to_string());
        }
        Constant::Atom(a) => {
            out.push_str("ca");
            ser_name(a, out);
        }
    }
}

fn ser_func(f: &FuncSym, out: &mut String) {
    match f {
        FuncSym::Add => out.push('+'),
        FuncSym::Sub => out.push('-'),
        FuncSym::Mul => out.push('*'),
        FuncSym::Mod => out.push('%'),
        FuncSym::Neg => out.push('~'),
        FuncSym::Named(n) => {
            out.push('f');
            ser_name(n, out);
        }
    }
}

fn ser_term(t: &Term, out: &mut String) {
    match t {
        // Canonical variable names ($k…/$q…) contain no delimiters, so they are safe raw.
        Term::Var(x) => {
            out.push('v');
            out.push_str(x);
            out.push(';');
        }
        Term::Const(c) => {
            ser_const(c, out);
            out.push(';');
        }
        Term::App(f, args) => {
            out.push('(');
            ser_func(f, out);
            out.push(' ');
            for a in args {
                ser_term(a, out);
            }
            out.push(')');
        }
    }
}

fn ser_atom(a: &Atom, out: &mut String) {
    match a {
        Atom::Eq(l, r) => {
            out.push_str("(= ");
            ser_term(l, out);
            ser_term(r, out);
            out.push(')');
        }
        Atom::Lt(l, r) => {
            out.push_str("(< ");
            ser_term(l, out);
            ser_term(r, out);
            out.push(')');
        }
        Atom::Le(l, r) => {
            out.push_str("(<= ");
            ser_term(l, out);
            ser_term(r, out);
            out.push(')');
        }
        Atom::Pred(p, args) => {
            out.push_str("(P");
            ser_name(p, out);
            out.push(' ');
            for t in args {
                ser_term(t, out);
            }
            out.push(')');
        }
        Atom::BoolTerm(t) => {
            out.push_str("(B ");
            ser_term(t, out);
            out.push(')');
        }
    }
}

fn ser_formula(f: &Formula, out: &mut String) {
    match f {
        Formula::True => out.push('T'),
        Formula::False => out.push('F'),
        Formula::Atom(a) => ser_atom(a, out),
        Formula::Not(g) => {
            out.push_str("(! ");
            ser_formula(g, out);
            out.push(')');
        }
        Formula::And(fs) => {
            out.push_str("(& ");
            for g in fs {
                ser_formula(g, out);
            }
            out.push(')');
        }
        Formula::Or(fs) => {
            out.push_str("(| ");
            for g in fs {
                ser_formula(g, out);
            }
            out.push(')');
        }
        Formula::Implies(p, q) => {
            out.push_str("(-> ");
            ser_formula(p, out);
            ser_formula(q, out);
            out.push(')');
        }
        Formula::Iff(p, q) => {
            out.push_str("(<-> ");
            ser_formula(p, out);
            ser_formula(q, out);
            out.push(')');
        }
        Formula::Forall(x, s, body) => {
            out.push_str("(A ");
            out.push_str(x);
            out.push(':');
            ser_sort(s, out);
            out.push('.');
            ser_formula(body, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vars: &[(Ident, Sort)], f: &Formula) -> String {
        canonicalize(vars, f).key
    }

    fn int_env(names: &[&str]) -> Vec<(Ident, Sort)> {
        names.iter().map(|n| (n.to_string(), Sort::Int)).collect()
    }

    #[test]
    fn renamed_free_variables_collide() {
        let f = Formula::lt(Term::var("x"), Term::var("y"));
        let g = Formula::lt(Term::var("a"), Term::var("b"));
        assert_eq!(
            key(&int_env(&["x", "y"]), &f),
            key(&int_env(&["a", "b"]), &g)
        );
    }

    #[test]
    fn swapped_binder_names_collide() {
        let f = Formula::forall("x", Sort::Int, Formula::lt(Term::var("x"), Term::int(3)));
        let g = Formula::forall("y", Sort::Int, Formula::lt(Term::var("y"), Term::int(3)));
        assert_eq!(key(&[], &f), key(&[], &g));
    }

    #[test]
    fn nested_binders_respect_shadowing() {
        // ∀x. (x > 0 ∧ ∀x. x < 9) vs ∀x. (x > 0 ∧ ∀y. y < 9): α-equivalent.
        let inner_x = Formula::forall("x", Sort::Int, Formula::lt(Term::var("x"), Term::int(9)));
        let inner_y = Formula::forall("y", Sort::Int, Formula::lt(Term::var("y"), Term::int(9)));
        let outer = |inner: Formula| {
            Formula::forall(
                "x",
                Sort::Int,
                Formula::And(vec![Formula::lt(Term::int(0), Term::var("x")), inner]),
            )
        };
        assert_eq!(key(&[], &outer(inner_x)), key(&[], &outer(inner_y.clone())));
        // ...but ∀x. (x > 0 ∧ ∀y. x < 9) refers to the *outer* binder: different key.
        let inner_outer_ref =
            Formula::forall("y", Sort::Int, Formula::lt(Term::var("x"), Term::int(9)));
        assert_ne!(key(&[], &outer(inner_y)), key(&[], &outer(inner_outer_ref)));
    }

    #[test]
    fn reordered_conjuncts_do_not_collide() {
        let p = Formula::pred("p", vec![Term::var("x")]);
        let q = Formula::pred("q", vec![Term::var("y")]);
        let env = int_env(&["x", "y"]);
        let pq = Formula::And(vec![p.clone(), q.clone()]);
        let qp = Formula::And(vec![q, p]);
        assert_ne!(key(&env, &pq), key(&env, &qp));
    }

    #[test]
    fn swapped_predicates_do_not_collide() {
        // p(x) ∧ q(y) vs q(x) ∧ p(y): same shape after naive renaming, different meaning.
        let env = int_env(&["x", "y"]);
        let f = Formula::And(vec![
            Formula::pred("p", vec![Term::var("x")]),
            Formula::pred("q", vec![Term::var("y")]),
        ]);
        let g = Formula::And(vec![
            Formula::pred("q", vec![Term::var("x")]),
            Formula::pred("p", vec![Term::var("y")]),
        ]);
        assert_ne!(key(&env, &f), key(&env, &g));
    }

    #[test]
    fn distinct_sorts_with_same_display_name_do_not_collide() {
        // Sort::Int and Sort::Named("int") both display as "int" but must key differently.
        let f = Formula::pred("p", vec![Term::var("x")]);
        let as_int = vec![("x".to_string(), Sort::Int)];
        let as_named = vec![("x".to_string(), Sort::named("int"))];
        assert_ne!(key(&as_int, &f), key(&as_named, &f));
    }

    #[test]
    fn declared_and_undeclared_variables_do_not_collide() {
        let f = Formula::pred("p", vec![Term::var("x")]);
        assert_ne!(key(&int_env(&["x"]), &f), key(&[], &f));
    }

    #[test]
    fn crafted_names_cannot_alias_keys() {
        // A predicate named "p(v$k0;)" must not produce the key of p applied to a variable.
        let env = int_env(&["x"]);
        let f = Formula::pred("p", vec![Term::var("x")]);
        let crafted = Formula::pred("p(v$k0;)", vec![]);
        assert_ne!(key(&env, &f), key(&env, &crafted));
    }

    #[test]
    fn control_characters_in_names_are_escaped_out_of_keys() {
        // The disk log stores one `<verdict>\t<key>\n` record per line, so keys must never
        // contain raw tabs or newlines, and the escaping must stay injective.
        let f = Formula::pred("p\n1\tinjected", vec![]);
        let k = key(&[], &f);
        assert!(
            !k.contains('\n') && !k.contains('\t'),
            "raw control chars leaked: {k:?}"
        );
        // A name spelling out the escape sequence must not collide with the escaped name.
        let spelled = Formula::pred("p\\x0a1\\x09injected", vec![]);
        assert_ne!(key(&[], &f), key(&[], &spelled));
    }

    #[test]
    fn unused_context_variables_are_dropped() {
        let f = Formula::lt(Term::var("x"), Term::int(0));
        assert_eq!(
            key(&int_env(&["x"]), &f),
            key(&int_env(&["x", "unused"]), &f)
        );
    }

    #[test]
    fn canonical_form_is_alpha_renamed_and_solvable() {
        let f = Formula::lt(Term::var("n"), Term::var("m"));
        let c = canonicalize(&int_env(&["n", "m"]), &f);
        assert_eq!(
            c.vars,
            vec![
                ("$k0".to_string(), Sort::Int),
                ("$k1".to_string(), Sort::Int)
            ]
        );
        assert_eq!(c.formula, Formula::lt(Term::var("$k0"), Term::var("$k1")));
        let mut solver = hat_logic::Solver::default();
        assert!(solver.is_satisfiable(&c.vars, &c.formula));
    }
}
