//! The shared verdict cache: sharded concurrent maps from canonical keys to verdicts,
//! optionally fronting an append-only disk log so repeated runs start warm.
//!
//! Five kinds of entries share the cache:
//!
//! * **Solver verdicts** (`S` records): one satisfiability bit per canonical query key.
//! * **Inclusion verdicts** (`I` records): one bit per canonical automata-inclusion key —
//!   a hit skips minterm construction and DFA building entirely.
//! * **DFA-shape verdicts** (`D` records): one bit per canonical per-group product walk,
//!   keyed by [`crate::canon::shape_key`] (automaton pair + pruned alphabet + state
//!   bound, no axiom fingerprint) — a hit skips the product walk across contexts and
//!   benchmarks.
//! * **Minterm sets** (`M` records): whole memoised alphabet transformations keyed by
//!   [`crate::canon::alphabet_key`], persisted through the line-safe atom serialisation
//!   of [`crate::atomio`] — a warm run skips minterm enumeration entirely.
//! * **DFA transitions** (in-memory only): memoised `state × answers → successor`
//!   derivatives keyed by [`crate::canon::transition_key`]. Successor formulas are cheap
//!   to rebuild from warm solver verdicts, so they are not persisted.
//!
//! # Disk log format (v4)
//!
//! The log is a plain text file; the full record grammar, the migration rules and the
//! torn-payload semantics are specified in `docs/CACHE_FORMAT.md` at the repository
//! root. In short: the first
//! line is the header `hat-engine-cache v4`; every further line is either
//! `<kind><verdict>\t<key>` where `<kind>` is `S` (solver), `I` (inclusion) or `D`
//! (DFA shape) and `<verdict>` is `0` or `1`, or `M\t<key>\t<payload>` where `<payload>`
//! is an [`crate::atomio`] minterm-set record. Keys and payloads never contain tabs or
//! newlines. Appends are line-atomic under a mutex, so a log written by one run can be
//! replayed by the next.
//!
//! Logs with the previous `v1` header (`<verdict>\t<key>` solver records only), `v2`
//! header (`S`/`I` records only) or `v3` header (`S`/`I`/`M` records) are **migrated**:
//! their entries are loaded and the file is atomically rewritten in the v4 format. A log
//! with any other header — e.g. written by a future format version — is ignored
//! wholesale and counted as stale rather than half-trusted (the cache runs in-memory and
//! never writes to the foreign file). Malformed lines (a torn final write, an
//! unparseable minterm payload) are skipped and counted as stale.

use crate::atomio::{parse_minterm_set, ser_minterm_set};
use hat_sfa::{MintermSet, Sfa};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::hash::{Hash, Hasher};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

const HEADER_V4: &str = "hat-engine-cache v4";
const HEADER_V3: &str = "hat-engine-cache v3";
const HEADER_V2: &str = "hat-engine-cache v2";
const HEADER_V1: &str = "hat-engine-cache v1";
const SHARDS: usize = 64;

/// The namespace of a boolean cache entry, doubling as its disk-record kind tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Solver,
    Inclusion,
    Shape,
}

impl Kind {
    fn tag(self) -> char {
        match self {
            Kind::Solver => 'S',
            Kind::Inclusion => 'I',
            Kind::Shape => 'D',
        }
    }

    const ALL: [Kind; 3] = [Kind::Solver, Kind::Inclusion, Kind::Shape];
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Queries answered from the in-memory map (including entries loaded from disk).
    pub hits: usize,
    /// Queries that missed and had to be solved.
    pub misses: usize,
    /// Entries replayed from the disk log at startup.
    pub disk_loaded: usize,
    /// Disk-log lines (or whole files) ignored as unreadable or from another version.
    pub stale: usize,
    /// Alphabet transformations answered from the minterm-set memo.
    pub minterm_hits: usize,
    /// Alphabet transformations that had to be enumerated.
    pub minterm_misses: usize,
    /// DFA transitions answered from the transition memo.
    pub transition_hits: usize,
    /// DFA transitions that had to be derived.
    pub transition_misses: usize,
}

impl CacheStatsSnapshot {
    /// Fraction of lookups answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicUsize,
    misses: AtomicUsize,
    disk_loaded: AtomicUsize,
    stale: AtomicUsize,
    minterm_hits: AtomicUsize,
    minterm_misses: AtomicUsize,
    transition_hits: AtomicUsize,
    transition_misses: AtomicUsize,
}

/// The concurrent verdict cache shared by every worker of a verification run.
pub struct QueryCache {
    /// One shard set per entry kind (indexed by `Kind as usize`), so lookups hash the
    /// caller's key directly instead of allocating a tagged copy per access.
    shards: [Vec<RwLock<HashMap<String, bool>>>; 3],
    minterms: RwLock<HashMap<String, MintermSet>>,
    transitions: RwLock<HashMap<String, Sfa>>,
    log: Option<Mutex<BufWriter<File>>>,
    path: Option<PathBuf>,
    counters: CacheCounters,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("entries", &self.len())
            .field("path", &self.path)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl QueryCache {
    fn empty() -> Self {
        let shard_set = || (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect();
        QueryCache {
            shards: [shard_set(), shard_set(), shard_set()],
            minterms: RwLock::new(HashMap::new()),
            transitions: RwLock::new(HashMap::new()),
            log: None,
            path: None,
            counters: CacheCounters::default(),
        }
    }

    /// A purely in-memory cache (no persistence).
    ///
    /// ```
    /// use hat_engine::QueryCache;
    ///
    /// let cache = QueryCache::in_memory();
    /// assert_eq!(cache.lookup("sat|k"), None);
    /// cache.insert("sat|k".into(), true);
    /// assert_eq!(cache.lookup("sat|k"), Some(true));
    /// let stats = cache.stats();
    /// assert_eq!((stats.hits, stats.misses), (1, 1));
    /// ```
    pub fn in_memory() -> Self {
        Self::empty()
    }

    /// A cache backed by an append-only log at `path`. Existing entries are replayed into
    /// memory (warm start) and new verdicts are appended. A `v1`, `v2` or `v3` log is
    /// migrated to the current format in place (atomically, via a temporary file). A file
    /// whose header belongs to any other format version is left untouched: the cache runs
    /// in-memory only and counts the file as stale (destroying data a newer binary wrote
    /// would be worse than running cold).
    pub fn with_disk_log(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut cache = Self::empty();
        let path = path.as_ref();
        cache.path = Some(path.to_path_buf());
        // How to open the log after reading: start a fresh v4 file, append to the
        // existing v4 file, or rewrite a migrated v1/v2/v3 file.
        let mut fresh = true;
        let mut migrate = false;
        if path.exists() {
            let reader = BufReader::new(File::open(path)?);
            let mut lines = reader.lines();
            match lines.next() {
                Some(Ok(header))
                    if header == HEADER_V4 || header == HEADER_V3 || header == HEADER_V2 =>
                {
                    // v2 records are a subset of v3 records (no `M` lines) and v3
                    // records a subset of v4 records (no `D` lines), so one loop replays
                    // all three; a v2/v3 file is rewritten under the current header.
                    fresh = false;
                    migrate = header != HEADER_V4;
                    for line in lines {
                        let Ok(line) = line else {
                            cache.counters.stale.fetch_add(1, Ordering::Relaxed);
                            continue;
                        };
                        match line.split_once('\t') {
                            Some(("S0", key)) => cache.load_entry(Kind::Solver, key, false),
                            Some(("S1", key)) => cache.load_entry(Kind::Solver, key, true),
                            Some(("I0", key)) => cache.load_entry(Kind::Inclusion, key, false),
                            Some(("I1", key)) => cache.load_entry(Kind::Inclusion, key, true),
                            Some(("D0", key)) => cache.load_entry(Kind::Shape, key, false),
                            Some(("D1", key)) => cache.load_entry(Kind::Shape, key, true),
                            Some(("M", rest)) => match rest.split_once('\t') {
                                Some((key, payload)) => match parse_minterm_set(payload) {
                                    Some(set) => {
                                        cache
                                            .minterms
                                            .get_mut()
                                            .expect("minterm memo poisoned")
                                            .insert(key.to_string(), set);
                                        cache.counters.disk_loaded.fetch_add(1, Ordering::Relaxed);
                                    }
                                    None => {
                                        cache.counters.stale.fetch_add(1, Ordering::Relaxed);
                                    }
                                },
                                None => {
                                    cache.counters.stale.fetch_add(1, Ordering::Relaxed);
                                }
                            },
                            _ => {
                                cache.counters.stale.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                Some(Ok(header)) if header == HEADER_V1 => {
                    // The previous schema: untyped `<verdict>\t<key>` solver records.
                    // Load them, then rewrite the whole file in the current format.
                    fresh = false;
                    migrate = true;
                    for line in lines {
                        let Ok(line) = line else {
                            cache.counters.stale.fetch_add(1, Ordering::Relaxed);
                            continue;
                        };
                        match line.split_once('\t') {
                            Some(("0", key)) => cache.load_entry(Kind::Solver, key, false),
                            Some(("1", key)) => cache.load_entry(Kind::Solver, key, true),
                            _ => {
                                cache.counters.stale.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                Some(_) => {
                    // Unknown header: a different format version (or not a cache file at
                    // all). Do not write to it.
                    cache.counters.stale.fetch_add(1, Ordering::Relaxed);
                    return Ok(cache);
                }
                None => {}
            }
        }
        if migrate {
            cache.rewrite_log(path)?;
        }
        let mut file = if fresh {
            // Only reached for a missing or empty file.
            let file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?;
            BufWriter::new(file)
        } else {
            let mut existing = OpenOptions::new().read(true).append(true).open(path)?;
            // A run killed mid-write can leave the final line without its newline;
            // appending directly after it would merge two records into one unparseable
            // line. Terminate the torn line first.
            use std::io::{Read, Seek, SeekFrom};
            let len = existing.seek(SeekFrom::End(0))?;
            if len > 0 {
                existing.seek(SeekFrom::End(-1))?;
                let mut last = [0u8; 1];
                existing.read_exact(&mut last)?;
                if last != [b'\n'] {
                    existing.write_all(b"\n")?;
                }
            }
            BufWriter::new(existing)
        };
        if fresh {
            writeln!(file, "{HEADER_V4}")?;
        }
        cache.log = Some(Mutex::new(file));
        Ok(cache)
    }

    /// Atomically rewrites the log at `path` with the current in-memory entries in the
    /// v4 format (used to migrate a v1, v2 or v3 log).
    fn rewrite_log(&self, path: &Path) -> std::io::Result<()> {
        let mut tmp = path.to_path_buf();
        tmp.set_extension("migrating");
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            writeln!(out, "{HEADER_V4}")?;
            for kind in Kind::ALL {
                for shard in &self.shards[kind as usize] {
                    for (key, verdict) in shard.read().expect("cache shard poisoned").iter() {
                        writeln!(out, "{}{}\t{key}", kind.tag(), u8::from(*verdict))?;
                    }
                }
            }
            for (key, set) in self.minterms.read().expect("minterm memo poisoned").iter() {
                writeln!(out, "M\t{key}\t{}", ser_minterm_set(set))?;
            }
            out.flush()?;
        }
        std::fs::rename(&tmp, path)
    }

    fn load_entry(&mut self, kind: Kind, key: &str, verdict: bool) {
        let shard = Self::shard_of(key);
        self.shards[kind as usize][shard]
            .write()
            .expect("cache shard poisoned")
            .insert(key.to_string(), verdict);
        self.counters.disk_loaded.fetch_add(1, Ordering::Relaxed);
    }

    fn shard_of(key: &str) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    fn lookup_kind(&self, kind: Kind, key: &str) -> Option<bool> {
        let shard = Self::shard_of(key);
        let found = self.shards[kind as usize][shard]
            .read()
            .expect("cache shard poisoned")
            .get(key)
            .copied();
        match found {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert_kind(&self, kind: Kind, key: String, verdict: bool) {
        let shard = Self::shard_of(&key);
        let fresh = self.shards[kind as usize][shard]
            .write()
            .expect("cache shard poisoned")
            .insert(key.clone(), verdict)
            .is_none();
        if fresh {
            if let Some(log) = &self.log {
                let mut log = log.lock().expect("cache log poisoned");
                let _ = writeln!(log, "{}{}\t{}", kind.tag(), u8::from(verdict), key);
            }
        }
    }

    /// Looks a solver-verdict key up, counting a hit or a miss.
    pub fn lookup(&self, key: &str) -> Option<bool> {
        self.lookup_kind(Kind::Solver, key)
    }

    /// Records a solver verdict, appending it to the disk log when one is attached.
    /// Racing inserts of the same key are harmless: canonical keys determine their
    /// verdict.
    pub fn insert(&self, key: String, verdict: bool) {
        self.insert_kind(Kind::Solver, key, verdict);
    }

    /// Looks an inclusion-verdict key up, counting a hit or a miss.
    pub fn lookup_inclusion(&self, key: &str) -> Option<bool> {
        self.lookup_kind(Kind::Inclusion, key)
    }

    /// Records an automata-inclusion verdict.
    pub fn insert_inclusion(&self, key: String, verdict: bool) {
        self.insert_kind(Kind::Inclusion, key, verdict);
    }

    /// Looks a DFA-shape verdict key up, counting a hit or a miss.
    pub fn lookup_shape(&self, key: &str) -> Option<bool> {
        self.lookup_kind(Kind::Shape, key)
    }

    /// Records a per-group DFA-shape verdict (see [`crate::canon::shape_key`]),
    /// appending it to the disk log when one is attached.
    pub fn insert_shape(&self, key: String, verdict: bool) {
        self.insert_kind(Kind::Shape, key, verdict);
    }

    /// Looks a memoised minterm set up by its canonical alphabet key.
    pub fn lookup_minterms(&self, key: &str) -> Option<MintermSet> {
        let found = self
            .minterms
            .read()
            .expect("minterm memo poisoned")
            .get(key)
            .cloned();
        match found {
            Some(_) => self.counters.minterm_hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.minterm_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoises an enumerated minterm set, appending it to the disk log when one is
    /// attached (racing stores of the same key are harmless because enumeration is a
    /// pure function of the canonical key).
    pub fn insert_minterms(&self, key: String, set: MintermSet) {
        let fresh = self
            .minterms
            .write()
            .expect("minterm memo poisoned")
            .insert(key.clone(), set.clone())
            .is_none();
        if fresh {
            if let Some(log) = &self.log {
                let mut log = log.lock().expect("cache log poisoned");
                let _ = writeln!(log, "M\t{key}\t{}", ser_minterm_set(&set));
            }
        }
    }

    /// Looks a memoised DFA transition up by its canonical transition key.
    pub fn lookup_transition(&self, key: &str) -> Option<Sfa> {
        let found = self
            .transitions
            .read()
            .expect("transition memo poisoned")
            .get(key)
            .cloned();
        match found {
            Some(_) => self
                .counters
                .transition_hits
                .fetch_add(1, Ordering::Relaxed),
            None => self
                .counters
                .transition_misses
                .fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoises a DFA transition (in-memory only: successors are cheap to rebuild from
    /// warm solver verdicts; racing stores of the same key are harmless because the
    /// successor is a pure function of the canonical key).
    pub fn insert_transition(&self, key: String, succ: Sfa) {
        self.transitions
            .write()
            .expect("transition memo poisoned")
            .insert(key, succ);
    }

    /// Flushes the disk log (called at the end of a run; also happens on drop).
    pub fn flush(&self) {
        if let Some(log) = &self.log {
            let _ = log.lock().expect("cache log poisoned").flush();
        }
    }

    /// Number of cached verdicts (both kinds).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .flatten()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the hit/miss/disk counters.
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            disk_loaded: self.counters.disk_loaded.load(Ordering::Relaxed),
            stale: self.counters.stale.load(Ordering::Relaxed),
            minterm_hits: self.counters.minterm_hits.load(Ordering::Relaxed),
            minterm_misses: self.counters.minterm_misses.load(Ordering::Relaxed),
            transition_hits: self.counters.transition_hits.load(Ordering::Relaxed),
            transition_misses: self.counters.transition_misses.load(Ordering::Relaxed),
        }
    }
}

impl Drop for QueryCache {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hat-engine-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn lookup_miss_then_hit() {
        let cache = QueryCache::in_memory();
        assert_eq!(cache.lookup("k"), None);
        cache.insert("k".into(), true);
        assert_eq!(cache.lookup("k"), Some(true));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn disk_log_roundtrip() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let cache = QueryCache::with_disk_log(&path).unwrap();
            cache.insert("alpha".into(), true);
            cache.insert("beta".into(), false);
            cache.flush();
        }
        let warm = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.stats().disk_loaded, 2);
        assert_eq!(warm.lookup("alpha"), Some(true));
        assert_eq!(warm.lookup("beta"), Some(false));
        assert_eq!(warm.stats().stale, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_inserts_are_logged_once() {
        let path = temp_path("dedup");
        let _ = std::fs::remove_file(&path);
        {
            let cache = QueryCache::with_disk_log(&path).unwrap();
            cache.insert("k".into(), true);
            cache.insert("k".into(), true);
        }
        let warm = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(warm.stats().disk_loaded, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_header_is_ignored_and_left_untouched() {
        let path = temp_path("stale");
        let foreign = "hat-engine-cache v999\nS1\tk\n";
        std::fs::write(&path, foreign).unwrap();
        let cache = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().stale, 1);
        // The cache degrades to in-memory: inserts work but are not persisted, and the
        // foreign file's contents survive byte for byte.
        cache.insert("k2".into(), false);
        cache.flush();
        drop(cache);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), foreign);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_skipped_and_terminated_before_appending() {
        let path = temp_path("torn");
        std::fs::write(
            &path,
            format!("{HEADER_V4}\nS1\tgood\nmalformed-without-tab"),
        )
        .unwrap();
        {
            let cache = QueryCache::with_disk_log(&path).unwrap();
            assert_eq!(cache.lookup("good"), Some(true));
            assert_eq!(cache.stats().stale, 1);
            // Appending after the torn line must not merge records into one line.
            cache.insert("fresh".into(), true);
        }
        let warm = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("good"), Some(true));
        assert_eq!(warm.lookup("fresh"), Some(true));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v1_logs_are_migrated_not_misread() {
        let path = temp_path("migrate-v1");
        std::fs::write(
            &path,
            "hat-engine-cache v1\n1\tsat|k1\n0\tsat|k2\nmalformed",
        )
        .unwrap();
        let cache = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(cache.lookup("sat|k1"), Some(true));
        assert_eq!(cache.lookup("sat|k2"), Some(false));
        assert_eq!(cache.stats().disk_loaded, 2);
        assert_eq!(cache.stats().stale, 1, "the torn v1 line is skipped");
        // New entries of both kinds append to the migrated file.
        cache.insert_inclusion("incl|k3".into(), true);
        drop(cache);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents.starts_with(HEADER_V4),
            "the file must be rewritten with the current header, got: {contents:?}"
        );
        let warm = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("sat|k1"), Some(true));
        assert_eq!(warm.lookup("sat|k2"), Some(false));
        assert_eq!(warm.lookup_inclusion("incl|k3"), Some(true));
        assert_eq!(warm.stats().stale, 0, "a migrated log replays cleanly");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v2_logs_are_migrated_to_v4() {
        let path = temp_path("migrate-v2");
        std::fs::write(&path, format!("{HEADER_V2}\nS1\tsat|k1\nI0\tincl|k2\n")).unwrap();
        let cache = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(cache.lookup("sat|k1"), Some(true));
        assert_eq!(cache.lookup_inclusion("incl|k2"), Some(false));
        // Minterm sets now persist alongside the migrated records.
        cache.insert_minterms("mt|k3".into(), MintermSet::default());
        drop(cache);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents.starts_with(HEADER_V4),
            "v2 logs must be rewritten under the v4 header, got: {contents:?}"
        );
        let warm = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("sat|k1"), Some(true));
        assert_eq!(warm.lookup_inclusion("incl|k2"), Some(false));
        assert!(warm.lookup_minterms("mt|k3").is_some());
        assert_eq!(warm.stats().stale, 0, "a migrated log replays cleanly");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v3_logs_are_migrated_to_v4() {
        let path = temp_path("migrate-v3");
        std::fs::write(
            &path,
            format!("{HEADER_V3}\nS1\tsat|k1\nI0\tincl|k2\nM\tmt|k3\tU0;M0;P0;Q0;\n"),
        )
        .unwrap();
        let cache = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(cache.lookup("sat|k1"), Some(true));
        assert_eq!(cache.lookup_inclusion("incl|k2"), Some(false));
        assert!(cache.lookup_minterms("mt|k3").is_some());
        // Shape verdicts now persist alongside the migrated records.
        cache.insert_shape("shape|k4".into(), true);
        drop(cache);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents.starts_with(HEADER_V4),
            "v3 logs must be rewritten under the v4 header, got: {contents:?}"
        );
        let warm = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("sat|k1"), Some(true));
        assert_eq!(warm.lookup_inclusion("incl|k2"), Some(false));
        assert!(warm.lookup_minterms("mt|k3").is_some());
        assert_eq!(warm.lookup_shape("shape|k4"), Some(true));
        assert_eq!(warm.stats().stale, 0, "a migrated log replays cleanly");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shape_verdicts_roundtrip_through_the_disk_log() {
        let path = temp_path("shape-roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let cache = QueryCache::with_disk_log(&path).unwrap();
            assert_eq!(cache.lookup_shape("shape|a"), None);
            cache.insert_shape("shape|a".into(), true);
            cache.insert_shape("shape|b".into(), false);
        }
        let warm = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(warm.stats().disk_loaded, 2);
        assert_eq!(warm.lookup_shape("shape|a"), Some(true));
        assert_eq!(warm.lookup_shape("shape|b"), Some(false));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn solver_inclusion_and_shape_namespaces_never_collide() {
        let cache = QueryCache::in_memory();
        cache.insert("shared-key".into(), true);
        assert_eq!(cache.lookup_inclusion("shared-key"), None);
        assert_eq!(cache.lookup_shape("shared-key"), None);
        cache.insert_inclusion("shared-key".into(), false);
        cache.insert_shape("shared-key".into(), true);
        assert_eq!(cache.lookup("shared-key"), Some(true));
        assert_eq!(cache.lookup_inclusion("shared-key"), Some(false));
        assert_eq!(cache.lookup_shape("shared-key"), Some(true));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn inclusion_verdicts_roundtrip_through_the_disk_log() {
        let path = temp_path("incl-roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let cache = QueryCache::with_disk_log(&path).unwrap();
            cache.insert_inclusion("incl|a".into(), true);
            cache.insert("sat|b".into(), false);
        }
        let warm = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(warm.stats().disk_loaded, 2);
        assert_eq!(warm.lookup_inclusion("incl|a"), Some(true));
        assert_eq!(warm.lookup("sat|b"), Some(false));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn minterm_sets_roundtrip_through_the_disk_log() {
        use hat_logic::{Atom, Term};
        use hat_sfa::Minterm;
        let path = temp_path("minterm-roundtrip");
        let _ = std::fs::remove_file(&path);
        let set = MintermSet {
            minterms: vec![Minterm {
                op: "put".into(),
                assignment: vec![(Atom::Eq(Term::var("#arg0"), Term::var("$k0")), true)],
            }],
            uniform_literals: vec![Atom::Lt(Term::int(0), Term::var("$k0"))],
            pruned: 3,
            enum_queries: 5,
            from_memo: false,
        };
        {
            let cache = QueryCache::with_disk_log(&path).unwrap();
            assert!(cache.lookup_minterms("mt|x").is_none());
            cache.insert_minterms("mt|x".into(), set.clone());
            assert!(cache.lookup_minterms("mt|x").is_some());
            let stats = cache.stats();
            assert_eq!((stats.minterm_hits, stats.minterm_misses), (1, 1));
        }
        let warm = QueryCache::with_disk_log(&path).unwrap();
        let replayed = warm
            .lookup_minterms("mt|x")
            .expect("minterm sets are persisted as M records");
        assert_eq!(replayed.minterms, set.minterms);
        assert_eq!(replayed.uniform_literals, set.uniform_literals);
        assert_eq!(warm.stats().stale, 0);
        assert_eq!(warm.stats().disk_loaded, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_minterm_payload_degrades_to_a_cold_entry() {
        let path = temp_path("torn-minterm");
        std::fs::write(
            &path,
            format!("{HEADER_V4}\nS1\tgood\nM\tmt|x\tU0;M1;O3#put"),
        )
        .unwrap();
        let cache = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(cache.lookup("good"), Some(true));
        assert!(
            cache.lookup_minterms("mt|x").is_none(),
            "a torn payload must not produce a wrong alphabet"
        );
        assert_eq!(cache.stats().stale, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transition_memo_is_in_memory_only() {
        let path = temp_path("transition-memo");
        let _ = std::fs::remove_file(&path);
        {
            let cache = QueryCache::with_disk_log(&path).unwrap();
            assert!(cache.lookup_transition("tr|x").is_none());
            cache.insert_transition("tr|x".into(), Sfa::Zero);
            assert_eq!(cache.lookup_transition("tr|x"), Some(Sfa::Zero));
            let stats = cache.stats();
            assert_eq!((stats.transition_hits, stats.transition_misses), (1, 1));
        }
        let warm = QueryCache::with_disk_log(&path).unwrap();
        assert!(
            warm.lookup_transition("tr|x").is_none(),
            "transitions are not persisted"
        );
        assert_eq!(warm.stats().stale, 0, "the memo must not pollute the log");
        let _ = std::fs::remove_file(&path);
    }
}
