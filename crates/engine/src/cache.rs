//! The shared solver-query cache: a sharded concurrent map from canonical query keys to
//! verdicts, optionally fronting an append-only disk log so repeated runs start warm.
//!
//! # Disk log format
//!
//! The log is a plain text file. The first line is the header `hat-engine-cache v1`; every
//! further line is `<verdict>\t<key>` where `<verdict>` is `0` (unsatisfiable) or `1`
//! (satisfiable) and `<key>` is the canonical key from [`crate::canon`] (which never
//! contains tabs or newlines). Appends are line-atomic under a mutex, so a log written by
//! one run can be replayed by the next; a log with a different header — e.g. written by a
//! future format version — is ignored wholesale and counted as stale rather than
//! half-trusted. Malformed lines (a torn final write) are skipped and counted as stale.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::hash::{Hash, Hasher};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

const HEADER: &str = "hat-engine-cache v1";
const SHARDS: usize = 64;

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Queries answered from the in-memory map (including entries loaded from disk).
    pub hits: usize,
    /// Queries that missed and had to be solved.
    pub misses: usize,
    /// Entries replayed from the disk log at startup.
    pub disk_loaded: usize,
    /// Disk-log lines (or whole files) ignored as unreadable or from another version.
    pub stale: usize,
}

impl CacheStatsSnapshot {
    /// Fraction of lookups answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicUsize,
    misses: AtomicUsize,
    disk_loaded: AtomicUsize,
    stale: AtomicUsize,
}

/// The concurrent verdict cache shared by every worker of a verification run.
pub struct QueryCache {
    shards: Vec<RwLock<HashMap<String, bool>>>,
    log: Option<Mutex<BufWriter<File>>>,
    path: Option<PathBuf>,
    counters: CacheCounters,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("entries", &self.len())
            .field("path", &self.path)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl QueryCache {
    fn empty() -> Self {
        QueryCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            log: None,
            path: None,
            counters: CacheCounters::default(),
        }
    }

    /// A purely in-memory cache (no persistence).
    pub fn in_memory() -> Self {
        Self::empty()
    }

    /// A cache backed by an append-only log at `path`. Existing entries are replayed into
    /// memory (warm start) and new verdicts are appended. A file whose header belongs to
    /// a different format version is left untouched: the cache runs in-memory only and
    /// counts the file as stale (destroying data a newer binary wrote would be worse
    /// than running cold).
    pub fn with_disk_log(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut cache = Self::empty();
        let path = path.as_ref();
        cache.path = Some(path.to_path_buf());
        let mut needs_header = true;
        if path.exists() {
            let reader = BufReader::new(File::open(path)?);
            let mut lines = reader.lines();
            match lines.next() {
                Some(Ok(header)) if header == HEADER => {
                    needs_header = false;
                    for line in lines {
                        let Ok(line) = line else {
                            cache.counters.stale.fetch_add(1, Ordering::Relaxed);
                            continue;
                        };
                        match line.split_once('\t') {
                            Some(("0", key)) => cache.load_entry(key, false),
                            Some(("1", key)) => cache.load_entry(key, true),
                            _ => {
                                cache.counters.stale.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                Some(_) => {
                    // Unknown header: a different format version (or not a cache file at
                    // all). Do not write to it.
                    cache.counters.stale.fetch_add(1, Ordering::Relaxed);
                    return Ok(cache);
                }
                None => {}
            }
        }
        let mut file = if needs_header {
            // Only reached for a missing or empty file.
            let file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?;
            BufWriter::new(file)
        } else {
            let mut existing = OpenOptions::new().read(true).append(true).open(path)?;
            // A run killed mid-write can leave the final line without its newline;
            // appending directly after it would merge two records into one unparseable
            // line. Terminate the torn line first.
            use std::io::{Read, Seek, SeekFrom};
            let len = existing.seek(SeekFrom::End(0))?;
            if len > 0 {
                existing.seek(SeekFrom::End(-1))?;
                let mut last = [0u8; 1];
                existing.read_exact(&mut last)?;
                if last != [b'\n'] {
                    existing.write_all(b"\n")?;
                }
            }
            BufWriter::new(existing)
        };
        if needs_header {
            writeln!(file, "{HEADER}")?;
        }
        cache.log = Some(Mutex::new(file));
        Ok(cache)
    }

    fn load_entry(&mut self, key: &str, verdict: bool) {
        let shard = self.shard_of(key);
        self.shards[shard]
            .write()
            .expect("cache shard poisoned")
            .insert(key.to_string(), verdict);
        self.counters.disk_loaded.fetch_add(1, Ordering::Relaxed);
    }

    fn shard_of(&self, key: &str) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    /// Looks a key up, counting a hit or a miss.
    pub fn lookup(&self, key: &str) -> Option<bool> {
        let shard = self.shard_of(key);
        let found = self.shards[shard]
            .read()
            .expect("cache shard poisoned")
            .get(key)
            .copied();
        match found {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Records a verdict, appending it to the disk log when one is attached. Racing
    /// inserts of the same key are harmless: canonical keys determine their verdict.
    pub fn insert(&self, key: String, verdict: bool) {
        let shard = self.shard_of(&key);
        let fresh = self.shards[shard]
            .write()
            .expect("cache shard poisoned")
            .insert(key.clone(), verdict)
            .is_none();
        if fresh {
            if let Some(log) = &self.log {
                let mut log = log.lock().expect("cache log poisoned");
                let _ = writeln!(log, "{}\t{}", if verdict { "1" } else { "0" }, key);
            }
        }
    }

    /// Flushes the disk log (called at the end of a run; also happens on drop).
    pub fn flush(&self) {
        if let Some(log) = &self.log {
            let _ = log.lock().expect("cache log poisoned").flush();
        }
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the hit/miss/disk counters.
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            disk_loaded: self.counters.disk_loaded.load(Ordering::Relaxed),
            stale: self.counters.stale.load(Ordering::Relaxed),
        }
    }
}

impl Drop for QueryCache {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hat-engine-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn lookup_miss_then_hit() {
        let cache = QueryCache::in_memory();
        assert_eq!(cache.lookup("k"), None);
        cache.insert("k".into(), true);
        assert_eq!(cache.lookup("k"), Some(true));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn disk_log_roundtrip() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let cache = QueryCache::with_disk_log(&path).unwrap();
            cache.insert("alpha".into(), true);
            cache.insert("beta".into(), false);
            cache.flush();
        }
        let warm = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.stats().disk_loaded, 2);
        assert_eq!(warm.lookup("alpha"), Some(true));
        assert_eq!(warm.lookup("beta"), Some(false));
        assert_eq!(warm.stats().stale, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_inserts_are_logged_once() {
        let path = temp_path("dedup");
        let _ = std::fs::remove_file(&path);
        {
            let cache = QueryCache::with_disk_log(&path).unwrap();
            cache.insert("k".into(), true);
            cache.insert("k".into(), true);
        }
        let warm = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(warm.stats().disk_loaded, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_header_is_ignored_and_left_untouched() {
        let path = temp_path("stale");
        let foreign = "hat-engine-cache v999\n1\tk\n";
        std::fs::write(&path, foreign).unwrap();
        let cache = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().stale, 1);
        // The cache degrades to in-memory: inserts work but are not persisted, and the
        // foreign file's contents survive byte for byte.
        cache.insert("k2".into(), false);
        cache.flush();
        drop(cache);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), foreign);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_skipped_and_terminated_before_appending() {
        let path = temp_path("torn");
        std::fs::write(&path, format!("{HEADER}\n1\tgood\nmalformed-without-tab")).unwrap();
        {
            let cache = QueryCache::with_disk_log(&path).unwrap();
            assert_eq!(cache.lookup("good"), Some(true));
            assert_eq!(cache.stats().stale, 1);
            // Appending after the torn line must not merge records into one line.
            cache.insert("fresh".into(), true);
        }
        let warm = QueryCache::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("good"), Some(true));
        assert_eq!(warm.lookup("fresh"), Some(true));
        let _ = std::fs::remove_file(&path);
    }
}
