//! The shared tiered memo store: one [`SharedTier`] per record kind, optionally backed
//! by the LSM-structured disk store of [`crate::lsm`] so repeated runs start warm, and
//! optionally fronted by per-worker [`crate::tier::LocalTier`]s (composed in
//! [`crate::oracle::CachingOracle`]) so hot lookups touch no lock at all.
//!
//! Six record kinds share the store (see [`RecordKind`]):
//!
//! * **Solver verdicts** (`S` records): one satisfiability bit per canonical query key.
//! * **Inclusion verdicts** (`I` records): one bit per canonical automata-inclusion key —
//!   a hit skips minterm construction and DFA building entirely.
//! * **DFA-shape verdicts** (`D` records): one bit per canonical per-group product walk,
//!   keyed by [`crate::canon::shape_key`] (automaton pair + pruned alphabet + state
//!   bound, no axiom fingerprint) — a hit skips the product walk across contexts and
//!   benchmarks.
//! * **Minterm sets** (`M` records): whole memoised alphabet transformations keyed by
//!   [`crate::canon::alphabet_key`], persisted through the line-safe atom serialisation
//!   of [`crate::atomio`] — a warm run skips minterm enumeration entirely.
//! * **DFA transitions** (`T` records): memoised `state × answers → successor`
//!   derivatives keyed by [`crate::canon::transition_key`], persisted since v6 through
//!   [`crate::atomio::ser_sfa`] — a warm run re-derives nothing.
//! * **Subsumption verdicts** (`U` records): one simulation-preorder bit per canonical
//!   residual pair, keyed by [`crate::canon::subsumption_key`] (no axiom fingerprint,
//!   no state bound — a semantic fact about the pair) — a hit lets the antichain walk
//!   prune a product pair whose transition rows were never even derived this run.
//!
//! # Disk format (v6)
//!
//! Since v6 the persistent tier is a small LSM store (see [`crate::lsm`] for the
//! mechanics and `docs/CACHE_FORMAT.md` for the full grammar): the cache path itself is
//! a *manifest* (`hat-engine-cache v6` header plus one line per live segment), and the
//! records live in sorted, fingerprint-partitioned, per-kind *segment files* under
//! `<path>.d/`. Fresh records are appended to an in-memory memtable and reach disk when
//! the memtable rotates (size threshold, end-of-run flush, or drop) — a dedicated
//! background thread writes segments, commits the manifest atomically, and merges
//! segment families without taking a single tier lock. Record lines inside segments use
//! the same grammar as the v2–v5 log body (`<kind><verdict>\t<key>` for `S`/`I`/`D`,
//! `M\t<key>\t<payload>`) plus `T\t<key>\t<payload>` transition records.
//!
//! Properties carried over from v5, unchanged:
//!
//! * **Single-writer locking.** Opening takes a sidecar lock (`<path>.lock`, holder PID
//!   inside). A second process finds the lock held and **degrades to in-memory** with a
//!   warning (entries are still replayed read-only for a warm start). A lock whose
//!   holder is dead is reclaimed. [`MemoStore::inspect`] never takes the lock at all —
//!   `marple cache stats` prints honest numbers even while a daemon owns the store.
//! * **Compaction.** [`MemoStore::compact`] (CLI: `marple cache compact`) is now a
//!   *nudge*: it drains the memtable and asks the background thread to merge every
//!   multi-segment family, newest record winning, duplicates and torn lines dropped.
//!   Opening a store whose dead-record share passes a threshold nudges automatically.
//! * **Migration.** Logs with a `v1`–`v5` header are replayed and atomically rewritten
//!   as level-0 segments plus a manifest on first locked open. A file with any other
//!   header is ignored wholesale and counted as stale rather than half-trusted (the
//!   store runs in-memory and never writes to the foreign file). Malformed lines and
//!   torn segments are skipped and counted as stale, never corrupting verdicts.

use crate::atomio::{parse_minterm_set, parse_sfa, ser_minterm_set, ser_sfa};
use crate::lsm::{self, Lsm, LsmConfig, LsmStatsSnapshot, ManifestState};
use crate::tier::{DiskTier, SharedTier};
use hat_sfa::{MintermSet, Sfa};
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const HEADER_V5: &str = "hat-engine-cache v5";
const HEADER_V4: &str = "hat-engine-cache v4";
const HEADER_V3: &str = "hat-engine-cache v3";
const HEADER_V2: &str = "hat-engine-cache v2";
const HEADER_V1: &str = "hat-engine-cache v1";

/// An open-time compaction nudge fires when at least this many dead records are found…
const AUTO_COMPACT_MIN_DEAD: usize = 16;
/// …and they make up at least `1/AUTO_COMPACT_RATIO` of the replayed records.
const AUTO_COMPACT_RATIO: usize = 4;

/// The record kinds of the store, doubling as the disk-record tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecordKind {
    /// Solver verdicts (`S`).
    Solver,
    /// Inclusion verdicts (`I`).
    Inclusion,
    /// DFA-shape verdicts (`D`).
    Shape,
    /// Minterm sets (`M`).
    Minterms,
    /// DFA transitions (`T`, persisted since v6).
    Transition,
    /// Simulation-subsumption verdicts (`U`). A pre-U binary reading a store that
    /// holds them skips the unknown segments and degrades to cold — never wrong.
    Subsumption,
}

impl RecordKind {
    /// The disk tag of this kind: the first byte of its record lines and of its segment
    /// file names.
    pub fn tag(self) -> char {
        match self {
            RecordKind::Solver => 'S',
            RecordKind::Inclusion => 'I',
            RecordKind::Shape => 'D',
            RecordKind::Minterms => 'M',
            RecordKind::Transition => 'T',
            RecordKind::Subsumption => 'U',
        }
    }

    /// A human-readable label (used by `marple cache stats`).
    pub fn label(self) -> &'static str {
        match self {
            RecordKind::Solver => "solver verdicts (S)",
            RecordKind::Inclusion => "inclusion verdicts (I)",
            RecordKind::Shape => "DFA-shape verdicts (D)",
            RecordKind::Minterms => "minterm sets (M)",
            RecordKind::Transition => "DFA transitions (T)",
            RecordKind::Subsumption => "subsumption verdicts (U)",
        }
    }

    /// The boolean-verdict kinds, in disk order.
    pub const BOOL_KINDS: [RecordKind; 4] = [
        RecordKind::Solver,
        RecordKind::Inclusion,
        RecordKind::Shape,
        RecordKind::Subsumption,
    ];
}

/// A point-in-time snapshot of the store counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Queries answered from a memo tier (local, shared or disk).
    pub hits: usize,
    /// Queries that missed every tier and had to be solved.
    pub misses: usize,
    /// Entries replayed from segments (or a legacy log) at startup.
    pub disk_loaded: usize,
    /// Disk lines, segments (by record count) or whole files ignored as unreadable or
    /// from another version.
    pub stale: usize,
    /// Alphabet transformations answered from the minterm-set memo.
    pub minterm_hits: usize,
    /// Alphabet transformations that had to be enumerated.
    pub minterm_misses: usize,
    /// DFA transitions answered from the transition memo.
    pub transition_hits: usize,
    /// DFA transitions that had to be derived.
    pub transition_misses: usize,
    /// Simulation-subsumption orders answered from the `U` memo.
    pub subsumption_hits: usize,
    /// Simulation-subsumption probes that missed the `U` memo (the walk falls back to
    /// its local fixpoint — no solver query is implied, which is why these are counted
    /// apart from [`misses`](CacheStatsSnapshot::misses)).
    pub subsumption_misses: usize,
    /// Shared-tier shard-lock acquisitions, across every record kind. Per-worker local
    /// tiers exist to keep this flat while hit counts grow.
    pub lock_acquisitions: usize,
    /// Disk-tier lock acquisitions (read-through fallbacks and promotions). The
    /// background LSM thread never contributes here — asserted in
    /// `engine/tests/tiers.rs`.
    pub disk_lock_acquisitions: usize,
}

impl CacheStatsSnapshot {
    /// Fraction of lookups answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicUsize,
    misses: AtomicUsize,
    disk_loaded: AtomicUsize,
    stale: AtomicUsize,
    minterm_hits: AtomicUsize,
    minterm_misses: AtomicUsize,
    transition_hits: AtomicUsize,
    transition_misses: AtomicUsize,
    subsumption_hits: AtomicUsize,
    subsumption_misses: AtomicUsize,
}

/// The sidecar lock guarding a disk store against concurrent writers. Created with
/// `create_new` (atomic on every serious filesystem), holding the owner's PID; removed
/// on drop. A lock whose holder no longer exists (per `/proc`) is reclaimed.
#[derive(Debug)]
struct CacheLock {
    path: PathBuf,
}

fn lock_path_for(log_path: &Path) -> PathBuf {
    let mut name = log_path.file_name().unwrap_or_default().to_os_string();
    name.push(".lock");
    log_path.with_file_name(name)
}

/// The advertised-address sidecar of a cache: a long-lived `marpled` daemon that owns
/// `<path>` writes its listen address to `<path>.addr` so batch invocations that find
/// the lock held can tell the user exactly how to reach the warm store.
pub fn addr_path_for(log_path: &Path) -> PathBuf {
    let mut name = log_path.file_name().unwrap_or_default().to_os_string();
    name.push(".addr");
    log_path.with_file_name(name)
}

/// Who holds a cache's single-writer lock (see [`MemoStore::lock_holder`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockHolder {
    /// PID written into the sidecar lock file.
    pub pid: u32,
    /// The holder's process name (`/proc/<pid>/comm`), when it can be read.
    pub name: Option<String>,
    /// The holder's advertised service address (`<path>.addr`), when one exists —
    /// written by a `marpled` daemon so lock-contended batch runs can suggest
    /// `--remote`.
    pub service_addr: Option<String>,
}

impl LockHolder {
    /// Whether the holder looks like a `marpled` verification daemon.
    pub fn is_daemon(&self) -> bool {
        self.name.as_deref() == Some("marpled") || self.service_addr.is_some()
    }
}

fn lock_holder_is_alive(lock_path: &Path) -> bool {
    let Ok(contents) = std::fs::read_to_string(lock_path) else {
        // Unreadable (racing creation, permissions): assume the holder is alive.
        return true;
    };
    let Ok(pid) = contents.trim().parse::<u32>() else {
        return true;
    };
    if !Path::new("/proc").is_dir() {
        // No way to probe liveness on this platform: assume alive (degrading to
        // in-memory is always safe; deleting a live writer's lock is not).
        return true;
    }
    Path::new(&format!("/proc/{pid}")).exists()
}

impl CacheLock {
    /// Tries to take the single-writer lock for `log_path`. `Ok(None)` means another
    /// live process holds it — the caller must degrade to in-memory operation. Real I/O
    /// failures (unwritable or missing directory) are propagated so the caller can
    /// report the actual problem instead of mis-diagnosing it as contention.
    fn acquire(log_path: &Path) -> std::io::Result<Option<CacheLock>> {
        let path = lock_path_for(log_path);
        // Two attempts: the second retries after reclaiming a stale lock.
        for _ in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    let _ = write!(file, "{}", std::process::id());
                    return Ok(Some(CacheLock { path }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if lock_holder_is_alive(&path) {
                        return Ok(None);
                    }
                    // The holder died without cleaning up. Reclaim atomically: rename
                    // the stale file to a per-process name, so of two racing
                    // reclaimers exactly one wins the rename — remove-then-create
                    // would let the loser delete the winner's freshly taken lock and
                    // reintroduce the double-writer hazard. Whoever loses any race
                    // here simply finds a *live* lock on the retry and degrades.
                    let mut claim = path.clone().into_os_string();
                    claim.push(format!(".reclaim.{}", std::process::id()));
                    let claim = PathBuf::from(claim);
                    if std::fs::rename(&path, &claim).is_ok() {
                        let _ = std::fs::remove_file(&claim);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }
}

impl Drop for CacheLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// One parsed record line (shared by segment replay, legacy replay and
/// [`MemoStore::inspect`]).
enum ParsedLine<'a> {
    Bit(RecordKind, bool, &'a str),
    Set(&'a str, &'a str),
    Trans(&'a str, &'a str),
    Bad,
}

/// Parses a typed (v2+) record line — the grammar segment bodies share with the legacy
/// v2–v5 log body. v1 lines use [`parse_v1_line`] instead.
fn parse_typed_line(line: &str) -> ParsedLine<'_> {
    match line.split_once('\t') {
        Some(("S0", key)) => ParsedLine::Bit(RecordKind::Solver, false, key),
        Some(("S1", key)) => ParsedLine::Bit(RecordKind::Solver, true, key),
        Some(("I0", key)) => ParsedLine::Bit(RecordKind::Inclusion, false, key),
        Some(("I1", key)) => ParsedLine::Bit(RecordKind::Inclusion, true, key),
        Some(("D0", key)) => ParsedLine::Bit(RecordKind::Shape, false, key),
        Some(("D1", key)) => ParsedLine::Bit(RecordKind::Shape, true, key),
        Some(("U0", key)) => ParsedLine::Bit(RecordKind::Subsumption, false, key),
        Some(("U1", key)) => ParsedLine::Bit(RecordKind::Subsumption, true, key),
        Some(("M", rest)) => match rest.split_once('\t') {
            Some((key, payload)) => ParsedLine::Set(key, payload),
            None => ParsedLine::Bad,
        },
        Some(("T", rest)) => match rest.split_once('\t') {
            Some((key, payload)) => ParsedLine::Trans(key, payload),
            None => ParsedLine::Bad,
        },
        _ => ParsedLine::Bad,
    }
}

fn parse_v1_line(line: &str) -> ParsedLine<'_> {
    match line.split_once('\t') {
        Some(("0", key)) => ParsedLine::Bit(RecordKind::Solver, false, key),
        Some(("1", key)) => ParsedLine::Bit(RecordKind::Solver, true, key),
        _ => ParsedLine::Bad,
    }
}

fn version_of(header: &str) -> Option<u32> {
    match header {
        HEADER_V1 => Some(1),
        HEADER_V2 => Some(2),
        HEADER_V3 => Some(3),
        HEADER_V4 => Some(4),
        HEADER_V5 => Some(5),
        _ => None,
    }
}

/// The result of one [`MemoStore::compact`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Segment bytes before the pass.
    pub bytes_before: u64,
    /// Segment bytes after the pass.
    pub bytes_after: u64,
    /// Record lines across live segments before the pass.
    pub records_before: usize,
    /// Record lines after the pass — exactly the live entries.
    pub records_after: usize,
}

/// What a read-only scan of a cache (manifest + segments, or a legacy log) found
/// (CLI: `marple cache stats`). Never takes the writer lock, so it works — and prints
/// honest numbers — while a daemon owns the store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheFileStats {
    /// The header line, when the file is non-empty.
    pub header: Option<String>,
    /// The format version, when the header is a known `hat-engine-cache` header.
    pub version: Option<u32>,
    /// Live (first-occurrence, well-formed) solver-verdict records.
    pub solver: usize,
    /// Live inclusion-verdict records.
    pub inclusion: usize,
    /// Live DFA-shape records.
    pub shape: usize,
    /// Live minterm-set records.
    pub minterms: usize,
    /// Live transition records (v6 only).
    pub transitions: usize,
    /// Live subsumption-verdict records.
    pub subsumption: usize,
    /// Records whose key already occurred in a newer segment or earlier line
    /// (superseded — compaction drops them).
    pub duplicates: usize,
    /// Lines that parse under no record grammar, plus the claimed records of torn
    /// segments (compaction drops them).
    pub malformed: usize,
    /// Live segment files named by the manifest (v6 only).
    pub segments: usize,
    /// Segments named by the manifest but missing, header-mismatched or truncated —
    /// every record in them degrades to cold (v6 only).
    pub torn_segments: usize,
    /// Manifest plus readable segment bytes (v6), or file size (legacy).
    pub bytes: u64,
}

impl CacheFileStats {
    /// Total live records.
    pub fn live(&self) -> usize {
        self.solver
            + self.inclusion
            + self.shape
            + self.minterms
            + self.transitions
            + self.subsumption
    }

    /// Total dead records (duplicates plus malformed lines).
    pub fn dead(&self) -> usize {
        self.duplicates + self.malformed
    }

    /// Dead share of all records, in `[0, 1]`.
    pub fn dead_ratio(&self) -> f64 {
        let total = self.live() + self.dead();
        if total == 0 {
            0.0
        } else {
            self.dead() as f64 / total as f64
        }
    }
}

/// Shard count of the transition tier. Coarse on purpose: with the worker-side
/// [`crate::tier::ShardMirror`] policy the shared transition tier sees only occasional
/// whole-shard syncs and batched flushes, and a flush costs one lock per *distinct*
/// shard it touches — so fewer shards means better batch amortisation, while the
/// per-key-hit contention argument for fine sharding no longer applies.
const TRANSITION_SHARDS: usize = 4;

/// The shared tiers of every record kind, instantiated once per kind.
#[derive(Debug)]
struct KindTiers {
    solver: SharedTier<bool>,
    inclusion: SharedTier<bool>,
    shape: SharedTier<bool>,
    subsumption: SharedTier<bool>,
    minterms: SharedTier<MintermSet>,
    transitions: SharedTier<Sfa>,
}

impl Default for KindTiers {
    fn default() -> Self {
        KindTiers {
            solver: SharedTier::default(),
            inclusion: SharedTier::default(),
            shape: SharedTier::default(),
            subsumption: SharedTier::default(),
            minterms: SharedTier::default(),
            transitions: SharedTier::with_shards(TRANSITION_SHARDS),
        }
    }
}

impl KindTiers {
    fn bools(&self, kind: RecordKind) -> &SharedTier<bool> {
        match kind {
            RecordKind::Solver => &self.solver,
            RecordKind::Inclusion => &self.inclusion,
            RecordKind::Shape => &self.shape,
            RecordKind::Subsumption => &self.subsumption,
            RecordKind::Minterms | RecordKind::Transition => {
                unreachable!("{kind:?} is not a boolean record kind")
            }
        }
    }
}

/// The disk tiers of the persisted-by-key kinds: the in-memory image of the segment
/// stack, replayed once at open (see [`DiskTier`]). Transitions have no disk tier on
/// purpose — their segments replay straight into the shared transition tier, because
/// the worker-side shard mirrors sync only from the shared tier and would never see a
/// disk-tier copy.
#[derive(Debug, Default)]
struct DiskTiers {
    solver: DiskTier<bool>,
    inclusion: DiskTier<bool>,
    shape: DiskTier<bool>,
    subsumption: DiskTier<bool>,
    minterms: DiskTier<MintermSet>,
}

impl DiskTiers {
    fn bools(&self, kind: RecordKind) -> &DiskTier<bool> {
        match kind {
            RecordKind::Solver => &self.solver,
            RecordKind::Inclusion => &self.inclusion,
            RecordKind::Shape => &self.shape,
            RecordKind::Subsumption => &self.subsumption,
            RecordKind::Minterms | RecordKind::Transition => {
                unreachable!("{kind:?} is not a boolean record kind")
            }
        }
    }

    fn lock_acquisitions(&self) -> usize {
        self.solver.lock_acquisitions()
            + self.inclusion.lock_acquisitions()
            + self.shape.lock_acquisitions()
            + self.subsumption.lock_acquisitions()
            + self.minterms.lock_acquisitions()
    }
}

/// What the cache path held when the store opened (drives migration).
enum OnDisk {
    /// Missing or empty file: start a fresh v6 store.
    Fresh,
    /// A v1–v5 log was replayed: rewrite it as segments + manifest.
    Legacy,
    /// A v6 manifest was read and its segments replayed.
    V6(ManifestState),
}

/// The concurrent tiered memo store shared by every worker of a verification run: the
/// shared-tier and disk-tier levels of the hierarchy (workers add their own local tier
/// in front; see [`crate::tier`]), plus the LSM write path that makes fresh records
/// durable (see [`crate::lsm`]).
pub struct MemoStore {
    tiers: KindTiers,
    disk: DiskTiers,
    /// Declared before `lock`: struct fields drop in declaration order, so the LSM
    /// backend drains its memtable and joins its background thread while the
    /// single-writer lock is still held.
    lsm: Option<Lsm>,
    /// Held for the lifetime of a disk-backed store; releasing it (drop) lets the next
    /// opener write.
    #[allow(dead_code)]
    lock: Option<CacheLock>,
    path: Option<PathBuf>,
    /// Set when another live process held the store's lock at open time: the store
    /// loaded what it could read-only and runs in-memory, never writing to the
    /// contested files.
    degraded: bool,
    counters: CacheCounters,
}

/// The pre-v5 name of [`MemoStore`], kept for readability of older discussions.
pub type QueryCache = MemoStore;

impl std::fmt::Debug for MemoStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoStore")
            .field("entries", &self.len())
            .field("path", &self.path)
            .field("degraded", &self.degraded)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for MemoStore {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl MemoStore {
    fn empty() -> Self {
        MemoStore {
            tiers: KindTiers::default(),
            disk: DiskTiers::default(),
            lsm: None,
            lock: None,
            path: None,
            degraded: false,
            counters: CacheCounters::default(),
        }
    }

    /// A purely in-memory store (no persistence).
    ///
    /// ```
    /// use hat_engine::MemoStore;
    ///
    /// let cache = MemoStore::in_memory();
    /// assert_eq!(cache.lookup("sat|k"), None);
    /// cache.insert("sat|k".into(), true);
    /// assert_eq!(cache.lookup("sat|k"), Some(true));
    /// let stats = cache.stats();
    /// assert_eq!((stats.hits, stats.misses), (1, 1));
    /// ```
    pub fn in_memory() -> Self {
        Self::empty()
    }

    /// A store backed by the LSM disk store at `path`, with the default
    /// [`LsmConfig::from_env`] tuning. See [`MemoStore::with_disk_log_config`].
    pub fn with_disk_log(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::with_disk_log_config(path, LsmConfig::from_env())
    }

    /// A store backed by the LSM disk store at `path` (`path` is the manifest;
    /// segments live under `<path>.d/`). Existing segments are replayed into the disk
    /// tiers (warm start) and fresh verdicts flow through the memtable to new segments.
    /// A `v1`–`v5` log is migrated to the v6 layout atomically on open; a store whose
    /// replay found enough dead records gets an immediate compaction nudge. A file
    /// whose header belongs to any other format version is left untouched: the store
    /// runs in-memory only and counts the file as stale (destroying data a newer binary
    /// wrote would be worse than running cold).
    ///
    /// Opening takes the sidecar lock `<path>.lock`. If another live process holds it,
    /// this store **degrades to in-memory** (entries are still replayed read-only for a
    /// warm start, but nothing is migrated, flushed, compacted or garbage-collected)
    /// and [`MemoStore::degraded`] reports `true`.
    pub fn with_disk_log_config(
        path: impl AsRef<Path>,
        config: LsmConfig,
    ) -> std::io::Result<Self> {
        let mut cache = Self::empty();
        let path = path.as_ref();
        cache.path = Some(path.to_path_buf());
        let lock = CacheLock::acquire(path)?;
        if lock.is_none() {
            cache.degraded = true;
            match Self::lock_holder(path) {
                Some(holder) if holder.is_daemon() => {
                    let reach = match &holder.service_addr {
                        Some(addr) => format!("rerun with `--remote {addr}` to use its warm store"),
                        None => {
                            "rerun with `--remote <its address>` to use its warm store".to_string()
                        }
                    };
                    eprintln!(
                        "warning: cache `{}` is owned by a running marpled daemon (pid {}); \
                         {reach} — this run keeps its verdicts in memory only",
                        path.display(),
                        holder.pid
                    );
                }
                Some(holder) => eprintln!(
                    "warning: cache `{}` is locked by another process (pid {}{}); this run \
                     keeps its verdicts in memory only",
                    path.display(),
                    holder.pid,
                    holder
                        .name
                        .as_deref()
                        .map(|n| format!(", `{n}`"))
                        .unwrap_or_default()
                ),
                None => eprintln!(
                    "warning: cache `{}` is locked by another process; this run keeps its \
                     verdicts in memory only",
                    path.display()
                ),
            }
        }
        let mut duplicates = 0usize;
        let mut stale_lines = 0usize;
        let mut on_disk = OnDisk::Fresh;
        if path.exists() {
            if let Some((state, malformed)) = lsm::read_manifest(path)? {
                stale_lines += malformed;
                let dir = lsm::segment_dir_for(path);
                // Newest segment first, so the first occurrence of a key — the one
                // `put_quiet` keeps — is the newest record.
                let mut segments = state.segments.clone();
                segments.sort_by_key(|s| std::cmp::Reverse(s.seq));
                for meta in &segments {
                    let scan = lsm::read_segment(&dir, meta);
                    if scan.torn {
                        // The whole segment degrades to cold: losing cache entries is
                        // recoverable, trusting a half-written segment is not.
                        stale_lines += meta.records;
                        continue;
                    }
                    for line in &scan.lines {
                        cache.load_line(parse_typed_line(line), &mut duplicates, &mut stale_lines);
                    }
                }
                on_disk = OnDisk::V6(state);
            } else {
                // Not a v6 manifest: a legacy log, a foreign version, or an empty file.
                let reader = BufReader::new(File::open(path)?);
                let mut lines = reader.lines();
                match lines.next() {
                    Some(Ok(header)) if version_of(&header).is_some() => {
                        // v1 records are untyped; v2–v5 share one grammar (each version
                        // adds a record kind), so one loop replays them all.
                        let v1 = header == HEADER_V1;
                        for line in lines {
                            let Ok(line) = line else {
                                stale_lines += 1;
                                continue;
                            };
                            let parsed = if v1 {
                                parse_v1_line(&line)
                            } else {
                                parse_typed_line(&line)
                            };
                            cache.load_line(parsed, &mut duplicates, &mut stale_lines);
                        }
                        on_disk = OnDisk::Legacy;
                    }
                    Some(_) => {
                        // Unknown header: a different format version (or not a cache
                        // file at all). Do not write to it — and release the writer
                        // lock, since this store will never use it.
                        cache.counters.stale.fetch_add(1, Ordering::Relaxed);
                        return Ok(cache);
                    }
                    None => {}
                }
            }
        }
        cache
            .counters
            .stale
            .fetch_add(stale_lines, Ordering::Relaxed);
        if cache.degraded {
            // Another process owns the store: warm entries are loaded, but no
            // migration, no writes, no compaction, no orphan GC.
            return Ok(cache);
        }
        let state = match on_disk {
            OnDisk::V6(state) => state,
            OnDisk::Legacy => cache.migrate_to_v6(path)?,
            OnDisk::Fresh => {
                // Commit the empty manifest up front so the path always carries the v6
                // header — a pre-v6 binary opening it later sees a foreign version and
                // safely runs in-memory instead of appending to a manifest.
                let state = ManifestState::default();
                lsm::write_manifest(path, &state)?;
                state
            }
        };
        let lsm = Lsm::start(path, state, config)?;
        // Dead records (cross-segment duplicates from merged runs, torn segments,
        // malformed lines) past the threshold get the compaction nudge a CLI
        // `cache compact` would give.
        let dead = duplicates + stale_lines;
        let live = cache.counters.disk_loaded.load(Ordering::Relaxed);
        if dead >= AUTO_COMPACT_MIN_DEAD && dead * AUTO_COMPACT_RATIO >= live + dead {
            let _ = lsm.compact();
        }
        cache.lsm = Some(lsm);
        cache.lock = lock;
        Ok(cache)
    }

    /// Replays one parsed record line into the replay target of its kind: boolean and
    /// minterm records into the disk tiers, transition records into the *shared*
    /// transition tier (the worker-side shard mirrors sync only from the shared tier).
    fn load_line(&self, parsed: ParsedLine<'_>, duplicates: &mut usize, stale: &mut usize) {
        match parsed {
            ParsedLine::Bit(kind, verdict, key) => {
                if self.disk.bools(kind).put_quiet(key.to_string(), verdict) {
                    self.counters.disk_loaded.fetch_add(1, Ordering::Relaxed);
                } else {
                    *duplicates += 1;
                }
            }
            ParsedLine::Set(key, payload) => match parse_minterm_set(payload) {
                Some(set) => {
                    if self.disk.minterms.put_quiet(key.to_string(), set) {
                        self.counters.disk_loaded.fetch_add(1, Ordering::Relaxed);
                    } else {
                        *duplicates += 1;
                    }
                }
                None => *stale += 1,
            },
            ParsedLine::Trans(key, payload) => match parse_sfa(payload) {
                Some(succ) => {
                    if self.tiers.transitions.put_quiet(key.to_string(), succ) {
                        self.counters.disk_loaded.fetch_add(1, Ordering::Relaxed);
                    } else {
                        *duplicates += 1;
                    }
                }
                None => *stale += 1,
            },
            ParsedLine::Bad => *stale += 1,
        }
    }

    /// Rewrites a replayed v1–v5 log as the v6 layout: every live entry becomes a
    /// sorted, partitioned level-0 segment under `<path>.d/`, and the manifest
    /// atomically replaces the legacy log only after every segment is durable — an
    /// interrupted migration leaves the legacy log intact (plus invisible orphan
    /// segments the next locked open garbage-collects).
    fn migrate_to_v6(&self, path: &Path) -> std::io::Result<ManifestState> {
        use std::collections::BTreeMap;
        let dir = lsm::segment_dir_for(path);
        std::fs::create_dir_all(&dir)?;
        let mut families: BTreeMap<(RecordKind, u8), Vec<(String, String)>> = BTreeMap::new();
        for kind in RecordKind::BOOL_KINDS {
            for (key, verdict) in self.disk.bools(kind).snapshot() {
                let line = format!("{}{}\t{key}", kind.tag(), u8::from(verdict));
                families
                    .entry((kind, lsm::partition_of(&key)))
                    .or_default()
                    .push((key, line));
            }
        }
        for (key, set) in self.disk.minterms.snapshot() {
            let line = format!("M\t{key}\t{}", ser_minterm_set(&set));
            families
                .entry((RecordKind::Minterms, lsm::partition_of(&key)))
                .or_default()
                .push((key, line));
        }
        for (key, succ) in self.tiers.transitions.snapshot() {
            let line = format!("T\t{key}\t{}", ser_sfa(&succ));
            families
                .entry((RecordKind::Transition, lsm::partition_of(&key)))
                .or_default()
                .push((key, line));
        }
        let mut state = ManifestState::default();
        for ((kind, partition), mut lines) in families {
            lines.sort_by(|a, b| a.0.cmp(&b.0));
            let seq = state.next_seq;
            state.next_seq += 1;
            let meta = lsm::write_segment(&dir, kind, partition, 0, seq, &lines)?;
            state.segments.push(meta);
        }
        lsm::write_manifest(path, &state)?;
        Ok(state)
    }

    /// Whether lock contention forced this store to run in-memory despite a configured
    /// disk store.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Who currently holds the single-writer lock of the store at `path`, if anyone:
    /// the PID from the sidecar lock file, the process name from `/proc` when
    /// available, and the advertised service address from `<path>.addr` when a
    /// `marpled` daemon wrote one. `None` when no lock file exists or it is
    /// unreadable.
    pub fn lock_holder(path: impl AsRef<Path>) -> Option<LockHolder> {
        let path = path.as_ref();
        let contents = std::fs::read_to_string(lock_path_for(path)).ok()?;
        let pid = contents.trim().parse::<u32>().ok()?;
        let name = std::fs::read_to_string(format!("/proc/{pid}/comm"))
            .ok()
            .map(|s| s.trim().to_string());
        let service_addr = std::fs::read_to_string(addr_path_for(path))
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty());
        Some(LockHolder {
            pid,
            name,
            service_addr,
        })
    }

    /// Drains the memtable, then compacts only when some segment family has reached
    /// the merge fan-in — i.e. when a compaction would actually do work. Returns
    /// `Ok(None)` when the store is healthy (or in-memory / degraded — nothing to
    /// compact then). A long-lived daemon calls this on graceful shutdown so the
    /// segment stack it leaves behind is tidy without paying a merge on every exit.
    pub fn compact_if_needed(&self) -> std::io::Result<Option<CompactionReport>> {
        let Some(lsm) = &self.lsm else {
            return Ok(None);
        };
        lsm.drain();
        if lsm.wants_compaction() {
            self.compact().map(Some)
        } else {
            Ok(None)
        }
    }

    /// Scans the cache at `path` read-only — no lock taken, no migration, nothing
    /// written — and reports per-kind live counts, dead records, segment counts and
    /// the header version. Works while another process (e.g. a live daemon) owns the
    /// store: the manifest and segments are immutable once written, so the worst a
    /// concurrent commit can do is make the scan see the previous manifest, which was
    /// equally honest.
    pub fn inspect(path: impl AsRef<Path>) -> std::io::Result<CacheFileStats> {
        let path = path.as_ref();
        let mut stats = CacheFileStats {
            bytes: std::fs::metadata(path)?.len(),
            ..CacheFileStats::default()
        };
        if let Some((state, malformed)) = lsm::read_manifest(path)? {
            stats.version = Some(6);
            stats.header = Some(lsm::MANIFEST_HEADER_V6.to_string());
            stats.malformed += malformed;
            stats.segments = state.segments.len();
            let dir = lsm::segment_dir_for(path);
            let mut segments = state.segments.clone();
            segments.sort_by_key(|s| std::cmp::Reverse(s.seq));
            let mut seen: [HashSet<String>; 6] = Default::default();
            for meta in &segments {
                let scan = lsm::read_segment(&dir, meta);
                if scan.torn {
                    stats.torn_segments += 1;
                    stats.malformed += meta.records;
                    continue;
                }
                stats.bytes += std::fs::metadata(dir.join(meta.file_name()))
                    .map(|m| m.len())
                    .unwrap_or(meta.bytes);
                for line in &scan.lines {
                    Self::tally_line(parse_typed_line(line), &mut seen, &mut stats);
                }
            }
            return Ok(stats);
        }
        // Legacy (v1–v5) or foreign: a flat scan of the single file.
        let reader = BufReader::new(File::open(path)?);
        let mut lines = reader.lines();
        let Some(Ok(header)) = lines.next() else {
            return Ok(stats);
        };
        stats.version = version_of(&header);
        stats.header = Some(header.clone());
        let Some(version) = stats.version else {
            return Ok(stats); // Foreign: nothing beyond the header is ours to judge.
        };
        let mut seen: [HashSet<String>; 6] = Default::default();
        for line in lines {
            let Ok(line) = line else {
                stats.malformed += 1;
                continue;
            };
            let parsed = if version == 1 {
                parse_v1_line(&line)
            } else {
                parse_typed_line(&line)
            };
            Self::tally_line(parsed, &mut seen, &mut stats);
        }
        Ok(stats)
    }

    /// Tallies one parsed line into an inspection report, deduplicating against the
    /// lines already seen (newest-first for segments, file order for legacy logs).
    fn tally_line(
        parsed: ParsedLine<'_>,
        seen: &mut [HashSet<String>; 6],
        stats: &mut CacheFileStats,
    ) {
        match parsed {
            ParsedLine::Bit(kind, _, key) => {
                let (slot, counter) = match kind {
                    RecordKind::Solver => (0, &mut stats.solver),
                    RecordKind::Inclusion => (1, &mut stats.inclusion),
                    RecordKind::Shape => (2, &mut stats.shape),
                    RecordKind::Subsumption => (5, &mut stats.subsumption),
                    _ => unreachable!(),
                };
                if seen[slot].insert(key.to_string()) {
                    *counter += 1;
                } else {
                    stats.duplicates += 1;
                }
            }
            ParsedLine::Set(key, payload) => {
                if parse_minterm_set(payload).is_none() {
                    stats.malformed += 1;
                } else if seen[3].insert(key.to_string()) {
                    stats.minterms += 1;
                } else {
                    stats.duplicates += 1;
                }
            }
            ParsedLine::Trans(key, payload) => {
                if parse_sfa(payload).is_none() {
                    stats.malformed += 1;
                } else if seen[4].insert(key.to_string()) {
                    stats.transitions += 1;
                } else {
                    stats.duplicates += 1;
                }
            }
            ParsedLine::Bad => stats.malformed += 1,
        }
    }

    /// Compacts the segment stack: drains the memtable, then asks the background
    /// thread to merge every multi-segment family down to one segment — newest record
    /// wins; duplicates, torn segments and malformed lines are gone. Blocks for the
    /// outcome but never blocks concurrent readers or workers (the merge itself runs
    /// on the background thread and takes no tier locks). Errors for an in-memory
    /// store and for one that degraded at open (the contested store belongs to the
    /// lock holder).
    pub fn compact(&self) -> std::io::Result<CompactionReport> {
        let Some(lsm) = &self.lsm else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                if self.degraded {
                    "cache degraded to in-memory (log locked by another process)"
                } else {
                    "cache has no disk log to compact"
                },
            ));
        };
        let outcome = lsm.compact();
        Ok(CompactionReport {
            bytes_before: outcome.bytes_before,
            bytes_after: outcome.bytes_after,
            records_before: outcome.records_before,
            records_after: outcome.records_after,
        })
    }

    /// A snapshot of the LSM backend counters (rotations, flushes, merges, write
    /// amplification), when this store writes to disk.
    pub fn lsm_stats(&self) -> Option<LsmStatsSnapshot> {
        self.lsm.as_ref().map(|l| l.stats_snapshot())
    }

    /// A clone of the live manifest state (segment set), when this store writes to
    /// disk.
    pub fn manifest(&self) -> Option<ManifestState> {
        self.lsm.as_ref().map(|l| l.state_snapshot())
    }

    /// Records buffered in the memtable, not yet rotated to the background thread.
    pub fn memtable_records(&self) -> usize {
        self.lsm.as_ref().map(|l| l.memtable_records()).unwrap_or(0)
    }

    /// Records a local-tier hit for `kind` in the store-wide hit counters, so snapshots
    /// keep meaning "answered from a memo" no matter which tier answered.
    pub fn note_local_hit(&self, kind: RecordKind) {
        self.note_local(kind, true);
    }

    /// Records a local-tier lookup outcome for `kind` in the store-wide counters (used
    /// by tier policies that answer without consulting the shared tier per key, like
    /// the transition shard mirror).
    pub fn note_local(&self, kind: RecordKind, hit: bool) {
        let counter = match (kind, hit) {
            (RecordKind::Minterms, true) => &self.counters.minterm_hits,
            (RecordKind::Minterms, false) => &self.counters.minterm_misses,
            (RecordKind::Transition, true) => &self.counters.transition_hits,
            (RecordKind::Transition, false) => &self.counters.transition_misses,
            (RecordKind::Subsumption, true) => &self.counters.subsumption_hits,
            (RecordKind::Subsumption, false) => &self.counters.subsumption_misses,
            (_, true) => &self.counters.hits,
            (_, false) => &self.counters.misses,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// The shared transition tier, for the worker-side
    /// [`ShardMirror`](crate::tier::ShardMirror) policy.
    pub fn transition_tier(&self) -> &SharedTier<Sfa> {
        &self.tiers.transitions
    }

    /// Looks a boolean verdict up: shared tier first, then read-through to the disk
    /// tier, promoting (moving) a disk hit into the shared tier so each warm record
    /// pays its disk-tier lock at most once. Counts a hit or a miss either way —
    /// subsumption probes into their own counters (a `U` miss costs a local fixpoint,
    /// not a solver query, so it must not dilute the solver-facing miss count).
    pub fn lookup_bool(&self, kind: RecordKind, key: &str) -> Option<bool> {
        let (hits, misses) = if kind == RecordKind::Subsumption {
            (
                &self.counters.subsumption_hits,
                &self.counters.subsumption_misses,
            )
        } else {
            (&self.counters.hits, &self.counters.misses)
        };
        if let Some(found) = self.tiers.bools(kind).get_str(key) {
            hits.fetch_add(1, Ordering::Relaxed);
            return Some(found);
        }
        if let Some(found) = self.disk.bools(kind).get_str(key) {
            // Promotion is replay-like bookkeeping, not new contention: uncounted in
            // the shared tier. Racing promotions both write the same value.
            self.tiers.bools(kind).put_quiet(key.to_string(), found);
            self.disk.bools(kind).evict(key);
            hits.fetch_add(1, Ordering::Relaxed);
            return Some(found);
        }
        misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Records a boolean verdict in the shared tier of `kind`, logging it to the LSM
    /// memtable when it is fresh and this store writes to disk. Racing inserts of the
    /// same key are harmless: canonical keys determine their verdict. (An insert whose
    /// key was never looked up can duplicate a record that sits un-promoted in the disk
    /// tier — compaction drops such duplicates.)
    pub fn insert_bool(&self, kind: RecordKind, key: String, verdict: bool) {
        let fresh = self.tiers.bools(kind).put_owned(key.clone(), verdict);
        if fresh {
            if let Some(lsm) = &self.lsm {
                lsm.log(
                    kind,
                    &key,
                    format!("{}{}\t{key}", kind.tag(), u8::from(verdict)),
                );
            }
        }
    }

    /// Looks a solver-verdict key up, counting a hit or a miss.
    pub fn lookup(&self, key: &str) -> Option<bool> {
        self.lookup_bool(RecordKind::Solver, key)
    }

    /// Records a solver verdict, logging it to the memtable when a disk store is
    /// attached.
    pub fn insert(&self, key: String, verdict: bool) {
        self.insert_bool(RecordKind::Solver, key, verdict);
    }

    /// Looks an inclusion-verdict key up, counting a hit or a miss.
    pub fn lookup_inclusion(&self, key: &str) -> Option<bool> {
        self.lookup_bool(RecordKind::Inclusion, key)
    }

    /// Records an automata-inclusion verdict.
    pub fn insert_inclusion(&self, key: String, verdict: bool) {
        self.insert_bool(RecordKind::Inclusion, key, verdict);
    }

    /// Looks a DFA-shape verdict key up, counting a hit or a miss.
    pub fn lookup_shape(&self, key: &str) -> Option<bool> {
        self.lookup_bool(RecordKind::Shape, key)
    }

    /// Records a per-group DFA-shape verdict (see [`crate::canon::shape_key`]).
    pub fn insert_shape(&self, key: String, verdict: bool) {
        self.insert_bool(RecordKind::Shape, key, verdict);
    }

    /// Looks a subsumption-verdict key up, counting a hit or a miss.
    pub fn lookup_subsumption(&self, key: &str) -> Option<bool> {
        self.lookup_bool(RecordKind::Subsumption, key)
    }

    /// Records a simulation-subsumption verdict (see
    /// [`crate::canon::subsumption_key`]).
    pub fn insert_subsumption(&self, key: String, verdict: bool) {
        self.insert_bool(RecordKind::Subsumption, key, verdict);
    }

    /// Looks a memoised minterm set up by its canonical alphabet key: shared tier
    /// first, then read-through to the disk tier with promotion.
    pub fn lookup_minterms(&self, key: &str) -> Option<MintermSet> {
        if let Some(found) = self.tiers.minterms.get_str(key) {
            self.counters.minterm_hits.fetch_add(1, Ordering::Relaxed);
            return Some(found);
        }
        if let Some(found) = self.disk.minterms.get_str(key) {
            self.tiers
                .minterms
                .put_quiet(key.to_string(), found.clone());
            self.disk.minterms.evict(key);
            self.counters.minterm_hits.fetch_add(1, Ordering::Relaxed);
            return Some(found);
        }
        self.counters.minterm_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Memoises an enumerated minterm set, logging it to the memtable when it is fresh
    /// and a disk store is attached (racing stores of the same key are harmless
    /// because enumeration is a pure function of the canonical key).
    pub fn insert_minterms(&self, key: String, set: MintermSet) {
        let line = self
            .lsm
            .as_ref()
            .map(|_| format!("M\t{key}\t{}", ser_minterm_set(&set)));
        let fresh = self.tiers.minterms.put_owned(key.clone(), set);
        if fresh {
            if let (Some(lsm), Some(line)) = (&self.lsm, line) {
                lsm.log(RecordKind::Minterms, &key, line);
            }
        }
    }

    /// Looks a memoised DFA transition up by its canonical transition key. Transitions
    /// replay into the shared tier at open (see `DiskTiers`), so no disk-tier
    /// fallback is needed here.
    pub fn lookup_transition(&self, key: &str) -> Option<Sfa> {
        let found = self.tiers.transitions.get_str(key);
        match found {
            Some(_) => self
                .counters
                .transition_hits
                .fetch_add(1, Ordering::Relaxed),
            None => self
                .counters
                .transition_misses
                .fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoises a DFA transition, logging it to the memtable when it is fresh and a
    /// disk store is attached (since v6; racing stores of the same key are harmless
    /// because the successor is a pure function of the canonical key).
    pub fn insert_transition(&self, key: String, succ: Sfa) {
        let line = self
            .lsm
            .as_ref()
            .map(|_| format!("T\t{key}\t{}", ser_sfa(&succ)));
        let fresh = self.tiers.transitions.put_owned(key.clone(), succ);
        if fresh {
            if let (Some(lsm), Some(line)) = (&self.lsm, line) {
                lsm.log(RecordKind::Transition, &key, line);
            }
        }
    }

    /// Logs a transition produced on the worker-side mirror path, which stores through
    /// the local replica and write-behind batches without touching the shared tier per
    /// key — so the store cannot tell fresh from repeat here and logs unconditionally.
    /// Cross-worker duplicates are dropped by memtable dedup and compaction.
    pub fn log_transition(&self, key: &str, succ: &Sfa) {
        if let Some(lsm) = &self.lsm {
            lsm.log(
                RecordKind::Transition,
                key,
                format!("T\t{key}\t{}", ser_sfa(succ)),
            );
        }
    }

    /// Drains the memtable to durable segments (called at the end of a run; also
    /// happens on drop). Cheap when the memtable is empty.
    pub fn flush(&self) {
        if let Some(lsm) = &self.lsm {
            lsm.drain();
        }
    }

    /// Number of cached boolean verdicts (all three kinds, shared and un-promoted disk
    /// entries together — promotion moves records between the two, keeping the total
    /// stable).
    pub fn len(&self) -> usize {
        use crate::tier::MemoTier;
        RecordKind::BOOL_KINDS
            .iter()
            .map(|&k| {
                MemoTier::<String, bool>::len(self.tiers.bools(k))
                    + MemoTier::<String, bool>::len(self.disk.bools(k))
            })
            .sum()
    }

    /// Whether the store holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-kind shared-tier lock acquisitions (diagnostic: shows which record kind's
    /// traffic the local tiers are or are not absorbing).
    pub fn lock_breakdown(&self) -> [(RecordKind, usize); 6] {
        [
            (RecordKind::Solver, self.tiers.solver.lock_acquisitions()),
            (
                RecordKind::Inclusion,
                self.tiers.inclusion.lock_acquisitions(),
            ),
            (RecordKind::Shape, self.tiers.shape.lock_acquisitions()),
            (
                RecordKind::Subsumption,
                self.tiers.subsumption.lock_acquisitions(),
            ),
            (
                RecordKind::Minterms,
                self.tiers.minterms.lock_acquisitions(),
            ),
            (
                RecordKind::Transition,
                self.tiers.transitions.lock_acquisitions(),
            ),
        ]
    }

    /// A snapshot of the hit/miss/disk/lock counters.
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            disk_loaded: self.counters.disk_loaded.load(Ordering::Relaxed),
            stale: self.counters.stale.load(Ordering::Relaxed),
            minterm_hits: self.counters.minterm_hits.load(Ordering::Relaxed),
            minterm_misses: self.counters.minterm_misses.load(Ordering::Relaxed),
            transition_hits: self.counters.transition_hits.load(Ordering::Relaxed),
            transition_misses: self.counters.transition_misses.load(Ordering::Relaxed),
            subsumption_hits: self.counters.subsumption_hits.load(Ordering::Relaxed),
            subsumption_misses: self.counters.subsumption_misses.load(Ordering::Relaxed),
            lock_acquisitions: self.tiers.solver.lock_acquisitions()
                + self.tiers.inclusion.lock_acquisitions()
                + self.tiers.shape.lock_acquisitions()
                + self.tiers.subsumption.lock_acquisitions()
                + self.tiers.minterms.lock_acquisitions()
                + self.tiers.transitions.lock_acquisitions(),
            disk_lock_acquisitions: self.disk.lock_acquisitions(),
        }
    }
}

impl Drop for MemoStore {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hat-engine-test-{}-{name}", std::process::id()));
        p
    }

    /// Removes a test store: manifest, sidecar lock, rename scratch and segment dir.
    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(lock_path_for(path));
        let _ = std::fs::remove_file(path.with_extension("compacting"));
        let _ = std::fs::remove_dir_all(lsm::segment_dir_for(path));
    }

    #[test]
    fn lookup_miss_then_hit() {
        let cache = MemoStore::in_memory();
        assert_eq!(cache.lookup("k"), None);
        cache.insert("k".into(), true);
        assert_eq!(cache.lookup("k"), Some(true));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(
            stats.lock_acquisitions, 3,
            "two lookups and one insert are one shard lock each"
        );
        assert_eq!(
            stats.disk_lock_acquisitions, 1,
            "only the miss fell through to the (empty) disk tier"
        );
    }

    #[test]
    fn disk_log_roundtrip() {
        let path = temp_path("roundtrip");
        cleanup(&path);
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            cache.insert("alpha".into(), true);
            cache.insert("beta".into(), false);
            cache.flush();
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.stats().disk_loaded, 2);
        assert_eq!(warm.lookup("alpha"), Some(true));
        assert_eq!(warm.lookup("beta"), Some(false));
        assert_eq!(warm.stats().stale, 0);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents.starts_with(lsm::MANIFEST_HEADER_V6),
            "the cache path is the v6 manifest, got: {contents:?}"
        );
        cleanup(&path);
    }

    #[test]
    fn duplicate_inserts_are_logged_once() {
        let path = temp_path("dedup");
        cleanup(&path);
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            cache.insert("k".into(), true);
            cache.insert("k".into(), true);
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.stats().disk_loaded, 1);
        drop(warm);
        let stats = MemoStore::inspect(&path).unwrap();
        assert_eq!((stats.solver, stats.duplicates), (1, 0));
        cleanup(&path);
    }

    #[test]
    fn unknown_header_is_ignored_and_left_untouched() {
        let path = temp_path("stale");
        cleanup(&path);
        let foreign = "hat-engine-cache v999\nS1\tk\n";
        std::fs::write(&path, foreign).unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().stale, 1);
        // The cache degrades to in-memory: inserts work but are not persisted, and the
        // foreign file's contents survive byte for byte.
        cache.insert("k2".into(), false);
        cache.flush();
        drop(cache);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), foreign);
        assert!(
            !lsm::segment_dir_for(&path).exists(),
            "no segment directory may appear next to a foreign file"
        );
        cleanup(&path);
    }

    #[test]
    fn torn_v5_line_is_dropped_by_migration() {
        let path = temp_path("torn");
        cleanup(&path);
        std::fs::write(
            &path,
            format!("{HEADER_V5}\nS1\tgood\nmalformed-without-tab"),
        )
        .unwrap();
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            assert_eq!(cache.lookup("good"), Some(true));
            assert_eq!(cache.stats().stale, 1);
            cache.insert("fresh".into(), true);
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("good"), Some(true));
        assert_eq!(warm.lookup("fresh"), Some(true));
        assert_eq!(
            warm.stats().stale,
            0,
            "the torn line did not survive migration"
        );
        cleanup(&path);
    }

    #[test]
    fn v1_logs_are_migrated_not_misread() {
        let path = temp_path("migrate-v1");
        cleanup(&path);
        std::fs::write(
            &path,
            "hat-engine-cache v1\n1\tsat|k1\n0\tsat|k2\nmalformed",
        )
        .unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(cache.lookup("sat|k1"), Some(true));
        assert_eq!(cache.lookup("sat|k2"), Some(false));
        assert_eq!(cache.stats().disk_loaded, 2);
        assert_eq!(cache.stats().stale, 1, "the torn v1 line is skipped");
        // New entries of other kinds flow into the migrated store.
        cache.insert_inclusion("incl|k3".into(), true);
        drop(cache);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents.starts_with(lsm::MANIFEST_HEADER_V6),
            "the file must be rewritten as the v6 manifest, got: {contents:?}"
        );
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("sat|k1"), Some(true));
        assert_eq!(warm.lookup("sat|k2"), Some(false));
        assert_eq!(warm.lookup_inclusion("incl|k3"), Some(true));
        assert_eq!(warm.stats().stale, 0, "a migrated store replays cleanly");
        cleanup(&path);
    }

    #[test]
    fn v2_logs_are_migrated_to_v6() {
        let path = temp_path("migrate-v2");
        cleanup(&path);
        std::fs::write(&path, format!("{HEADER_V2}\nS1\tsat|k1\nI0\tincl|k2\n")).unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(cache.lookup("sat|k1"), Some(true));
        assert_eq!(cache.lookup_inclusion("incl|k2"), Some(false));
        cache.insert_minterms("mt|k3".into(), MintermSet::default());
        drop(cache);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents.starts_with(lsm::MANIFEST_HEADER_V6),
            "v2 logs must be rewritten as the v6 manifest, got: {contents:?}"
        );
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("sat|k1"), Some(true));
        assert_eq!(warm.lookup_inclusion("incl|k2"), Some(false));
        assert!(warm.lookup_minterms("mt|k3").is_some());
        assert_eq!(warm.stats().stale, 0, "a migrated store replays cleanly");
        cleanup(&path);
    }

    #[test]
    fn v3_logs_are_migrated_to_v6() {
        let path = temp_path("migrate-v3");
        cleanup(&path);
        std::fs::write(
            &path,
            format!("{HEADER_V3}\nS1\tsat|k1\nI0\tincl|k2\nM\tmt|k3\tU0;M0;P0;Q0;\n"),
        )
        .unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(cache.lookup("sat|k1"), Some(true));
        assert_eq!(cache.lookup_inclusion("incl|k2"), Some(false));
        assert!(cache.lookup_minterms("mt|k3").is_some());
        cache.insert_shape("shape|k4".into(), true);
        drop(cache);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents.starts_with(lsm::MANIFEST_HEADER_V6),
            "v3 logs must be rewritten as the v6 manifest, got: {contents:?}"
        );
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("sat|k1"), Some(true));
        assert_eq!(warm.lookup_inclusion("incl|k2"), Some(false));
        assert!(warm.lookup_minterms("mt|k3").is_some());
        assert_eq!(warm.lookup_shape("shape|k4"), Some(true));
        assert_eq!(warm.stats().stale, 0, "a migrated store replays cleanly");
        cleanup(&path);
    }

    #[test]
    fn v4_logs_are_migrated_to_v6() {
        let path = temp_path("migrate-v4");
        cleanup(&path);
        std::fs::write(
            &path,
            format!("{HEADER_V4}\nS1\tsat|k1\nI0\tincl|k2\nD1\tshape|k3\nM\tmt|k4\tU0;M0;P0;Q0;\n"),
        )
        .unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(cache.lookup("sat|k1"), Some(true));
        assert_eq!(cache.lookup_inclusion("incl|k2"), Some(false));
        assert_eq!(cache.lookup_shape("shape|k3"), Some(true));
        assert!(cache.lookup_minterms("mt|k4").is_some());
        drop(cache);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents.starts_with(lsm::MANIFEST_HEADER_V6),
            "v4 logs must be rewritten as the v6 manifest, got: {contents:?}"
        );
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.stats().disk_loaded, 4);
        assert_eq!(warm.stats().stale, 0, "a migrated store replays cleanly");
        cleanup(&path);
    }

    #[test]
    fn v5_logs_are_migrated_to_v6() {
        let path = temp_path("migrate-v5");
        cleanup(&path);
        std::fs::write(
            &path,
            format!("{HEADER_V5}\nS1\tsat|k1\nI0\tincl|k2\nD1\tshape|k3\nM\tmt|k4\tU0;M0;P0;Q0;\n"),
        )
        .unwrap();
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            assert_eq!(cache.stats().disk_loaded, 4);
            let contents = std::fs::read_to_string(&path).unwrap();
            assert!(
                contents.starts_with(lsm::MANIFEST_HEADER_V6),
                "migration happens at open, got: {contents:?}"
            );
        }
        let stats = MemoStore::inspect(&path).unwrap();
        assert_eq!(stats.version, Some(6));
        assert_eq!(
            (stats.solver, stats.inclusion, stats.shape, stats.minterms),
            (1, 1, 1, 1)
        );
        assert!(stats.segments >= 1);
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("sat|k1"), Some(true));
        assert_eq!(warm.lookup_inclusion("incl|k2"), Some(false));
        assert_eq!(warm.lookup_shape("shape|k3"), Some(true));
        assert!(warm.lookup_minterms("mt|k4").is_some());
        assert_eq!(warm.stats().stale, 0);
        cleanup(&path);
    }

    #[test]
    fn shape_verdicts_roundtrip_through_the_disk_log() {
        let path = temp_path("shape-roundtrip");
        cleanup(&path);
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            assert_eq!(cache.lookup_shape("shape|a"), None);
            cache.insert_shape("shape|a".into(), true);
            cache.insert_shape("shape|b".into(), false);
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.stats().disk_loaded, 2);
        assert_eq!(warm.lookup_shape("shape|a"), Some(true));
        assert_eq!(warm.lookup_shape("shape|b"), Some(false));
        cleanup(&path);
    }

    #[test]
    fn solver_inclusion_and_shape_namespaces_never_collide() {
        let cache = MemoStore::in_memory();
        cache.insert("shared-key".into(), true);
        assert_eq!(cache.lookup_inclusion("shared-key"), None);
        assert_eq!(cache.lookup_shape("shared-key"), None);
        cache.insert_inclusion("shared-key".into(), false);
        cache.insert_shape("shared-key".into(), true);
        assert_eq!(cache.lookup("shared-key"), Some(true));
        assert_eq!(cache.lookup_inclusion("shared-key"), Some(false));
        assert_eq!(cache.lookup_shape("shared-key"), Some(true));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn inclusion_verdicts_roundtrip_through_the_disk_log() {
        let path = temp_path("incl-roundtrip");
        cleanup(&path);
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            cache.insert_inclusion("incl|a".into(), true);
            cache.insert("sat|b".into(), false);
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.stats().disk_loaded, 2);
        assert_eq!(warm.lookup_inclusion("incl|a"), Some(true));
        assert_eq!(warm.lookup("sat|b"), Some(false));
        cleanup(&path);
    }

    #[test]
    fn minterm_sets_roundtrip_through_the_disk_log() {
        use hat_logic::{Atom, Term};
        use hat_sfa::Minterm;
        let path = temp_path("minterm-roundtrip");
        cleanup(&path);
        let set = MintermSet {
            minterms: vec![Minterm {
                op: "put".into(),
                assignment: vec![(Atom::Eq(Term::var("#arg0"), Term::var("$k0")), true)],
            }],
            uniform_literals: vec![Atom::Lt(Term::int(0), Term::var("$k0"))],
            pruned: 3,
            enum_queries: 5,
            from_memo: false,
        };
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            assert!(cache.lookup_minterms("mt|x").is_none());
            cache.insert_minterms("mt|x".into(), set.clone());
            assert!(cache.lookup_minterms("mt|x").is_some());
            let stats = cache.stats();
            assert_eq!((stats.minterm_hits, stats.minterm_misses), (1, 1));
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        let replayed = warm
            .lookup_minterms("mt|x")
            .expect("minterm sets are persisted as M records");
        assert_eq!(replayed.minterms, set.minterms);
        assert_eq!(replayed.uniform_literals, set.uniform_literals);
        assert_eq!(warm.stats().stale, 0);
        assert_eq!(warm.stats().disk_loaded, 1);
        cleanup(&path);
    }

    #[test]
    fn torn_minterm_payload_degrades_to_a_cold_entry() {
        let path = temp_path("torn-minterm");
        cleanup(&path);
        std::fs::write(
            &path,
            format!("{HEADER_V5}\nS1\tgood\nM\tmt|x\tU0;M1;O3#put"),
        )
        .unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(cache.lookup("good"), Some(true));
        assert!(
            cache.lookup_minterms("mt|x").is_none(),
            "a torn payload must not produce a wrong alphabet"
        );
        assert_eq!(cache.stats().stale, 1);
        cleanup(&path);
    }

    #[test]
    fn transition_memo_roundtrips_through_segments() {
        let path = temp_path("transition-memo");
        cleanup(&path);
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            assert!(cache.lookup_transition("tr|x").is_none());
            cache.insert_transition("tr|x".into(), Sfa::Zero);
            assert_eq!(cache.lookup_transition("tr|x"), Some(Sfa::Zero));
            let stats = cache.stats();
            assert_eq!((stats.transition_hits, stats.transition_misses), (1, 1));
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(
            warm.lookup_transition("tr|x"),
            Some(Sfa::Zero),
            "transitions are persisted as T segments since v6"
        );
        assert_eq!(warm.stats().disk_loaded, 1);
        assert_eq!(warm.stats().stale, 0);
        drop(warm);
        let stats = MemoStore::inspect(&path).unwrap();
        assert_eq!(stats.transitions, 1);
        cleanup(&path);
    }

    #[test]
    fn mirror_path_transitions_are_logged_and_replayed() {
        let path = temp_path("transition-mirror-log");
        cleanup(&path);
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            // The mirror path logs without a shared-tier store; twice is harmless.
            cache.log_transition("tr|m", &Sfa::Epsilon);
            cache.log_transition("tr|m", &Sfa::Epsilon);
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup_transition("tr|m"), Some(Sfa::Epsilon));
        assert_eq!(
            warm.stats().disk_loaded,
            1,
            "memtable dedup dropped the repeat"
        );
        cleanup(&path);
    }

    #[test]
    fn second_opener_degrades_to_in_memory_while_the_lock_is_held() {
        let path = temp_path("lock-contention");
        cleanup(&path);
        let first = MemoStore::with_disk_log(&path).unwrap();
        first.insert("sat|k1".into(), true);
        first.flush();
        assert!(!first.degraded());
        // A second store on the same path (another process in real life) must not
        // write — two writers would race the manifest and the memtable.
        let second = MemoStore::with_disk_log(&path).unwrap();
        assert!(second.degraded(), "the lock is held by `first`");
        assert_eq!(
            second.lookup("sat|k1"),
            Some(true),
            "a degraded opener still warm-starts from the segments"
        );
        second.insert("sat|k2".into(), false);
        second.flush();
        assert!(
            second.compact().is_err(),
            "a degraded store must not rewrite the contested store"
        );
        drop(second);
        drop(first);
        let reopened = MemoStore::with_disk_log(&path).unwrap();
        assert!(!reopened.degraded(), "the lock is released on drop");
        assert_eq!(reopened.lookup("sat|k1"), Some(true));
        assert_eq!(
            reopened.lookup("sat|k2"),
            None,
            "the degraded store's inserts were memory-only"
        );
        cleanup(&path);
    }

    #[test]
    fn stale_lock_of_a_dead_process_is_reclaimed() {
        let path = temp_path("lock-stale");
        cleanup(&path);
        // No live process has this PID (PID_MAX on Linux is well below u32::MAX).
        std::fs::write(lock_path_for(&path), "4294967294").unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        if Path::new("/proc").is_dir() {
            assert!(!cache.degraded(), "a dead holder's lock must be reclaimed");
            cache.insert("sat|k".into(), true);
            drop(cache);
            let warm = MemoStore::with_disk_log(&path).unwrap();
            assert_eq!(warm.lookup("sat|k"), Some(true));
        } else {
            // Without /proc, liveness cannot be probed: degrading is the safe answer.
            assert!(cache.degraded());
        }
        cleanup(&path);
    }

    #[test]
    fn compact_drops_cross_segment_duplicates_and_keeps_every_live_record() {
        let path = temp_path("compact");
        cleanup(&path);
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            for i in 0..10 {
                cache.insert(format!("sat|k{i}"), true);
            }
        }
        {
            // Second session: re-insert the same keys *without looking them up* — the
            // warm copies sit un-promoted in the disk tier, so the shared-tier inserts
            // are fresh and logged again, duplicating each record across segments.
            let cache = MemoStore::with_disk_log(&path).unwrap();
            for i in 0..10 {
                cache.insert(format!("sat|k{i}"), true);
            }
        }
        let stats = MemoStore::inspect(&path).unwrap();
        assert_eq!(stats.version, Some(6));
        assert_eq!((stats.solver, stats.duplicates), (10, 10));
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            let report = cache.compact().unwrap();
            assert_eq!(report.records_after, 10);
            assert!(report.records_before > report.records_after);
            assert!(report.bytes_after < report.bytes_before);
            // Inserts after the compaction pass land in fresh segments.
            cache.insert("sat|fresh".into(), true);
        }
        let stats = MemoStore::inspect(&path).unwrap();
        assert_eq!((stats.duplicates, stats.malformed), (0, 0));
        assert_eq!(stats.live(), 11);
        let warm = MemoStore::with_disk_log(&path).unwrap();
        for i in 0..10 {
            assert_eq!(warm.lookup(&format!("sat|k{i}")), Some(true));
        }
        assert_eq!(warm.lookup("sat|fresh"), Some(true));
        cleanup(&path);
    }

    #[test]
    fn dead_records_past_the_threshold_compact_automatically() {
        let path = temp_path("auto-compact");
        cleanup(&path);
        for _ in 0..2 {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            for i in 0..AUTO_COMPACT_MIN_DEAD {
                cache.insert(format!("sat|d{i}"), true);
            }
        }
        // The third open replays 16 live + 16 duplicate records: over the 1-in-4
        // ratio, so it nudges the compactor before returning.
        drop(MemoStore::with_disk_log(&path).unwrap());
        let stats = MemoStore::inspect(&path).unwrap();
        assert_eq!(
            stats.duplicates, 0,
            "opening must have merged the duplicate records away"
        );
        assert_eq!(stats.live(), AUTO_COMPACT_MIN_DEAD);
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("sat|d0"), Some(true));
        cleanup(&path);
    }

    #[test]
    fn a_few_dead_records_do_not_trigger_auto_compaction() {
        let path = temp_path("no-auto-compact");
        cleanup(&path);
        for _ in 0..2 {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            cache.insert("sat|k1".into(), true);
        }
        drop(MemoStore::with_disk_log(&path).unwrap());
        assert_eq!(
            MemoStore::inspect(&path).unwrap().duplicates,
            1,
            "below the threshold the segments are left as-is"
        );
        cleanup(&path);
    }

    #[test]
    fn warm_lookups_promote_out_of_the_disk_tier() {
        let path = temp_path("promote");
        cleanup(&path);
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            for i in 0..3 {
                cache.insert(format!("sat|p{i}"), true);
            }
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.len(), 3);
        assert_eq!(
            warm.stats().disk_lock_acquisitions,
            0,
            "replay is uncounted"
        );
        assert_eq!(warm.lookup("sat|p0"), Some(true));
        let after = warm.stats();
        assert_eq!(
            after.disk_lock_acquisitions, 2,
            "one read-through get plus one promotion evict"
        );
        assert_eq!(
            warm.len(),
            3,
            "promotion moves records, never duplicates them"
        );
        // The promoted key is now served by the shared tier: disk locks stay flat.
        assert_eq!(warm.lookup("sat|p0"), Some(true));
        assert_eq!(warm.stats().disk_lock_acquisitions, 2);
        cleanup(&path);
    }

    #[test]
    fn inspect_reads_a_live_v6_store_without_its_lock() {
        let path = temp_path("inspect-live");
        cleanup(&path);
        let cache = MemoStore::with_disk_log(&path).unwrap();
        cache.insert("sat|a".into(), true);
        cache.insert_transition("tr|b".into(), Sfa::Zero);
        cache.flush();
        // The store is alive and holds the writer lock; inspection must neither
        // block, nor degrade anything, nor touch the lock.
        assert!(lock_path_for(&path).exists());
        let stats = MemoStore::inspect(&path).unwrap();
        assert_eq!(stats.version, Some(6));
        assert_eq!((stats.solver, stats.transitions), (1, 1));
        assert!(stats.segments >= 1);
        assert_eq!(stats.torn_segments, 0);
        assert!(stats.bytes > 0);
        assert!(!cache.degraded());
        assert!(lock_path_for(&path).exists(), "inspect left the lock alone");
        drop(cache);
        cleanup(&path);
    }

    #[test]
    fn torn_segment_degrades_to_cold_not_corrupt() {
        let path = temp_path("torn-segment");
        cleanup(&path);
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            cache.insert("sat|solo".into(), true);
        }
        // Simulate a crash that mangled the segment after the manifest named it.
        let (state, _) = lsm::read_manifest(&path).unwrap().expect("v6 manifest");
        assert_eq!(state.segments.len(), 1);
        let seg_file = lsm::segment_dir_for(&path).join(state.segments[0].file_name());
        std::fs::write(&seg_file, "garbage").unwrap();
        {
            let warm = MemoStore::with_disk_log(&path).unwrap();
            assert_eq!(
                warm.lookup("sat|solo"),
                None,
                "a torn segment is cold, never half-trusted"
            );
            assert_eq!(warm.stats().stale, 1, "the torn segment's record is stale");
            assert!(!warm.degraded());
            warm.insert("sat|recovered".into(), true);
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("sat|recovered"), Some(true));
        cleanup(&path);
    }

    #[test]
    fn inspect_reports_per_kind_counts_and_dead_records() {
        let path = temp_path("inspect");
        cleanup(&path);
        std::fs::write(
            &path,
            format!(
                "{HEADER_V5}\nS1\tsat|k1\nS0\tsat|k2\nS1\tsat|k1\nI1\tincl|k3\nD0\tshape|k4\n\
                 M\tmt|k5\tU0;M0;P0;Q0;\nM\tmt|k6\tU0;M1;O3#put\ntorn-line"
            ),
        )
        .unwrap();
        let stats = MemoStore::inspect(&path).unwrap();
        assert_eq!(stats.version, Some(5));
        assert_eq!(stats.solver, 2);
        assert_eq!(stats.inclusion, 1);
        assert_eq!(stats.shape, 1);
        assert_eq!(stats.minterms, 1);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.malformed, 2, "torn payload + torn line");
        assert_eq!(stats.live(), 5);
        assert_eq!(stats.dead(), 3);
        assert!(stats.dead_ratio() > 0.3 && stats.dead_ratio() < 0.4);
        // Inspection is read-only: same result twice, no lock left behind.
        assert_eq!(MemoStore::inspect(&path).unwrap(), stats);
        assert!(!lock_path_for(&path).exists());
        cleanup(&path);
    }

    #[test]
    fn inspect_on_a_foreign_file_reads_only_the_header() {
        let path = temp_path("inspect-foreign");
        cleanup(&path);
        std::fs::write(&path, "hat-engine-cache v999\nS1\tk\n").unwrap();
        let stats = MemoStore::inspect(&path).unwrap();
        assert_eq!(stats.version, None);
        assert_eq!(stats.header.as_deref(), Some("hat-engine-cache v999"));
        assert_eq!(stats.live(), 0);
        cleanup(&path);
    }
}
