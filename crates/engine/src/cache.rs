//! The shared tiered memo store: one [`SharedTier`] per record kind, optionally fronting
//! an append-only disk log so repeated runs start warm, and optionally fronted by
//! per-worker [`crate::tier::LocalTier`]s (composed in [`crate::oracle::CachingOracle`])
//! so hot lookups touch no lock at all.
//!
//! Five record kinds share the store (see [`RecordKind`]):
//!
//! * **Solver verdicts** (`S` records): one satisfiability bit per canonical query key.
//! * **Inclusion verdicts** (`I` records): one bit per canonical automata-inclusion key —
//!   a hit skips minterm construction and DFA building entirely.
//! * **DFA-shape verdicts** (`D` records): one bit per canonical per-group product walk,
//!   keyed by [`crate::canon::shape_key`] (automaton pair + pruned alphabet + state
//!   bound, no axiom fingerprint) — a hit skips the product walk across contexts and
//!   benchmarks.
//! * **Minterm sets** (`M` records): whole memoised alphabet transformations keyed by
//!   [`crate::canon::alphabet_key`], persisted through the line-safe atom serialisation
//!   of [`crate::atomio`] — a warm run skips minterm enumeration entirely.
//! * **DFA transitions** (in-memory only): memoised `state × answers → successor`
//!   derivatives keyed by [`crate::canon::transition_key`]. Successor formulas are cheap
//!   to rebuild from warm solver verdicts, so they are not persisted.
//!
//! # Disk log format (v5)
//!
//! The log is a plain text file; the full record grammar, the locking and compaction
//! rules, the migration rules and the torn-payload semantics are specified in
//! `docs/CACHE_FORMAT.md` at the repository root. In short: the first line is the header
//! `hat-engine-cache v5`; every further line is either `<kind><verdict>\t<key>` where
//! `<kind>` is `S` (solver), `I` (inclusion) or `D` (DFA shape) and `<verdict>` is `0`
//! or `1`, or `M\t<key>\t<payload>` where `<payload>` is an [`crate::atomio`]
//! minterm-set record. Keys and payloads never contain tabs or newlines. Appends are
//! line-atomic under a mutex, so a log written by one run can be replayed by the next.
//!
//! Three v5-era properties distinguish it from v4:
//!
//! * **Single-writer locking.** Opening a log takes a sidecar lock (`<path>.lock`,
//!   holder PID inside). A second process finds the lock held and **degrades to
//!   in-memory** with a warning instead of interleaving appends — two writers could tear
//!   each other's lines. A lock whose holder is dead is reclaimed.
//! * **Compaction.** [`MemoStore::compact`] (CLI: `marple cache compact`) rewrites the
//!   log as a deduplicated snapshot of the live in-memory entries — duplicate keys,
//!   malformed lines and torn tails are dropped — via a temporary file and an atomic
//!   rename. Loading a log whose dead-record share passes a threshold compacts it
//!   automatically.
//! * Because a v5 log may be rewritten underneath a concurrent reader, pre-v5 binaries
//!   (which know neither the lock protocol nor compaction) must not append to one; they
//!   see a foreign header and safely run in-memory.
//!
//! Logs with a `v1` header (`<verdict>\t<key>` solver records only), `v2` header
//! (`S`/`I` records only), `v3` header (`S`/`I`/`M` records) or `v4` header
//! (`S`/`I`/`D`/`M` records) are **migrated**: their entries are loaded and the file is
//! atomically rewritten in the v5 format. A log with any other header — e.g. written by
//! a future format version — is ignored wholesale and counted as stale rather than
//! half-trusted (the store runs in-memory and never writes to the foreign file).
//! Malformed lines (a torn final write, an unparseable minterm payload) are skipped and
//! counted as stale.

use crate::atomio::{parse_minterm_set, ser_minterm_set};
use crate::tier::SharedTier;
use hat_sfa::{MintermSet, Sfa};
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const HEADER_V5: &str = "hat-engine-cache v5";
const HEADER_V4: &str = "hat-engine-cache v4";
const HEADER_V3: &str = "hat-engine-cache v3";
const HEADER_V2: &str = "hat-engine-cache v2";
const HEADER_V1: &str = "hat-engine-cache v1";

/// Automatic compaction fires when at least this many dead records are found at load…
const AUTO_COMPACT_MIN_DEAD: usize = 16;
/// …and they make up at least `1/AUTO_COMPACT_RATIO` of the log's records.
const AUTO_COMPACT_RATIO: usize = 4;

/// The record kinds of the store, doubling as the disk-record tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecordKind {
    /// Solver verdicts (`S`).
    Solver,
    /// Inclusion verdicts (`I`).
    Inclusion,
    /// DFA-shape verdicts (`D`).
    Shape,
    /// Minterm sets (`M`).
    Minterms,
    /// DFA transitions (never persisted).
    Transition,
}

impl RecordKind {
    /// The disk tag of this kind, or `None` for kinds that are never persisted.
    pub fn tag(self) -> Option<char> {
        match self {
            RecordKind::Solver => Some('S'),
            RecordKind::Inclusion => Some('I'),
            RecordKind::Shape => Some('D'),
            RecordKind::Minterms => Some('M'),
            RecordKind::Transition => None,
        }
    }

    /// A human-readable label (used by `marple cache stats`).
    pub fn label(self) -> &'static str {
        match self {
            RecordKind::Solver => "solver verdicts (S)",
            RecordKind::Inclusion => "inclusion verdicts (I)",
            RecordKind::Shape => "DFA-shape verdicts (D)",
            RecordKind::Minterms => "minterm sets (M)",
            RecordKind::Transition => "DFA transitions (in-memory)",
        }
    }

    /// The boolean-verdict kinds, in disk order.
    pub const BOOL_KINDS: [RecordKind; 3] =
        [RecordKind::Solver, RecordKind::Inclusion, RecordKind::Shape];
}

/// A point-in-time snapshot of the store counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Queries answered from a memo tier (local or shared, including entries loaded from
    /// disk).
    pub hits: usize,
    /// Queries that missed every tier and had to be solved.
    pub misses: usize,
    /// Entries replayed from the disk log at startup.
    pub disk_loaded: usize,
    /// Disk-log lines (or whole files) ignored as unreadable or from another version.
    pub stale: usize,
    /// Alphabet transformations answered from the minterm-set memo.
    pub minterm_hits: usize,
    /// Alphabet transformations that had to be enumerated.
    pub minterm_misses: usize,
    /// DFA transitions answered from the transition memo.
    pub transition_hits: usize,
    /// DFA transitions that had to be derived.
    pub transition_misses: usize,
    /// Shared-tier shard-lock acquisitions, across every record kind. Per-worker local
    /// tiers exist to keep this flat while hit counts grow.
    pub lock_acquisitions: usize,
}

impl CacheStatsSnapshot {
    /// Fraction of lookups answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicUsize,
    misses: AtomicUsize,
    disk_loaded: AtomicUsize,
    stale: AtomicUsize,
    minterm_hits: AtomicUsize,
    minterm_misses: AtomicUsize,
    transition_hits: AtomicUsize,
    transition_misses: AtomicUsize,
}

/// The sidecar lock guarding a disk log against concurrent writers. Created with
/// `create_new` (atomic on every serious filesystem), holding the owner's PID; removed
/// on drop. A lock whose holder no longer exists (per `/proc`) is reclaimed.
#[derive(Debug)]
struct CacheLock {
    path: PathBuf,
}

fn lock_path_for(log_path: &Path) -> PathBuf {
    let mut name = log_path.file_name().unwrap_or_default().to_os_string();
    name.push(".lock");
    log_path.with_file_name(name)
}

/// The advertised-address sidecar of a cache log: a long-lived `marpled` daemon that
/// owns `<path>` writes its listen address to `<path>.addr` so batch invocations that
/// find the lock held can tell the user exactly how to reach the warm store.
pub fn addr_path_for(log_path: &Path) -> PathBuf {
    let mut name = log_path.file_name().unwrap_or_default().to_os_string();
    name.push(".addr");
    log_path.with_file_name(name)
}

/// Who holds a cache log's single-writer lock (see [`MemoStore::lock_holder`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockHolder {
    /// PID written into the sidecar lock file.
    pub pid: u32,
    /// The holder's process name (`/proc/<pid>/comm`), when it can be read.
    pub name: Option<String>,
    /// The holder's advertised service address (`<path>.addr`), when one exists —
    /// written by a `marpled` daemon so lock-contended batch runs can suggest
    /// `--remote`.
    pub service_addr: Option<String>,
}

impl LockHolder {
    /// Whether the holder looks like a `marpled` verification daemon.
    pub fn is_daemon(&self) -> bool {
        self.name.as_deref() == Some("marpled") || self.service_addr.is_some()
    }
}

fn lock_holder_is_alive(lock_path: &Path) -> bool {
    let Ok(contents) = std::fs::read_to_string(lock_path) else {
        // Unreadable (racing creation, permissions): assume the holder is alive.
        return true;
    };
    let Ok(pid) = contents.trim().parse::<u32>() else {
        return true;
    };
    if !Path::new("/proc").is_dir() {
        // No way to probe liveness on this platform: assume alive (degrading to
        // in-memory is always safe; deleting a live writer's lock is not).
        return true;
    }
    Path::new(&format!("/proc/{pid}")).exists()
}

impl CacheLock {
    /// Tries to take the single-writer lock for `log_path`. `Ok(None)` means another
    /// live process holds it — the caller must degrade to in-memory operation. Real I/O
    /// failures (unwritable or missing directory) are propagated so the caller can
    /// report the actual problem instead of mis-diagnosing it as contention.
    fn acquire(log_path: &Path) -> std::io::Result<Option<CacheLock>> {
        let path = lock_path_for(log_path);
        // Two attempts: the second retries after reclaiming a stale lock.
        for _ in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    let _ = write!(file, "{}", std::process::id());
                    return Ok(Some(CacheLock { path }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if lock_holder_is_alive(&path) {
                        return Ok(None);
                    }
                    // The holder died without cleaning up. Reclaim atomically: rename
                    // the stale file to a per-process name, so of two racing
                    // reclaimers exactly one wins the rename — remove-then-create
                    // would let the loser delete the winner's freshly taken lock and
                    // reintroduce the double-writer hazard. Whoever loses any race
                    // here simply finds a *live* lock on the retry and degrades.
                    let mut claim = path.clone().into_os_string();
                    claim.push(format!(".reclaim.{}", std::process::id()));
                    let claim = PathBuf::from(claim);
                    if std::fs::rename(&path, &claim).is_ok() {
                        let _ = std::fs::remove_file(&claim);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }
}

impl Drop for CacheLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// One parsed disk-log line (shared by replay and [`MemoStore::inspect`]).
enum ParsedLine<'a> {
    Bit(RecordKind, bool, &'a str),
    Set(&'a str, &'a str),
    Bad,
}

/// Parses a typed (v2+) record line. v1 lines use [`parse_v1_line`] instead.
fn parse_typed_line(line: &str) -> ParsedLine<'_> {
    match line.split_once('\t') {
        Some(("S0", key)) => ParsedLine::Bit(RecordKind::Solver, false, key),
        Some(("S1", key)) => ParsedLine::Bit(RecordKind::Solver, true, key),
        Some(("I0", key)) => ParsedLine::Bit(RecordKind::Inclusion, false, key),
        Some(("I1", key)) => ParsedLine::Bit(RecordKind::Inclusion, true, key),
        Some(("D0", key)) => ParsedLine::Bit(RecordKind::Shape, false, key),
        Some(("D1", key)) => ParsedLine::Bit(RecordKind::Shape, true, key),
        Some(("M", rest)) => match rest.split_once('\t') {
            Some((key, payload)) => ParsedLine::Set(key, payload),
            None => ParsedLine::Bad,
        },
        _ => ParsedLine::Bad,
    }
}

fn parse_v1_line(line: &str) -> ParsedLine<'_> {
    match line.split_once('\t') {
        Some(("0", key)) => ParsedLine::Bit(RecordKind::Solver, false, key),
        Some(("1", key)) => ParsedLine::Bit(RecordKind::Solver, true, key),
        _ => ParsedLine::Bad,
    }
}

fn version_of(header: &str) -> Option<u32> {
    match header {
        HEADER_V1 => Some(1),
        HEADER_V2 => Some(2),
        HEADER_V3 => Some(3),
        HEADER_V4 => Some(4),
        HEADER_V5 => Some(5),
        _ => None,
    }
}

/// The result of one [`MemoStore::compact`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Log size in bytes before the pass.
    pub bytes_before: u64,
    /// Log size in bytes after the pass.
    pub bytes_after: u64,
    /// Record lines (excluding the header) before the pass.
    pub records_before: usize,
    /// Record lines after the pass — exactly the live entries.
    pub records_after: usize,
}

/// What a read-only scan of a cache file found (CLI: `marple cache stats`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheFileStats {
    /// The header line, when the file is non-empty.
    pub header: Option<String>,
    /// The format version, when the header is a known `hat-engine-cache` header.
    pub version: Option<u32>,
    /// Live (first-occurrence, well-formed) solver-verdict records.
    pub solver: usize,
    /// Live inclusion-verdict records.
    pub inclusion: usize,
    /// Live DFA-shape records.
    pub shape: usize,
    /// Live minterm-set records.
    pub minterms: usize,
    /// Records whose key already occurred earlier (superseded — compaction drops them).
    pub duplicates: usize,
    /// Lines that parse under no record grammar (torn writes — compaction drops them).
    pub malformed: usize,
    /// File size in bytes.
    pub bytes: u64,
}

impl CacheFileStats {
    /// Total live records.
    pub fn live(&self) -> usize {
        self.solver + self.inclusion + self.shape + self.minterms
    }

    /// Total dead records (duplicates plus malformed lines).
    pub fn dead(&self) -> usize {
        self.duplicates + self.malformed
    }

    /// Dead share of all records, in `[0, 1]`.
    pub fn dead_ratio(&self) -> f64 {
        let total = self.live() + self.dead();
        if total == 0 {
            0.0
        } else {
            self.dead() as f64 / total as f64
        }
    }
}

/// Shard count of the transition tier. Coarse on purpose: with the worker-side
/// [`crate::tier::ShardMirror`] policy the shared transition tier sees only occasional
/// whole-shard syncs and batched flushes, and a flush costs one lock per *distinct*
/// shard it touches — so fewer shards means better batch amortisation, while the
/// per-key-hit contention argument for fine sharding no longer applies.
const TRANSITION_SHARDS: usize = 4;

/// The shared tiers of every record kind, instantiated once per kind.
#[derive(Debug)]
struct KindTiers {
    solver: SharedTier<bool>,
    inclusion: SharedTier<bool>,
    shape: SharedTier<bool>,
    minterms: SharedTier<MintermSet>,
    transitions: SharedTier<Sfa>,
}

impl Default for KindTiers {
    fn default() -> Self {
        KindTiers {
            solver: SharedTier::default(),
            inclusion: SharedTier::default(),
            shape: SharedTier::default(),
            minterms: SharedTier::default(),
            transitions: SharedTier::with_shards(TRANSITION_SHARDS),
        }
    }
}

impl KindTiers {
    fn bools(&self, kind: RecordKind) -> &SharedTier<bool> {
        match kind {
            RecordKind::Solver => &self.solver,
            RecordKind::Inclusion => &self.inclusion,
            RecordKind::Shape => &self.shape,
            RecordKind::Minterms | RecordKind::Transition => {
                unreachable!("{kind:?} is not a boolean record kind")
            }
        }
    }
}

/// The concurrent tiered memo store shared by every worker of a verification run: the
/// shared-tier and disk-tier levels of the hierarchy (workers add their own local tier
/// in front; see [`crate::tier`]).
pub struct MemoStore {
    tiers: KindTiers,
    log: Option<Mutex<BufWriter<File>>>,
    /// Held for the lifetime of a disk-backed store; releasing it (drop) lets the next
    /// opener write.
    #[allow(dead_code)]
    lock: Option<CacheLock>,
    path: Option<PathBuf>,
    /// Set when another live process held the log's lock at open time: the store loaded
    /// what it could and runs in-memory, never writing to the contested file.
    degraded: bool,
    counters: CacheCounters,
}

/// The pre-v5 name of [`MemoStore`], kept for readability of older discussions.
pub type QueryCache = MemoStore;

impl std::fmt::Debug for MemoStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoStore")
            .field("entries", &self.len())
            .field("path", &self.path)
            .field("degraded", &self.degraded)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for MemoStore {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl MemoStore {
    fn empty() -> Self {
        MemoStore {
            tiers: KindTiers::default(),
            log: None,
            lock: None,
            path: None,
            degraded: false,
            counters: CacheCounters::default(),
        }
    }

    /// A purely in-memory store (no persistence).
    ///
    /// ```
    /// use hat_engine::MemoStore;
    ///
    /// let cache = MemoStore::in_memory();
    /// assert_eq!(cache.lookup("sat|k"), None);
    /// cache.insert("sat|k".into(), true);
    /// assert_eq!(cache.lookup("sat|k"), Some(true));
    /// let stats = cache.stats();
    /// assert_eq!((stats.hits, stats.misses), (1, 1));
    /// ```
    pub fn in_memory() -> Self {
        Self::empty()
    }

    /// A store backed by an append-only log at `path`. Existing entries are replayed
    /// into memory (warm start) and new verdicts are appended. A `v1`–`v4` log is
    /// migrated to the current format in place (atomically, via a temporary file); a v5
    /// log whose dead-record share passes the auto-compaction threshold is compacted the
    /// same way. A file whose header belongs to any other format version is left
    /// untouched: the store runs in-memory only and counts the file as stale (destroying
    /// data a newer binary wrote would be worse than running cold).
    ///
    /// Opening takes the sidecar lock `<path>.lock`. If another live process holds it,
    /// this store **degrades to in-memory** (entries are still replayed for a warm
    /// start, but nothing is migrated, compacted or appended) and
    /// [`MemoStore::degraded`] reports `true`.
    pub fn with_disk_log(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut cache = Self::empty();
        let path = path.as_ref();
        cache.path = Some(path.to_path_buf());
        let lock = CacheLock::acquire(path)?;
        if lock.is_none() {
            cache.degraded = true;
            match Self::lock_holder(path) {
                Some(holder) if holder.is_daemon() => {
                    let reach = match &holder.service_addr {
                        Some(addr) => format!("rerun with `--remote {addr}` to use its warm store"),
                        None => {
                            "rerun with `--remote <its address>` to use its warm store".to_string()
                        }
                    };
                    eprintln!(
                        "warning: cache `{}` is owned by a running marpled daemon (pid {}); \
                         {reach} — this run keeps its verdicts in memory only",
                        path.display(),
                        holder.pid
                    );
                }
                Some(holder) => eprintln!(
                    "warning: cache `{}` is locked by another process (pid {}{}); this run \
                     keeps its verdicts in memory only",
                    path.display(),
                    holder.pid,
                    holder
                        .name
                        .as_deref()
                        .map(|n| format!(", `{n}`"))
                        .unwrap_or_default()
                ),
                None => eprintln!(
                    "warning: cache `{}` is locked by another process; this run keeps its \
                     verdicts in memory only",
                    path.display()
                ),
            }
        }
        // How to open the log after reading: start a fresh v5 file, append to the
        // existing v5 file, or rewrite a migrated (or compaction-worthy) file.
        let mut fresh = true;
        let mut rewrite = false;
        let mut duplicates = 0usize;
        let mut stale_lines = 0usize;
        if path.exists() {
            let reader = BufReader::new(File::open(path)?);
            let mut lines = reader.lines();
            match lines.next() {
                Some(Ok(header)) if version_of(&header).is_some() => {
                    fresh = false;
                    // v1 records are untyped; v2–v5 share one grammar (each version adds
                    // a record kind), so one loop replays them all. Any pre-v5 file is
                    // rewritten under the current header.
                    let v1 = header == HEADER_V1;
                    rewrite = header != HEADER_V5;
                    for line in lines {
                        let Ok(line) = line else {
                            stale_lines += 1;
                            continue;
                        };
                        let parsed = if v1 {
                            parse_v1_line(&line)
                        } else {
                            parse_typed_line(&line)
                        };
                        match parsed {
                            ParsedLine::Bit(kind, verdict, key) => {
                                if cache.load_bit(kind, key, verdict) {
                                    cache.counters.disk_loaded.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    duplicates += 1;
                                }
                            }
                            ParsedLine::Set(key, payload) => match parse_minterm_set(payload) {
                                Some(set) => {
                                    if cache.tiers.minterms.put_quiet(key.to_string(), set) {
                                        cache.counters.disk_loaded.fetch_add(1, Ordering::Relaxed);
                                    } else {
                                        duplicates += 1;
                                    }
                                }
                                None => stale_lines += 1,
                            },
                            ParsedLine::Bad => stale_lines += 1,
                        }
                    }
                }
                Some(_) => {
                    // Unknown header: a different format version (or not a cache file at
                    // all). Do not write to it — and release the writer lock, since this
                    // store will never use it.
                    cache.counters.stale.fetch_add(1, Ordering::Relaxed);
                    return Ok(cache);
                }
                None => {}
            }
        }
        cache
            .counters
            .stale
            .fetch_add(stale_lines, Ordering::Relaxed);
        if cache.degraded {
            // Another process owns the file: warm entries are loaded, but no migration,
            // no compaction, no appends.
            return Ok(cache);
        }
        // Dead records (duplicate keys from merged logs, torn lines) past the threshold
        // trigger the compaction pass a migration performs anyway.
        let dead = duplicates + stale_lines;
        let total = cache.persisted_len() + dead;
        if dead >= AUTO_COMPACT_MIN_DEAD && dead * AUTO_COMPACT_RATIO >= total {
            rewrite = true;
        }
        if rewrite {
            cache.write_snapshot(path)?;
        }
        let mut file = if fresh {
            // Only reached for a missing or empty file.
            let file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?;
            BufWriter::new(file)
        } else {
            let mut existing = OpenOptions::new().read(true).append(true).open(path)?;
            // A run killed mid-write can leave the final line without its newline;
            // appending directly after it would merge two records into one unparseable
            // line. Terminate the torn line first.
            use std::io::{Read, Seek, SeekFrom};
            let len = existing.seek(SeekFrom::End(0))?;
            if len > 0 {
                existing.seek(SeekFrom::End(-1))?;
                let mut last = [0u8; 1];
                existing.read_exact(&mut last)?;
                if last != [b'\n'] {
                    existing.write_all(b"\n")?;
                }
            }
            BufWriter::new(existing)
        };
        if fresh {
            writeln!(file, "{HEADER_V5}")?;
        }
        cache.log = Some(Mutex::new(file));
        cache.lock = lock;
        Ok(cache)
    }

    /// Whether lock contention forced this store to run in-memory despite a configured
    /// disk log.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Who currently holds the single-writer lock of the log at `path`, if anyone:
    /// the PID from the sidecar lock file, the process name from `/proc` when
    /// available, and the advertised service address from `<path>.addr` when a
    /// `marpled` daemon wrote one. `None` when no lock file exists or it is
    /// unreadable.
    pub fn lock_holder(path: impl AsRef<Path>) -> Option<LockHolder> {
        let path = path.as_ref();
        let contents = std::fs::read_to_string(lock_path_for(path)).ok()?;
        let pid = contents.trim().parse::<u32>().ok()?;
        let name = std::fs::read_to_string(format!("/proc/{pid}/comm"))
            .ok()
            .map(|s| s.trim().to_string());
        let service_addr = std::fs::read_to_string(addr_path_for(path))
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty());
        Some(LockHolder {
            pid,
            name,
            service_addr,
        })
    }

    /// Compacts the disk log only when its dead-record share passes the same threshold
    /// automatic load-time compaction uses (at least `AUTO_COMPACT_MIN_DEAD` dead
    /// records making up ≥ 1/`AUTO_COMPACT_RATIO` of the log). Returns `Ok(None)`
    /// when the log is healthy (or the store is in-memory / degraded — nothing to
    /// compact then). A long-lived daemon calls this on graceful shutdown so the log it
    /// leaves behind is tidy without paying a rewrite on every exit.
    pub fn compact_if_needed(&self) -> std::io::Result<Option<CompactionReport>> {
        let Some(path) = &self.path else {
            return Ok(None);
        };
        if self.degraded || self.log.is_none() {
            return Ok(None);
        }
        self.flush();
        let stats = Self::inspect(path)?;
        let dead = stats.dead();
        if dead >= AUTO_COMPACT_MIN_DEAD && dead * AUTO_COMPACT_RATIO >= stats.live() + dead {
            self.compact().map(Some)
        } else {
            Ok(None)
        }
    }

    /// Scans the cache file at `path` read-only — no lock taken, no migration, nothing
    /// written — and reports per-kind live counts, dead records and the header version.
    pub fn inspect(path: impl AsRef<Path>) -> std::io::Result<CacheFileStats> {
        let path = path.as_ref();
        let mut stats = CacheFileStats {
            bytes: std::fs::metadata(path)?.len(),
            ..CacheFileStats::default()
        };
        let reader = BufReader::new(File::open(path)?);
        let mut lines = reader.lines();
        let Some(Ok(header)) = lines.next() else {
            return Ok(stats);
        };
        stats.version = version_of(&header);
        stats.header = Some(header.clone());
        let Some(version) = stats.version else {
            return Ok(stats); // Foreign: nothing beyond the header is ours to judge.
        };
        let mut seen: [HashSet<String>; 4] = Default::default();
        for line in lines {
            let Ok(line) = line else {
                stats.malformed += 1;
                continue;
            };
            let parsed = if version == 1 {
                parse_v1_line(&line)
            } else {
                parse_typed_line(&line)
            };
            match parsed {
                ParsedLine::Bit(kind, _, key) => {
                    let (slot, counter) = match kind {
                        RecordKind::Solver => (0, &mut stats.solver),
                        RecordKind::Inclusion => (1, &mut stats.inclusion),
                        RecordKind::Shape => (2, &mut stats.shape),
                        _ => unreachable!(),
                    };
                    if seen[slot].insert(key.to_string()) {
                        *counter += 1;
                    } else {
                        stats.duplicates += 1;
                    }
                }
                ParsedLine::Set(key, payload) => {
                    if parse_minterm_set(payload).is_none() {
                        stats.malformed += 1;
                    } else if seen[3].insert(key.to_string()) {
                        stats.minterms += 1;
                    } else {
                        stats.duplicates += 1;
                    }
                }
                ParsedLine::Bad => stats.malformed += 1,
            }
        }
        Ok(stats)
    }

    /// Compacts the disk log: rewrites it as a snapshot of exactly the live in-memory
    /// entries (duplicates, superseded records and torn lines are gone) via a temporary
    /// file and an atomic rename, then re-attaches the appender to the new file. Errors
    /// for an in-memory store and for one that degraded at open (the contested file
    /// belongs to the lock holder).
    pub fn compact(&self) -> std::io::Result<CompactionReport> {
        let (Some(path), Some(log)) = (&self.path, &self.log) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                if self.degraded {
                    "cache degraded to in-memory (log locked by another process)"
                } else {
                    "cache has no disk log to compact"
                },
            ));
        };
        let mut writer = log.lock().expect("cache log poisoned");
        writer.flush()?;
        let bytes_before = std::fs::metadata(path)?.len();
        let records_before = BufReader::new(File::open(path)?)
            .lines()
            .count()
            .saturating_sub(1);
        self.write_snapshot(path)?;
        // The old handle points at the unlinked inode; appends must go to the new file.
        *writer = BufWriter::new(OpenOptions::new().append(true).open(path)?);
        Ok(CompactionReport {
            bytes_before,
            bytes_after: std::fs::metadata(path)?.len(),
            records_before,
            records_after: self.persisted_len(),
        })
    }

    /// Atomically rewrites the log at `path` with the current in-memory entries in the
    /// v5 format (migration of an old log, or a compaction pass).
    fn write_snapshot(&self, path: &Path) -> std::io::Result<()> {
        let mut tmp = path.to_path_buf();
        tmp.set_extension("compacting");
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            writeln!(out, "{HEADER_V5}")?;
            for kind in RecordKind::BOOL_KINDS {
                let tag = kind.tag().expect("bool kinds are persisted");
                for (key, verdict) in self.tiers.bools(kind).snapshot() {
                    writeln!(out, "{tag}{}\t{key}", u8::from(verdict))?;
                }
            }
            for (key, set) in self.tiers.minterms.snapshot() {
                writeln!(out, "M\t{key}\t{}", ser_minterm_set(&set))?;
            }
            out.flush()?;
            // Sync data before the rename: on filesystems with delayed allocation a
            // power loss could otherwise persist the rename but drop the new file's
            // blocks, leaving a truncated log instead of old-or-new.
            out.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads one boolean record from disk without counting tier locks; `true` when
    /// fresh.
    fn load_bit(&self, kind: RecordKind, key: &str, verdict: bool) -> bool {
        self.tiers.bools(kind).put_quiet(key.to_string(), verdict)
    }

    /// Number of entries that would survive to disk (every persisted kind, deduplicated
    /// by definition of a map).
    fn persisted_len(&self) -> usize {
        use crate::tier::MemoTier;
        RecordKind::BOOL_KINDS
            .iter()
            .map(|&k| MemoTier::<String, bool>::len(self.tiers.bools(k)))
            .sum::<usize>()
            + MemoTier::<String, MintermSet>::len(&self.tiers.minterms)
    }

    /// Records a local-tier hit for `kind` in the store-wide hit counters, so snapshots
    /// keep meaning "answered from a memo" no matter which tier answered.
    pub fn note_local_hit(&self, kind: RecordKind) {
        self.note_local(kind, true);
    }

    /// Records a local-tier lookup outcome for `kind` in the store-wide counters (used
    /// by tier policies that answer without consulting the shared tier per key, like
    /// the transition shard mirror).
    pub fn note_local(&self, kind: RecordKind, hit: bool) {
        let counter = match (kind, hit) {
            (RecordKind::Minterms, true) => &self.counters.minterm_hits,
            (RecordKind::Minterms, false) => &self.counters.minterm_misses,
            (RecordKind::Transition, true) => &self.counters.transition_hits,
            (RecordKind::Transition, false) => &self.counters.transition_misses,
            (_, true) => &self.counters.hits,
            (_, false) => &self.counters.misses,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// The shared transition tier, for the worker-side
    /// [`ShardMirror`](crate::tier::ShardMirror) policy.
    pub fn transition_tier(&self) -> &SharedTier<Sfa> {
        &self.tiers.transitions
    }

    /// Looks a boolean verdict up in the shared tier of `kind`, counting a hit or a
    /// miss (one shard-lock acquisition).
    pub fn lookup_bool(&self, kind: RecordKind, key: &str) -> Option<bool> {
        let found = self.tiers.bools(kind).get_str(key);
        match found {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Records a boolean verdict in the shared tier of `kind`, appending it to the disk
    /// log when it is fresh and a log is attached. Racing inserts of the same key are
    /// harmless: canonical keys determine their verdict.
    pub fn insert_bool(&self, kind: RecordKind, key: String, verdict: bool) {
        let fresh = self.tiers.bools(kind).put_owned(key.clone(), verdict);
        if fresh {
            if let (Some(log), Some(tag)) = (&self.log, kind.tag()) {
                let mut log = log.lock().expect("cache log poisoned");
                let _ = writeln!(log, "{tag}{}\t{key}", u8::from(verdict));
            }
        }
    }

    /// Looks a solver-verdict key up, counting a hit or a miss.
    pub fn lookup(&self, key: &str) -> Option<bool> {
        self.lookup_bool(RecordKind::Solver, key)
    }

    /// Records a solver verdict, appending it to the disk log when one is attached.
    pub fn insert(&self, key: String, verdict: bool) {
        self.insert_bool(RecordKind::Solver, key, verdict);
    }

    /// Looks an inclusion-verdict key up, counting a hit or a miss.
    pub fn lookup_inclusion(&self, key: &str) -> Option<bool> {
        self.lookup_bool(RecordKind::Inclusion, key)
    }

    /// Records an automata-inclusion verdict.
    pub fn insert_inclusion(&self, key: String, verdict: bool) {
        self.insert_bool(RecordKind::Inclusion, key, verdict);
    }

    /// Looks a DFA-shape verdict key up, counting a hit or a miss.
    pub fn lookup_shape(&self, key: &str) -> Option<bool> {
        self.lookup_bool(RecordKind::Shape, key)
    }

    /// Records a per-group DFA-shape verdict (see [`crate::canon::shape_key`]).
    pub fn insert_shape(&self, key: String, verdict: bool) {
        self.insert_bool(RecordKind::Shape, key, verdict);
    }

    /// Looks a memoised minterm set up by its canonical alphabet key.
    pub fn lookup_minterms(&self, key: &str) -> Option<MintermSet> {
        let found = self.tiers.minterms.get_str(key);
        match found {
            Some(_) => self.counters.minterm_hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.minterm_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoises an enumerated minterm set, appending it to the disk log when one is
    /// attached (racing stores of the same key are harmless because enumeration is a
    /// pure function of the canonical key).
    pub fn insert_minterms(&self, key: String, set: MintermSet) {
        let fresh = self.tiers.minterms.put_owned(key.clone(), set.clone());
        if fresh {
            if let Some(log) = &self.log {
                let mut log = log.lock().expect("cache log poisoned");
                let _ = writeln!(log, "M\t{key}\t{}", ser_minterm_set(&set));
            }
        }
    }

    /// Looks a memoised DFA transition up by its canonical transition key.
    pub fn lookup_transition(&self, key: &str) -> Option<Sfa> {
        let found = self.tiers.transitions.get_str(key);
        match found {
            Some(_) => self
                .counters
                .transition_hits
                .fetch_add(1, Ordering::Relaxed),
            None => self
                .counters
                .transition_misses
                .fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoises a DFA transition (in-memory only: successors are cheap to rebuild from
    /// warm solver verdicts; racing stores of the same key are harmless because the
    /// successor is a pure function of the canonical key).
    pub fn insert_transition(&self, key: String, succ: Sfa) {
        self.tiers.transitions.put_owned(key, succ);
    }

    /// Flushes the disk log (called at the end of a run; also happens on drop).
    pub fn flush(&self) {
        if let Some(log) = &self.log {
            let _ = log.lock().expect("cache log poisoned").flush();
        }
    }

    /// Number of cached boolean verdicts (all three kinds).
    pub fn len(&self) -> usize {
        use crate::tier::MemoTier;
        RecordKind::BOOL_KINDS
            .iter()
            .map(|&k| MemoTier::<String, bool>::len(self.tiers.bools(k)))
            .sum()
    }

    /// Whether the store holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-kind shared-tier lock acquisitions (diagnostic: shows which record kind's
    /// traffic the local tiers are or are not absorbing).
    pub fn lock_breakdown(&self) -> [(RecordKind, usize); 5] {
        [
            (RecordKind::Solver, self.tiers.solver.lock_acquisitions()),
            (
                RecordKind::Inclusion,
                self.tiers.inclusion.lock_acquisitions(),
            ),
            (RecordKind::Shape, self.tiers.shape.lock_acquisitions()),
            (
                RecordKind::Minterms,
                self.tiers.minterms.lock_acquisitions(),
            ),
            (
                RecordKind::Transition,
                self.tiers.transitions.lock_acquisitions(),
            ),
        ]
    }

    /// A snapshot of the hit/miss/disk/lock counters.
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            disk_loaded: self.counters.disk_loaded.load(Ordering::Relaxed),
            stale: self.counters.stale.load(Ordering::Relaxed),
            minterm_hits: self.counters.minterm_hits.load(Ordering::Relaxed),
            minterm_misses: self.counters.minterm_misses.load(Ordering::Relaxed),
            transition_hits: self.counters.transition_hits.load(Ordering::Relaxed),
            transition_misses: self.counters.transition_misses.load(Ordering::Relaxed),
            lock_acquisitions: self.tiers.solver.lock_acquisitions()
                + self.tiers.inclusion.lock_acquisitions()
                + self.tiers.shape.lock_acquisitions()
                + self.tiers.minterms.lock_acquisitions()
                + self.tiers.transitions.lock_acquisitions(),
        }
    }
}

impl Drop for MemoStore {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hat-engine-test-{}-{name}", std::process::id()));
        p
    }

    /// Removes a test log and its sidecar lock.
    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(lock_path_for(path));
    }

    #[test]
    fn lookup_miss_then_hit() {
        let cache = MemoStore::in_memory();
        assert_eq!(cache.lookup("k"), None);
        cache.insert("k".into(), true);
        assert_eq!(cache.lookup("k"), Some(true));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(
            stats.lock_acquisitions, 3,
            "two lookups and one insert are one shard lock each"
        );
    }

    #[test]
    fn disk_log_roundtrip() {
        let path = temp_path("roundtrip");
        cleanup(&path);
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            cache.insert("alpha".into(), true);
            cache.insert("beta".into(), false);
            cache.flush();
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.stats().disk_loaded, 2);
        assert_eq!(warm.lookup("alpha"), Some(true));
        assert_eq!(warm.lookup("beta"), Some(false));
        assert_eq!(warm.stats().stale, 0);
        cleanup(&path);
    }

    #[test]
    fn duplicate_inserts_are_logged_once() {
        let path = temp_path("dedup");
        cleanup(&path);
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            cache.insert("k".into(), true);
            cache.insert("k".into(), true);
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.stats().disk_loaded, 1);
        cleanup(&path);
    }

    #[test]
    fn unknown_header_is_ignored_and_left_untouched() {
        let path = temp_path("stale");
        let foreign = "hat-engine-cache v999\nS1\tk\n";
        std::fs::write(&path, foreign).unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().stale, 1);
        // The cache degrades to in-memory: inserts work but are not persisted, and the
        // foreign file's contents survive byte for byte.
        cache.insert("k2".into(), false);
        cache.flush();
        drop(cache);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), foreign);
        cleanup(&path);
    }

    #[test]
    fn torn_final_line_is_skipped_and_terminated_before_appending() {
        let path = temp_path("torn");
        std::fs::write(
            &path,
            format!("{HEADER_V5}\nS1\tgood\nmalformed-without-tab"),
        )
        .unwrap();
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            assert_eq!(cache.lookup("good"), Some(true));
            assert_eq!(cache.stats().stale, 1);
            // Appending after the torn line must not merge records into one line.
            cache.insert("fresh".into(), true);
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("good"), Some(true));
        assert_eq!(warm.lookup("fresh"), Some(true));
        cleanup(&path);
    }

    #[test]
    fn v1_logs_are_migrated_not_misread() {
        let path = temp_path("migrate-v1");
        std::fs::write(
            &path,
            "hat-engine-cache v1\n1\tsat|k1\n0\tsat|k2\nmalformed",
        )
        .unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(cache.lookup("sat|k1"), Some(true));
        assert_eq!(cache.lookup("sat|k2"), Some(false));
        assert_eq!(cache.stats().disk_loaded, 2);
        assert_eq!(cache.stats().stale, 1, "the torn v1 line is skipped");
        // New entries of both kinds append to the migrated file.
        cache.insert_inclusion("incl|k3".into(), true);
        drop(cache);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents.starts_with(HEADER_V5),
            "the file must be rewritten with the current header, got: {contents:?}"
        );
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("sat|k1"), Some(true));
        assert_eq!(warm.lookup("sat|k2"), Some(false));
        assert_eq!(warm.lookup_inclusion("incl|k3"), Some(true));
        assert_eq!(warm.stats().stale, 0, "a migrated log replays cleanly");
        cleanup(&path);
    }

    #[test]
    fn v2_logs_are_migrated_to_v5() {
        let path = temp_path("migrate-v2");
        std::fs::write(&path, format!("{HEADER_V2}\nS1\tsat|k1\nI0\tincl|k2\n")).unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(cache.lookup("sat|k1"), Some(true));
        assert_eq!(cache.lookup_inclusion("incl|k2"), Some(false));
        // Minterm sets now persist alongside the migrated records.
        cache.insert_minterms("mt|k3".into(), MintermSet::default());
        drop(cache);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents.starts_with(HEADER_V5),
            "v2 logs must be rewritten under the v5 header, got: {contents:?}"
        );
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("sat|k1"), Some(true));
        assert_eq!(warm.lookup_inclusion("incl|k2"), Some(false));
        assert!(warm.lookup_minterms("mt|k3").is_some());
        assert_eq!(warm.stats().stale, 0, "a migrated log replays cleanly");
        cleanup(&path);
    }

    #[test]
    fn v3_logs_are_migrated_to_v5() {
        let path = temp_path("migrate-v3");
        std::fs::write(
            &path,
            format!("{HEADER_V3}\nS1\tsat|k1\nI0\tincl|k2\nM\tmt|k3\tU0;M0;P0;Q0;\n"),
        )
        .unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(cache.lookup("sat|k1"), Some(true));
        assert_eq!(cache.lookup_inclusion("incl|k2"), Some(false));
        assert!(cache.lookup_minterms("mt|k3").is_some());
        // Shape verdicts now persist alongside the migrated records.
        cache.insert_shape("shape|k4".into(), true);
        drop(cache);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents.starts_with(HEADER_V5),
            "v3 logs must be rewritten under the v5 header, got: {contents:?}"
        );
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("sat|k1"), Some(true));
        assert_eq!(warm.lookup_inclusion("incl|k2"), Some(false));
        assert!(warm.lookup_minterms("mt|k3").is_some());
        assert_eq!(warm.lookup_shape("shape|k4"), Some(true));
        assert_eq!(warm.stats().stale, 0, "a migrated log replays cleanly");
        cleanup(&path);
    }

    #[test]
    fn v4_logs_are_migrated_to_v5() {
        let path = temp_path("migrate-v4");
        std::fs::write(
            &path,
            format!("{HEADER_V4}\nS1\tsat|k1\nI0\tincl|k2\nD1\tshape|k3\nM\tmt|k4\tU0;M0;P0;Q0;\n"),
        )
        .unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(cache.lookup("sat|k1"), Some(true));
        assert_eq!(cache.lookup_inclusion("incl|k2"), Some(false));
        assert_eq!(cache.lookup_shape("shape|k3"), Some(true));
        assert!(cache.lookup_minterms("mt|k4").is_some());
        drop(cache);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents.starts_with(HEADER_V5),
            "v4 logs must be rewritten under the v5 header, got: {contents:?}"
        );
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.stats().disk_loaded, 4);
        assert_eq!(warm.stats().stale, 0, "a migrated log replays cleanly");
        cleanup(&path);
    }

    #[test]
    fn shape_verdicts_roundtrip_through_the_disk_log() {
        let path = temp_path("shape-roundtrip");
        cleanup(&path);
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            assert_eq!(cache.lookup_shape("shape|a"), None);
            cache.insert_shape("shape|a".into(), true);
            cache.insert_shape("shape|b".into(), false);
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.stats().disk_loaded, 2);
        assert_eq!(warm.lookup_shape("shape|a"), Some(true));
        assert_eq!(warm.lookup_shape("shape|b"), Some(false));
        cleanup(&path);
    }

    #[test]
    fn solver_inclusion_and_shape_namespaces_never_collide() {
        let cache = MemoStore::in_memory();
        cache.insert("shared-key".into(), true);
        assert_eq!(cache.lookup_inclusion("shared-key"), None);
        assert_eq!(cache.lookup_shape("shared-key"), None);
        cache.insert_inclusion("shared-key".into(), false);
        cache.insert_shape("shared-key".into(), true);
        assert_eq!(cache.lookup("shared-key"), Some(true));
        assert_eq!(cache.lookup_inclusion("shared-key"), Some(false));
        assert_eq!(cache.lookup_shape("shared-key"), Some(true));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn inclusion_verdicts_roundtrip_through_the_disk_log() {
        let path = temp_path("incl-roundtrip");
        cleanup(&path);
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            cache.insert_inclusion("incl|a".into(), true);
            cache.insert("sat|b".into(), false);
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.stats().disk_loaded, 2);
        assert_eq!(warm.lookup_inclusion("incl|a"), Some(true));
        assert_eq!(warm.lookup("sat|b"), Some(false));
        cleanup(&path);
    }

    #[test]
    fn minterm_sets_roundtrip_through_the_disk_log() {
        use hat_logic::{Atom, Term};
        use hat_sfa::Minterm;
        let path = temp_path("minterm-roundtrip");
        cleanup(&path);
        let set = MintermSet {
            minterms: vec![Minterm {
                op: "put".into(),
                assignment: vec![(Atom::Eq(Term::var("#arg0"), Term::var("$k0")), true)],
            }],
            uniform_literals: vec![Atom::Lt(Term::int(0), Term::var("$k0"))],
            pruned: 3,
            enum_queries: 5,
            from_memo: false,
        };
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            assert!(cache.lookup_minterms("mt|x").is_none());
            cache.insert_minterms("mt|x".into(), set.clone());
            assert!(cache.lookup_minterms("mt|x").is_some());
            let stats = cache.stats();
            assert_eq!((stats.minterm_hits, stats.minterm_misses), (1, 1));
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        let replayed = warm
            .lookup_minterms("mt|x")
            .expect("minterm sets are persisted as M records");
        assert_eq!(replayed.minterms, set.minterms);
        assert_eq!(replayed.uniform_literals, set.uniform_literals);
        assert_eq!(warm.stats().stale, 0);
        assert_eq!(warm.stats().disk_loaded, 1);
        cleanup(&path);
    }

    #[test]
    fn torn_minterm_payload_degrades_to_a_cold_entry() {
        let path = temp_path("torn-minterm");
        std::fs::write(
            &path,
            format!("{HEADER_V5}\nS1\tgood\nM\tmt|x\tU0;M1;O3#put"),
        )
        .unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(cache.lookup("good"), Some(true));
        assert!(
            cache.lookup_minterms("mt|x").is_none(),
            "a torn payload must not produce a wrong alphabet"
        );
        assert_eq!(cache.stats().stale, 1);
        cleanup(&path);
    }

    #[test]
    fn transition_memo_is_in_memory_only() {
        let path = temp_path("transition-memo");
        cleanup(&path);
        {
            let cache = MemoStore::with_disk_log(&path).unwrap();
            assert!(cache.lookup_transition("tr|x").is_none());
            cache.insert_transition("tr|x".into(), Sfa::Zero);
            assert_eq!(cache.lookup_transition("tr|x"), Some(Sfa::Zero));
            let stats = cache.stats();
            assert_eq!((stats.transition_hits, stats.transition_misses), (1, 1));
        }
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert!(
            warm.lookup_transition("tr|x").is_none(),
            "transitions are not persisted"
        );
        assert_eq!(warm.stats().stale, 0, "the memo must not pollute the log");
        cleanup(&path);
    }

    #[test]
    fn second_opener_degrades_to_in_memory_while_the_lock_is_held() {
        let path = temp_path("lock-contention");
        cleanup(&path);
        let first = MemoStore::with_disk_log(&path).unwrap();
        first.insert("sat|k1".into(), true);
        first.flush();
        assert!(!first.degraded());
        // A second store on the same path (another process in real life) must not
        // append — interleaved writers can tear each other's lines.
        let second = MemoStore::with_disk_log(&path).unwrap();
        assert!(second.degraded(), "the lock is held by `first`");
        assert_eq!(
            second.lookup("sat|k1"),
            Some(true),
            "a degraded opener still warm-starts from the log"
        );
        second.insert("sat|k2".into(), false);
        second.flush();
        assert!(
            second.compact().is_err(),
            "a degraded store must not rewrite the contested file"
        );
        drop(second);
        drop(first);
        let reopened = MemoStore::with_disk_log(&path).unwrap();
        assert!(!reopened.degraded(), "the lock is released on drop");
        assert_eq!(reopened.lookup("sat|k1"), Some(true));
        assert_eq!(
            reopened.lookup("sat|k2"),
            None,
            "the degraded store's inserts were memory-only"
        );
        cleanup(&path);
    }

    #[test]
    fn stale_lock_of_a_dead_process_is_reclaimed() {
        let path = temp_path("lock-stale");
        cleanup(&path);
        // No live process has this PID (PID_MAX on Linux is well below u32::MAX).
        std::fs::write(lock_path_for(&path), "4294967294").unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        if Path::new("/proc").is_dir() {
            assert!(!cache.degraded(), "a dead holder's lock must be reclaimed");
            cache.insert("sat|k".into(), true);
            drop(cache);
            let warm = MemoStore::with_disk_log(&path).unwrap();
            assert_eq!(warm.lookup("sat|k"), Some(true));
        } else {
            // Without /proc, liveness cannot be probed: degrading is the safe answer.
            assert!(cache.degraded());
        }
        cleanup(&path);
    }

    #[test]
    fn compact_drops_duplicates_and_keeps_every_live_record() {
        let path = temp_path("compact");
        cleanup(&path);
        // A merged pair of logs: every record appears twice, plus one torn line.
        let mut contents = format!("{HEADER_V5}\n");
        for _ in 0..2 {
            contents.push_str("S1\tsat|k1\nS0\tsat|k2\nI1\tincl|k3\nD0\tshape|k4\n");
            contents.push_str("M\tmt|k5\tU0;M0;P0;Q0;\n");
        }
        contents.push_str("torn");
        std::fs::write(&path, &contents).unwrap();
        let cache = MemoStore::with_disk_log(&path).unwrap();
        let report = cache.compact().unwrap();
        assert_eq!(report.records_after, 5);
        assert!(report.bytes_after < report.bytes_before);
        // Appends after compaction land in the new file.
        cache.insert("sat|k6".into(), true);
        drop(cache);
        let stats = MemoStore::inspect(&path).unwrap();
        assert_eq!(stats.version, Some(5));
        assert_eq!((stats.duplicates, stats.malformed), (0, 0));
        assert_eq!(stats.live(), 6);
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("sat|k1"), Some(true));
        assert_eq!(warm.lookup("sat|k2"), Some(false));
        assert_eq!(warm.lookup_inclusion("incl|k3"), Some(true));
        assert_eq!(warm.lookup_shape("shape|k4"), Some(false));
        assert!(warm.lookup_minterms("mt|k5").is_some());
        assert_eq!(warm.lookup("sat|k6"), Some(true));
        cleanup(&path);
    }

    #[test]
    fn dead_records_past_the_threshold_compact_automatically() {
        let path = temp_path("auto-compact");
        cleanup(&path);
        // 2 live records and AUTO_COMPACT_MIN_DEAD duplicates: over the 1-in-4 ratio.
        let mut contents = format!("{HEADER_V5}\nS1\tsat|live1\nS0\tsat|live2\n");
        for _ in 0..AUTO_COMPACT_MIN_DEAD {
            contents.push_str("S1\tsat|live1\n");
        }
        std::fs::write(&path, &contents).unwrap();
        drop(MemoStore::with_disk_log(&path).unwrap());
        let stats = MemoStore::inspect(&path).unwrap();
        assert_eq!(
            stats.duplicates, 0,
            "loading must have rewritten the log without the dead records"
        );
        assert_eq!(stats.live(), 2);
        let warm = MemoStore::with_disk_log(&path).unwrap();
        assert_eq!(warm.lookup("sat|live1"), Some(true));
        assert_eq!(warm.lookup("sat|live2"), Some(false));
        cleanup(&path);
    }

    #[test]
    fn a_few_dead_records_do_not_trigger_auto_compaction() {
        let path = temp_path("no-auto-compact");
        cleanup(&path);
        let contents = format!("{HEADER_V5}\nS1\tsat|k1\nS1\tsat|k1\n");
        std::fs::write(&path, &contents).unwrap();
        drop(MemoStore::with_disk_log(&path).unwrap());
        assert_eq!(
            MemoStore::inspect(&path).unwrap().duplicates,
            1,
            "below the threshold the log is left as-is"
        );
        cleanup(&path);
    }

    #[test]
    fn inspect_reports_per_kind_counts_and_dead_records() {
        let path = temp_path("inspect");
        cleanup(&path);
        std::fs::write(
            &path,
            format!(
                "{HEADER_V5}\nS1\tsat|k1\nS0\tsat|k2\nS1\tsat|k1\nI1\tincl|k3\nD0\tshape|k4\n\
                 M\tmt|k5\tU0;M0;P0;Q0;\nM\tmt|k6\tU0;M1;O3#put\ntorn-line"
            ),
        )
        .unwrap();
        let stats = MemoStore::inspect(&path).unwrap();
        assert_eq!(stats.version, Some(5));
        assert_eq!(stats.solver, 2);
        assert_eq!(stats.inclusion, 1);
        assert_eq!(stats.shape, 1);
        assert_eq!(stats.minterms, 1);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.malformed, 2, "torn payload + torn line");
        assert_eq!(stats.live(), 5);
        assert_eq!(stats.dead(), 3);
        assert!(stats.dead_ratio() > 0.3 && stats.dead_ratio() < 0.4);
        // Inspection is read-only: same result twice, no lock left behind.
        assert_eq!(MemoStore::inspect(&path).unwrap(), stats);
        assert!(!lock_path_for(&path).exists());
        cleanup(&path);
    }

    #[test]
    fn inspect_on_a_foreign_file_reads_only_the_header() {
        let path = temp_path("inspect-foreign");
        std::fs::write(&path, "hat-engine-cache v999\nS1\tk\n").unwrap();
        let stats = MemoStore::inspect(&path).unwrap();
        assert_eq!(stats.version, None);
        assert_eq!(stats.header.as_deref(), Some("hat-engine-cache v999"));
        assert_eq!(stats.live(), 0);
        cleanup(&path);
    }
}
