//! The parallel verification scheduler.
//!
//! A verification run is a batch of (benchmark, method) jobs submitted to a **persistent
//! worker pool** (`JobPool`): `jobs` threads spawned once when the [`Engine`] is
//! created and kept alive until it drops. Each worker owns its solver (wrapped in a
//! [`CachingOracle`]) and a lock-free [`LocalTier`] that survives across jobs *and
//! across submissions*, and shares the engine-wide [`MemoStore`] — so work one method
//! discharges is available to every other method of every later request. This is what
//! makes the engine reusable as a long-lived service (`marpled` submits one batch per
//! client request to the same pool); a batch CLI run is simply one submission followed
//! by [`RunHandle::finish`].
//!
//! # Fair scheduling
//!
//! The pool does **not** drain one FIFO queue. Every submission owns a logical queue of
//! its still-pending jobs, and idle workers rotate round-robin over the live
//! submissions, taking one job per turn — so a 2-job `check` submitted while a 100-job
//! `check-all` is queued gets every other job slot instead of waiting for the whole
//! batch. Fairness is per *submission*, which at the daemon layer means per client
//! request.
//!
//! Three more properties fall out of the same queue structure:
//!
//! * **Cancellation** — [`RunHandle::cancel`] atomically drops the submission's queued
//!   jobs (each waiting consumer observes a `cancelled` outcome, so accounting stays
//!   exact) while jobs already on a worker run to completion and still deliver.
//! * **Deduplication** — identical `(axioms, benchmark, method, knobs)` jobs across
//!   concurrent submissions run **once**: the later submission subscribes to the
//!   earlier job (queued or already running) and both receive the same report. This is
//!   sound because every verdict is a pure function of its canonical key. The key uses
//!   the canonical axiom-set fingerprint plus the benchmark/method identity, which
//!   uniquely names a job for the built-in suite the daemon serves.
//! * **Queue-wait accounting** — every job records how long it sat queued before a
//!   worker picked it up; [`RunSummary`] reports the p50/p95 so fairness is measurable.
//!
//! [`Engine::submit`] returns a [`RunHandle`] that yields reports **incrementally** as
//! workers complete them ([`RunHandle::next_report`], or [`RunHandle::poll_report`]
//! with a timeout for callers that interleave deadline checks) and finally assembles
//! them into pre-allocated slots keyed by (benchmark, method) index, so aggregation is
//! deterministic regardless of completion order; verdicts themselves are
//! order-independent because every cached verdict is a pure function of its canonical
//! key.

use crate::cache::{CacheStatsSnapshot, MemoStore};
use crate::oracle::CachingOracle;
use crate::tier::LocalTier;
use hat_core::{Checker, MethodReport};
use hat_sfa::{EnumerationMode, InclusionMode, SubsumptionMode};
use hat_suite::Benchmark;
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Configuration of a verification run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads (1 = sequential).
    pub jobs: usize,
    /// Path of the persistent cache log; `None` keeps the cache in memory only.
    pub cache_path: Option<PathBuf>,
    /// Minterm enumeration strategy (incremental by default; naive is kept for
    /// differential testing and paper-faithful measurement).
    pub enumeration: EnumerationMode,
    /// Whether per-group alphabet pruning runs before DFA product construction (on by
    /// default; the unpruned path is kept for differential testing and measurement —
    /// both paths are verdict- and state-count-identical).
    pub prune: bool,
    /// How each per-group inclusion problem is decided (on-the-fly product walk by
    /// default; the materialising DFA-pair path is kept for differential testing and
    /// measurement — both paths are verdict-identical).
    pub inclusion: InclusionMode,
    /// How aggressively the on-the-fly product walk prunes its frontier by antichain
    /// subsumption (memoised simulation by default; the syntactic tier and the
    /// unpruned walk are kept for differential testing and measurement — all three are
    /// verdict-identical, see [`hat_sfa::SubsumptionMode`]).
    pub subsume: SubsumptionMode,
    /// Whether each worker fronts the shared store with a lock-free local read-through
    /// tier (on by default; the shared-only path is kept as the lock-traffic measurement
    /// baseline — verdicts are identical because every memo value is a pure function of
    /// its key).
    pub local_tiers: bool,
    /// Memtable rotation threshold in bytes for the persistent LSM store; `None` takes
    /// the built-in default (or the `HAT_MEMTABLE_BYTES` override from the
    /// environment). Benchmarks set this low to force rotations at small record
    /// volumes.
    pub memtable_bytes: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 1,
            cache_path: None,
            enumeration: EnumerationMode::default(),
            prune: true,
            inclusion: InclusionMode::default(),
            subsume: SubsumptionMode::default(),
            local_tiers: true,
            memtable_bytes: None,
        }
    }
}

/// The verification results of one benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkRun {
    /// ADT name.
    pub adt: String,
    /// Backing library name.
    pub library: String,
    /// One report per method, in method order. A cancelled run may hold fewer reports
    /// than the benchmark has methods — the missing tail was never executed.
    pub reports: Vec<MethodReport>,
    /// Summed per-method verification time (CPU-side; wall clock shrinks with `jobs`).
    pub check_time: Duration,
}

impl BenchmarkRun {
    /// Whether every method matched its expected verdict.
    pub fn all_as_expected(&self, bench: &Benchmark) -> bool {
        bench
            .methods
            .iter()
            .zip(&self.reports)
            .all(|(m, r)| r.verified == m.expect_verified)
    }

    /// Total SMT queries issued by this benchmark's methods.
    pub fn sat_queries(&self) -> usize {
        self.reports.iter().map(|r| r.stats.sat_queries).sum()
    }

    /// Total cache hits recorded by this benchmark's methods.
    pub fn cache_hits(&self) -> usize {
        self.reports.iter().map(|r| r.stats.cache_hits).sum()
    }

    /// Total cache misses (queries that reached a solver).
    pub fn cache_misses(&self) -> usize {
        self.reports.iter().map(|r| r.stats.cache_misses).sum()
    }

    /// Total incremental enumeration checks issued by this benchmark's methods.
    pub fn enum_queries(&self) -> usize {
        self.reports.iter().map(|r| r.stats.enum_queries).sum()
    }

    /// Total pruned enumeration subtrees across this benchmark's methods.
    pub fn pruned_subtrees(&self) -> usize {
        self.reports.iter().map(|r| r.stats.pruned_subtrees).sum()
    }

    /// Total alphabet transformations answered from the minterm-set memo.
    pub fn minterm_memo_hits(&self) -> usize {
        self.reports.iter().map(|r| r.stats.minterm_memo_hits).sum()
    }

    /// Total inclusion checks answered from the inclusion-verdict memo.
    pub fn inclusion_memo_hits(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.stats.inclusion_memo_hits)
            .sum()
    }

    /// Total DFA states constructed by this benchmark's methods.
    pub fn dfa_states(&self) -> usize {
        self.reports.iter().map(|r| r.stats.dfa_states).sum()
    }

    /// Total DFA transitions constructed by this benchmark's methods.
    pub fn dfa_transitions(&self) -> usize {
        self.reports.iter().map(|r| r.stats.dfa_transitions).sum()
    }

    /// Total alphabet symbols dropped by per-group pruning.
    pub fn alphabet_pruned(&self) -> usize {
        self.reports.iter().map(|r| r.stats.alphabet_pruned).sum()
    }

    /// Total DFA transitions answered from the transition memo.
    pub fn transition_memo_hits(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.stats.transition_memo_hits)
            .sum()
    }

    /// Total product states discovered by on-the-fly inclusion walks.
    pub fn product_states(&self) -> usize {
        self.reports.iter().map(|r| r.stats.product_states).sum()
    }

    /// Total per-group product walks answered from the DFA-shape memo.
    pub fn shape_memo_hits(&self) -> usize {
        self.reports.iter().map(|r| r.stats.shape_memo_hits).sum()
    }

    /// Total antichain subsumption probes issued by on-the-fly product walks.
    pub fn subsumption_checks(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.stats.subsumption_checks)
            .sum()
    }

    /// Total product pairs dropped by antichain subsumption before exploration.
    pub fn subsumed_pairs(&self) -> usize {
        self.reports.iter().map(|r| r.stats.subsumed_pairs).sum()
    }

    /// Total simulation-preorder probes answered from the subsumption memo.
    pub fn simulation_memo_hits(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.stats.simulation_memo_hits)
            .sum()
    }

    /// Total shared-tier shard-lock acquisitions by this benchmark's methods. With
    /// local read-through tiers enabled, repeat lookups are absorbed lock-free and this
    /// number drops while hit counts stay.
    pub fn shared_tier_locks(&self) -> usize {
        self.reports.iter().map(|r| r.stats.shared_tier_locks).sum()
    }

    /// Total solver work: standalone SMT queries plus incremental enumeration checks.
    /// This is the number to compare across enumeration modes (naive enumeration issues
    /// standalone queries; incremental enumeration issues scoped checks).
    pub fn total_solver_work(&self) -> usize {
        self.sat_queries() + self.enum_queries()
    }
}

/// The outcome of a whole run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Per-benchmark results, in input order. Benchmarks whose every job was cancelled
    /// still appear, with an empty report list.
    pub benchmarks: Vec<BenchmarkRun>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Cache counters accumulated during this run (deltas, not lifetime totals).
    pub cache: CacheStatsSnapshot,
    /// Jobs of this submission dropped by cancellation before any worker picked them
    /// up. `completed + cancelled` always equals the submitted job count.
    pub cancelled: usize,
    /// Jobs answered by subscribing to an identical job already queued or running for
    /// a concurrent submission, instead of executing again.
    pub dedup_hits: usize,
    /// Median time this submission's completed jobs spent queued before a worker took
    /// them (nearest-rank).
    pub queue_wait_p50: Duration,
    /// 95th-percentile queue wait of this submission's completed jobs (nearest-rank).
    pub queue_wait_p95: Duration,
}

impl RunSummary {
    /// Whether any job of this run was dropped by cancellation.
    pub fn was_cancelled(&self) -> bool {
        self.cancelled > 0
    }
}

/// Identity of one verification job for cross-submission deduplication: the canonical
/// axiom-set fingerprint plus the benchmark/method identity and the knobs that can
/// change the executed pipeline. Verdicts are pure functions of this key (for the
/// static benchmark suite the daemon serves, where `(adt, library)` names a unique
/// definition), which is what makes fan-out to several subscribers sound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct JobKey {
    key_prefix: Arc<String>,
    adt: String,
    library: String,
    method: usize,
    method_name: String,
    enumeration: u8,
    prune: bool,
    inclusion: u8,
    subsume: u8,
}

impl JobKey {
    fn new(
        bench: &Benchmark,
        method: usize,
        key_prefix: &Arc<String>,
        config: &EngineConfig,
    ) -> Self {
        JobKey {
            key_prefix: Arc::clone(key_prefix),
            adt: bench.adt.to_string(),
            library: bench.library.to_string(),
            method,
            method_name: bench.methods[method].sig.name.clone(),
            // The mode enums are not `Hash`; encode their discriminants.
            enumeration: match config.enumeration {
                EnumerationMode::Naive => 0,
                EnumerationMode::Incremental => 1,
            },
            prune: config.prune,
            inclusion: match config.inclusion {
                InclusionMode::OnTheFly => 0,
                InclusionMode::Materialise => 1,
            },
            subsume: match config.subsume {
                SubsumptionMode::Off => 0,
                SubsumptionMode::Syntactic => 1,
                SubsumptionMode::Simulation => 2,
            },
        }
    }
}

/// The work a job carries (everything `run_job` needs).
struct JobWork {
    bench: Arc<Benchmark>,
    method: usize,
    /// Pre-computed axiom-set fingerprint prefix, shared by every method of a benchmark.
    key_prefix: Arc<String>,
    enumeration: EnumerationMode,
    prune: bool,
    inclusion: InclusionMode,
    subsume: SubsumptionMode,
}

/// One consumer of a job's outcome: which submission it belongs to, which slot of that
/// submission, and the channel to deliver on. A job gains extra recipients when a
/// concurrent submission dedups onto it.
struct Recipient {
    submission: u64,
    token: usize,
    reply: Sender<JobOutcome>,
}

/// A job waiting in some submission's queue.
struct QueuedJob {
    work: JobWork,
    recipients: Vec<Recipient>,
    queued_at: Instant,
}

/// How one job ended, delivered to every recipient.
#[derive(Clone)]
enum JobResult {
    Report(Box<MethodReport>),
    /// The job was dropped from the queue by cancellation before any worker took it.
    Cancelled,
    /// The job failed to run (ill-formed input or worker panic); the worker survives.
    Failed(String),
}

/// What a worker (or the cancellation path) sends back for one job.
struct JobOutcome {
    token: usize,
    /// Time the job spent queued before a worker picked it up (zero for cancellations).
    queue_wait: Duration,
    result: JobResult,
}

/// The scheduler state every worker and submitter shares, guarded by one mutex: the
/// round-robin rotation of live submissions, their per-submission job queues, the
/// queued jobs themselves (keyed for dedup), and the subscriber lists of running jobs.
#[derive(Default)]
struct PoolState {
    /// Round-robin rotation of submissions that still have queued jobs.
    order: VecDeque<u64>,
    /// Per-submission FIFO of queued job keys.
    pending: HashMap<u64, VecDeque<JobKey>>,
    /// Every queued job, keyed by identity so identical jobs merge.
    jobs: HashMap<JobKey, QueuedJob>,
    /// Late subscribers of jobs currently on a worker (the worker holds the recipients
    /// it took the job with; these are added on delivery).
    running: HashMap<JobKey, Vec<Recipient>>,
    /// Set when the pool is dropping: workers drain the backlog, then exit.
    closed: bool,
}

impl PoolState {
    /// Takes the next job fairly: pop one job from the front submission's queue and
    /// rotate that submission to the back, so every live submission gets one job slot
    /// per turn. Registers the job as running before returning.
    fn take_next(&mut self) -> Option<(JobKey, JobWork, Vec<Recipient>, Duration)> {
        while let Some(sid) = self.order.pop_front() {
            let Some(queue) = self.pending.get_mut(&sid) else {
                continue; // fully cancelled while parked in the rotation
            };
            let Some(key) = queue.pop_front() else {
                self.pending.remove(&sid);
                continue;
            };
            if queue.is_empty() {
                self.pending.remove(&sid);
            } else {
                self.order.push_back(sid);
            }
            let Some(job) = self.jobs.remove(&key) else {
                continue; // cancelled under us; the rotation already moved on
            };
            let wait = job.queued_at.elapsed();
            self.running.insert(key.clone(), Vec::new());
            return Some((key, job.work, job.recipients, wait));
        }
        None
    }
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled whenever jobs are queued or the pool closes.
    available: Condvar,
    /// Lifetime count of jobs answered by subscription instead of execution.
    dedup_hits: AtomicUsize,
}

impl PoolShared {
    /// Locks the scheduler state, recovering from poisoning: the state is only ever
    /// mutated with the lock held and never left mid-update, and jobs execute outside
    /// the critical section, so a poisoned lock cannot hide a torn queue.
    fn lock_state(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Removes every queued job belonging to `submission`, delivering a cancellation
    /// outcome to each of its recipients so consumer accounting stays exact. Queued
    /// jobs that concurrent submissions dedup-subscribed to survive: they are re-homed
    /// into the first surviving subscriber's queue. Running jobs are untouched.
    fn cancel_submission(&self, submission: u64) -> usize {
        let mut state = self.lock_state();
        let state = &mut *state;
        let mut dropped = 0usize;
        let mut emptied: HashSet<JobKey> = HashSet::new();
        for (key, job) in state.jobs.iter_mut() {
            job.recipients.retain(|r| {
                if r.submission != submission {
                    return true;
                }
                dropped += 1;
                let _ = r.reply.send(JobOutcome {
                    token: r.token,
                    queue_wait: Duration::ZERO,
                    result: JobResult::Cancelled,
                });
                false
            });
            if job.recipients.is_empty() {
                emptied.insert(key.clone());
            }
        }
        for key in &emptied {
            state.jobs.remove(key);
        }
        // Jobs this submission owned but others subscribe to keep running — under the
        // first surviving subscriber's queue, so fairness follows the new owner.
        let survivors: Vec<JobKey> = state
            .pending
            .remove(&submission)
            .into_iter()
            .flatten()
            .filter(|key| state.jobs.contains_key(key))
            .collect();
        for key in survivors {
            let new_sid = state.jobs[&key].recipients[0].submission;
            state.pending.entry(new_sid).or_default().push_back(key);
            if !state.order.contains(&new_sid) {
                state.order.push_back(new_sid);
            }
        }
        // Defensive sweep: a key that lost every recipient must not linger in any queue.
        if !emptied.is_empty() {
            for queue in state.pending.values_mut() {
                queue.retain(|k| !emptied.contains(k));
            }
            state.pending.retain(|_, q| !q.is_empty());
        }
        dropped
    }

    /// Drops every queued job of every submission (`shutdown --now`): each recipient
    /// observes a cancellation outcome; running jobs finish and deliver normally.
    fn cancel_all_queued(&self) -> usize {
        let mut state = self.lock_state();
        let mut dropped = 0usize;
        for (_, job) in state.jobs.drain() {
            for r in job.recipients {
                dropped += 1;
                let _ = r.reply.send(JobOutcome {
                    token: r.token,
                    queue_wait: Duration::ZERO,
                    result: JobResult::Cancelled,
                });
            }
        }
        state.pending.clear();
        state.order.clear();
        dropped
    }
}

/// A persistent verification worker pool: `jobs` threads spawned once, draining the
/// per-submission queue set round-robin, alive until the owning [`Engine`] drops.
/// Dropping the pool closes the queues and joins the workers — queued and in-flight
/// jobs finish first, which is what gives the daemon its graceful-drain shutdown for
/// free.
struct JobPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for JobPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl JobPool {
    fn spawn(workers: usize, cache: Arc<MemoStore>, local_tiers: bool) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            available: Condvar::new(),
            dedup_hits: AtomicUsize::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let cache = Arc::clone(&cache);
                std::thread::Builder::new()
                    .name(format!("hat-worker-{i}"))
                    .spawn(move || Self::worker_loop(&shared, &cache, local_tiers))
                    .expect("spawning a verification worker failed")
            })
            .collect();
        JobPool { shared, workers }
    }

    fn worker_loop(shared: &PoolShared, cache: &Arc<MemoStore>, local_tiers: bool) {
        // One lock-free local tier per worker, shared by every oracle the worker
        // creates: promotions made while checking one method serve every later method
        // of the same worker — including methods of *later submissions* — without a
        // shard lock.
        let local = local_tiers.then(|| Rc::new(LocalTier::default()));
        loop {
            // Take a job with the scheduler lock released again before running it, so a
            // long verification never blocks the other workers' queue access.
            let (key, work, recipients, queue_wait) = {
                let mut state = shared.lock_state();
                loop {
                    if let Some(next) = state.take_next() {
                        break next;
                    }
                    if state.closed {
                        return;
                    }
                    state = shared
                        .available
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Self::run_job(&work, cache, local.as_ref())
            }));
            let result = match outcome {
                Ok(Ok(report)) => JobResult::Report(Box::new(report)),
                Ok(Err(message)) => JobResult::Failed(message),
                Err(panic) => {
                    let message = panic
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "worker panicked".to_string());
                    JobResult::Failed(message)
                }
            };
            // Merge the recipients the job was taken with and any subscribers that
            // arrived while it ran, then fan the one result out to all of them.
            let late = shared.lock_state().running.remove(&key).unwrap_or_default();
            for r in recipients.into_iter().chain(late) {
                // A dropped RunHandle is fine: the outcome is simply discarded.
                let _ = r.reply.send(JobOutcome {
                    token: r.token,
                    queue_wait,
                    result: result.clone(),
                });
            }
        }
    }

    fn run_job(
        work: &JobWork,
        cache: &Arc<MemoStore>,
        local: Option<&Rc<LocalTier>>,
    ) -> Result<MethodReport, String> {
        let bench = &work.bench;
        let method = &bench.methods[work.method];
        let mut oracle = CachingOracle::with_key_prefix(
            bench.delta.axioms.clone(),
            Arc::clone(cache),
            work.key_prefix.as_ref().clone(),
        );
        if let Some(local) = local {
            oracle = oracle.with_local_tier(Rc::clone(local));
        }
        let mut checker = Checker::with_oracle(bench.delta.clone(), Box::new(oracle));
        checker.inclusion.enumeration = work.enumeration;
        checker.inclusion.prune = work.prune;
        checker.inclusion.mode = work.inclusion;
        checker.inclusion.subsume = work.subsume;
        checker
            .check_method(&method.sig, &method.body)
            .map_err(|e| {
                format!(
                    "checking {}::{} failed to run: {e}",
                    bench.adt, method.sig.name
                )
            })
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        // Closing wakes every idle worker; each drains the remaining backlog, then
        // exits. Joining waits for in-flight jobs to finish.
        self.shared.lock_state().closed = true;
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One report as it streams out of the pool: which (benchmark, method) slot of the
/// submitted batch it belongs to, the report itself, and how long the job waited for a
/// worker.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Index of the benchmark within the submitted slice.
    pub bench: usize,
    /// Index of the method within that benchmark.
    pub method: usize,
    /// The completed report.
    pub report: MethodReport,
    /// Time the job spent queued before a worker picked it up.
    pub queue_wait: Duration,
}

/// One step of [`RunHandle::poll_report`].
#[derive(Debug)]
pub enum PollReport {
    /// A job completed; here is its report.
    Report(Box<JobReport>),
    /// No job completed within the timeout; the run is still in flight.
    TimedOut,
    /// Every job of the submission has been accounted for (completed or cancelled).
    Done,
}

/// An in-flight submission: jobs are running (or queued) on the engine's worker pool,
/// and reports can be consumed incrementally with [`RunHandle::next_report`] — this is
/// how the verification daemon streams per-job verdicts to its clients while the batch
/// is still running. [`RunHandle::poll_report`] is the timeout-bounded variant the
/// daemon uses to interleave deadline and cancellation checks with consumption.
/// [`RunHandle::finish`] drains the remainder and assembles the deterministic
/// [`RunSummary`].
#[derive(Debug)]
pub struct RunHandle<'e> {
    engine: &'e Engine,
    /// Scheduler identity of this submission (its queue in the rotation).
    submission: u64,
    /// (bench index, method index) per job token.
    jobs: Vec<(usize, usize)>,
    /// Completed reports, keyed by job token. Cancelled tokens stay `None`.
    slots: Vec<Option<MethodReport>>,
    received: usize,
    cancelled: usize,
    cancel_requested: bool,
    dedup_hits: usize,
    /// Queue waits of completed jobs, for the summary percentiles.
    waits: Vec<Duration>,
    rx: Receiver<JobOutcome>,
    benches: Vec<(String, String, usize)>,
    stats_before: CacheStatsSnapshot,
    start: Instant,
}

impl RunHandle<'_> {
    /// Number of jobs in this submission.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Number of this submission's jobs dropped by cancellation so far.
    pub fn cancelled(&self) -> usize {
        self.cancelled
    }

    /// Number of this submission's jobs that were answered by subscribing to an
    /// identical in-flight job of a concurrent submission.
    pub fn dedup_hits(&self) -> usize {
        self.dedup_hits
    }

    /// Whether [`RunHandle::cancel`] has been called on this handle.
    pub fn cancel_requested(&self) -> bool {
        self.cancel_requested
    }

    /// Drops this submission's queued jobs; jobs already on a worker finish and still
    /// deliver their reports. Returns the number of jobs dropped right now (their
    /// cancellation outcomes are consumed by the next `next_report`/`poll_report`/
    /// `finish` call, so accounting stays exact). Idempotent.
    pub fn cancel(&mut self) -> usize {
        self.cancel_requested = true;
        self.engine.pool.shared.cancel_submission(self.submission)
    }

    /// Folds one outcome into the handle's accounting; returns the report if the
    /// outcome carried one. Panics on a failed job — same contract as the one-shot
    /// scheduler had.
    fn absorb(&mut self, outcome: JobOutcome) -> Option<JobReport> {
        match outcome.result {
            JobResult::Report(report) => {
                let (bench, method) = self.jobs[outcome.token];
                self.slots[outcome.token] = Some((*report).clone());
                self.received += 1;
                self.waits.push(outcome.queue_wait);
                Some(JobReport {
                    bench,
                    method,
                    report: *report,
                    queue_wait: outcome.queue_wait,
                })
            }
            JobResult::Cancelled => {
                self.cancelled += 1;
                None
            }
            JobResult::Failed(message) => panic!("{message}"),
        }
    }

    fn outstanding(&self) -> bool {
        self.received + self.cancelled < self.jobs.len()
    }

    /// Blocks until the next report completes and returns it; `None` once every job of
    /// this submission has been yielded or cancelled. Panics if a job failed to run
    /// (ill-formed input) or a worker died — the same contract the one-shot scheduler
    /// had.
    pub fn next_report(&mut self) -> Option<JobReport> {
        while self.outstanding() {
            let outcome = self
                .rx
                .recv()
                .expect("a verification worker died with jobs outstanding");
            if let Some(report) = self.absorb(outcome) {
                return Some(report);
            }
        }
        None
    }

    /// Waits up to `timeout` for the next report. [`PollReport::TimedOut`] hands
    /// control back to the caller with the run still in flight — the daemon uses this
    /// to check deadlines and client cancellation between reports.
    pub fn poll_report(&mut self, timeout: Duration) -> PollReport {
        let deadline = Instant::now() + timeout;
        while self.outstanding() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(outcome) => {
                    if let Some(report) = self.absorb(outcome) {
                        return PollReport::Report(Box::new(report));
                    }
                }
                Err(RecvTimeoutError::Timeout) => return PollReport::TimedOut,
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("a verification worker died with jobs outstanding")
                }
            }
        }
        PollReport::Done
    }

    /// Drains any remaining reports and assembles the deterministic summary: reports in
    /// (benchmark, method) input order, wall clock since submission, and the cache-
    /// counter deltas of this run. Cancelled jobs leave no report; their count is in
    /// [`RunSummary::cancelled`].
    pub fn finish(mut self) -> RunSummary {
        while self.next_report().is_some() {}
        let mut results: Vec<BenchmarkRun> = self
            .benches
            .iter()
            .map(|(adt, library, methods)| BenchmarkRun {
                adt: adt.clone(),
                library: library.clone(),
                reports: Vec::with_capacity(*methods),
                check_time: Duration::ZERO,
            })
            .collect();
        for (&(b, _), slot) in self.jobs.iter().zip(&mut self.slots) {
            let Some(report) = slot.take() else {
                continue; // cancelled before a worker took it
            };
            results[b].check_time += report.stats.total_time;
            results[b].reports.push(report);
        }
        self.waits.sort_unstable();
        let queue_wait_p50 = percentile(&self.waits, 50.0);
        let queue_wait_p95 = percentile(&self.waits, 95.0);
        self.engine.cache.flush();
        let after = self.engine.cache.stats();
        let stats_before = self.stats_before;
        RunSummary {
            benchmarks: results,
            wall: self.start.elapsed(),
            cache: CacheStatsSnapshot {
                // Saturating: with several concurrent submissions against one engine
                // (the daemon), another run's compaction-free counters only grow, but
                // per-run deltas must never underflow.
                hits: after.hits.saturating_sub(stats_before.hits),
                misses: after.misses.saturating_sub(stats_before.misses),
                // Disk replay happens at engine construction, so these deltas are 0 for
                // every run; lifetime values live in `Engine::cache().stats()`.
                disk_loaded: after.disk_loaded.saturating_sub(stats_before.disk_loaded),
                stale: after.stale.saturating_sub(stats_before.stale),
                minterm_hits: after.minterm_hits.saturating_sub(stats_before.minterm_hits),
                minterm_misses: after
                    .minterm_misses
                    .saturating_sub(stats_before.minterm_misses),
                transition_hits: after
                    .transition_hits
                    .saturating_sub(stats_before.transition_hits),
                transition_misses: after
                    .transition_misses
                    .saturating_sub(stats_before.transition_misses),
                subsumption_hits: after
                    .subsumption_hits
                    .saturating_sub(stats_before.subsumption_hits),
                subsumption_misses: after
                    .subsumption_misses
                    .saturating_sub(stats_before.subsumption_misses),
                lock_acquisitions: after
                    .lock_acquisitions
                    .saturating_sub(stats_before.lock_acquisitions),
                disk_lock_acquisitions: after
                    .disk_lock_acquisitions
                    .saturating_sub(stats_before.disk_lock_acquisitions),
            },
            cancelled: self.cancelled,
            dedup_hits: self.dedup_hits,
            queue_wait_p50,
            queue_wait_p95,
        }
    }
}

/// Nearest-rank percentile of an already-sorted sample; zero for an empty one.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The parallel verification engine: a persistent worker pool plus the shared memo
/// store. Creating an engine spawns the pool; the engine stays ready to accept any
/// number of [`Engine::submit`] / [`Engine::check_benchmarks`] calls — concurrently,
/// from multiple threads — until it drops. This is the object a `marpled` daemon keeps
/// alive across client requests.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    // Declared before `cache` so workers join (and stop writing) before the store
    // flushes its log on drop.
    pool: JobPool,
    cache: Arc<MemoStore>,
    next_submission: AtomicU64,
}

impl Engine {
    /// Creates an engine, loading the persistent cache when one is configured and
    /// spawning the worker pool.
    pub fn new(config: EngineConfig) -> std::io::Result<Self> {
        let cache = match &config.cache_path {
            Some(path) => {
                let mut lsm = crate::lsm::LsmConfig::from_env();
                if let Some(bytes) = config.memtable_bytes {
                    lsm.memtable_bytes = bytes.max(1);
                }
                Arc::new(MemoStore::with_disk_log_config(path, lsm)?)
            }
            None => Arc::new(MemoStore::in_memory()),
        };
        let pool = JobPool::spawn(config.jobs, Arc::clone(&cache), config.local_tiers);
        Ok(Engine {
            config,
            pool,
            cache,
            next_submission: AtomicU64::new(0),
        })
    }

    /// The shared memo store (e.g. for reporting lifetime statistics).
    pub fn cache(&self) -> &Arc<MemoStore> {
        &self.cache
    }

    /// The configuration the engine was created with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Lifetime count of jobs answered by subscribing to an identical in-flight job
    /// instead of executing again.
    pub fn dedup_hits(&self) -> usize {
        self.pool.shared.dedup_hits.load(Ordering::Relaxed)
    }

    /// Number of jobs currently queued (not yet on a worker) across all submissions.
    pub fn queued_jobs(&self) -> usize {
        self.pool.shared.lock_state().jobs.len()
    }

    /// Drops every queued job of every in-flight submission; running jobs finish.
    /// Each affected [`RunHandle`] observes the drops as cancellations. This is the
    /// engine half of `marpled shutdown --now`.
    pub fn cancel_all_queued(&self) -> usize {
        self.pool.shared.cancel_all_queued()
    }

    /// Submits every (benchmark, method) job of `benches` to the worker pool and
    /// returns a [`RunHandle`] that streams reports as they complete. Multiple
    /// submissions may be in flight at once — each gets its own queue in the fair
    /// rotation, jobs identical to another submission's queued or running work are
    /// answered by subscription instead of re-execution, and each handle only ever
    /// sees its own reports.
    pub fn submit(&self, benches: &[Benchmark]) -> RunHandle<'_> {
        let start = Instant::now();
        let stats_before = self.cache.stats();
        // One fingerprint per benchmark, not per method job: canonicalising the axiom
        // set is not free and every method of a benchmark shares it.
        let shared: Vec<(Arc<Benchmark>, Arc<String>)> = benches
            .iter()
            .map(|b| {
                (
                    Arc::new(b.clone()),
                    Arc::new(CachingOracle::key_prefix_for(&b.delta.axioms)),
                )
            })
            .collect();
        let jobs: Vec<(usize, usize)> = benches
            .iter()
            .enumerate()
            .flat_map(|(b, bench)| (0..bench.methods.len()).map(move |m| (b, m)))
            .collect();
        let submission = self.next_submission.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = channel();
        let mut dedup_hits = 0usize;
        {
            let mut state = self.pool.shared.lock_state();
            let mut queue: VecDeque<JobKey> = VecDeque::new();
            for (token, &(b, m)) in jobs.iter().enumerate() {
                let (bench, key_prefix) = &shared[b];
                let key = JobKey::new(bench, m, key_prefix, &self.config);
                let recipient = Recipient {
                    submission,
                    token,
                    reply: reply.clone(),
                };
                if let Some(job) = state.jobs.get_mut(&key) {
                    job.recipients.push(recipient);
                    dedup_hits += 1;
                    // The job stays queued under its original submission, but this
                    // submission's round-robin turns must be able to schedule it too —
                    // otherwise a small run deduped against a large queued batch waits
                    // for the batch's queue position, which is exactly the starvation
                    // the rotation exists to prevent. Whichever queue's turn comes
                    // first takes the job; `take_next` skips the other, stale entry.
                    queue.push_back(key);
                } else if let Some(subscribers) = state.running.get_mut(&key) {
                    subscribers.push(recipient);
                    dedup_hits += 1;
                } else {
                    state.jobs.insert(
                        key.clone(),
                        QueuedJob {
                            work: JobWork {
                                bench: Arc::clone(bench),
                                method: m,
                                key_prefix: Arc::clone(key_prefix),
                                enumeration: self.config.enumeration,
                                prune: self.config.prune,
                                inclusion: self.config.inclusion,
                                subsume: self.config.subsume,
                            },
                            recipients: vec![recipient],
                            queued_at: Instant::now(),
                        },
                    );
                    queue.push_back(key);
                }
            }
            if !queue.is_empty() {
                state.pending.insert(submission, queue);
                state.order.push_back(submission);
            }
        }
        self.pool.shared.available.notify_all();
        if dedup_hits > 0 {
            self.pool
                .shared
                .dedup_hits
                .fetch_add(dedup_hits, Ordering::Relaxed);
        }
        let slots = jobs.iter().map(|_| None).collect();
        RunHandle {
            engine: self,
            submission,
            slots,
            received: 0,
            cancelled: 0,
            cancel_requested: false,
            dedup_hits,
            waits: Vec::new(),
            rx,
            benches: benches
                .iter()
                .map(|b| (b.adt.to_string(), b.library.to_string(), b.methods.len()))
                .collect(),
            jobs,
            stats_before,
            start,
        }
    }

    /// Verifies every method of every benchmark, fanning the (benchmark, method) jobs
    /// out over the worker pool, and blocks until the whole batch is done.
    pub fn check_benchmarks(&self, benches: &[Benchmark]) -> RunSummary {
        self.submit(benches).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_benches() -> Vec<Benchmark> {
        // Two small configurations keep this test quick even in debug builds.
        vec![
            hat_suite::find("ConnectedGraph", "Set").expect("configuration exists"),
            hat_suite::find("Stack", "LinkedList").expect("configuration exists"),
        ]
    }

    fn verdicts(summary: &RunSummary) -> Vec<Vec<bool>> {
        summary
            .benchmarks
            .iter()
            .map(|b| b.reports.iter().map(|r| r.verified).collect())
            .collect()
    }

    #[test]
    fn parallel_verdicts_match_sequential() {
        let benches = fast_benches();
        let sequential = Engine::new(EngineConfig::default())
            .expect("in-memory engine")
            .check_benchmarks(&benches);
        let parallel = Engine::new(EngineConfig {
            jobs: 4,
            ..EngineConfig::default()
        })
        .expect("in-memory engine")
        .check_benchmarks(&benches);
        assert_eq!(verdicts(&sequential), verdicts(&parallel));
        for (b, run) in benches.iter().zip(&sequential.benchmarks) {
            assert!(run.all_as_expected(b), "{}/{} regressed", b.adt, b.library);
        }
    }

    #[test]
    fn warm_cache_reduces_solver_work() {
        let benches = vec![hat_suite::find("ConnectedGraph", "Set").expect("configuration exists")];
        let engine = Engine::new(EngineConfig::default()).expect("in-memory engine");
        let cold = engine.check_benchmarks(&benches);
        let warm = engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&cold), verdicts(&warm));
        assert!(warm.cache.hits > 0, "second run must hit the cache");
        assert!(
            warm.cache.misses < cold.cache.misses,
            "warm run should reach the solver less ({} vs {})",
            warm.cache.misses,
            cold.cache.misses
        );
    }

    #[test]
    fn pruned_and_memoised_construction_matches_the_unpruned_path() {
        let benches = fast_benches();
        let unpruned = Engine::new(EngineConfig {
            prune: false,
            ..EngineConfig::default()
        })
        .expect("in-memory engine")
        .check_benchmarks(&benches);
        let pruned_engine = Engine::new(EngineConfig::default()).expect("in-memory engine");
        let pruned = pruned_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&unpruned), verdicts(&pruned));
        for (u, p) in unpruned.benchmarks.iter().zip(&pruned.benchmarks) {
            assert_eq!(
                u.dfa_states(),
                p.dfa_states(),
                "{}/{}: pruning changed the reachable DFA state set",
                u.adt,
                u.library
            );
            assert!(
                p.dfa_transitions() <= u.dfa_transitions(),
                "{}/{}: pruning produced more transitions",
                u.adt,
                u.library
            );
        }
        let total_pruned: usize = pruned.benchmarks.iter().map(|b| b.alphabet_pruned()).sum();
        assert!(total_pruned > 0, "no benchmark exercised the pruner");
        // The caching oracle memoises transitions run-wide: a second pass over the same
        // benchmarks must answer every derivative from the memo.
        let warm = pruned_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&pruned), verdicts(&warm));
        assert!(
            pruned_engine.cache().stats().transition_hits > 0,
            "structurally equal sub-automata must share memoised transitions"
        );
    }

    #[test]
    fn onthefly_inclusion_matches_the_materialised_path_and_shares_shapes() {
        let benches = fast_benches();
        let materialised = Engine::new(EngineConfig {
            inclusion: hat_sfa::InclusionMode::Materialise,
            ..EngineConfig::default()
        })
        .expect("in-memory engine")
        .check_benchmarks(&benches);
        let otf_engine = Engine::new(EngineConfig::default()).expect("in-memory engine");
        let onthefly = otf_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&materialised), verdicts(&onthefly));
        for (m, o) in materialised.benchmarks.iter().zip(&onthefly.benchmarks) {
            assert!(
                o.dfa_transitions() <= m.dfa_transitions(),
                "{}/{}: the walk derived more transitions than the complete builds",
                m.adt,
                m.library
            );
            assert_eq!(
                m.product_states(),
                0,
                "materialised runs must not report product states"
            );
        }
        let total_product: usize = onthefly.benchmarks.iter().map(|b| b.product_states()).sum();
        assert!(total_product > 0, "no benchmark exercised the product walk");
        // A second pass over the same benchmarks is answered from the memo hierarchy
        // (inclusion-verdict hits shadow shape hits for α-equal whole checks).
        let warm = otf_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&onthefly), verdicts(&warm));
        assert!(
            otf_engine.cache().stats().hits > 0,
            "the warm pass must hit the shared cache"
        );
    }

    #[test]
    fn submissions_stream_reports_and_reuse_the_pool() {
        let benches = fast_benches();
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        })
        .expect("in-memory engine");
        // First submission: consume the stream by hand and count every report.
        let mut handle = engine.submit(&benches);
        let expected_jobs: usize = benches.iter().map(|b| b.methods.len()).sum();
        assert_eq!(handle.job_count(), expected_jobs);
        let mut seen = vec![0usize; benches.len()];
        while let Some(job) = handle.next_report() {
            assert!(job.method < benches[job.bench].methods.len());
            seen[job.bench] += 1;
        }
        for (bench, &count) in benches.iter().zip(&seen) {
            assert_eq!(
                count,
                bench.methods.len(),
                "{}/{}",
                bench.adt,
                bench.library
            );
        }
        let first = handle.finish();
        // Second submission against the *same* engine: the persistent pool (and its
        // per-worker local tiers) serve it warm, with identical verdicts.
        let second = engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&first), verdicts(&second));
        assert!(second.cache.hits > 0, "the pool must stay warm across runs");
    }

    #[test]
    fn concurrent_submissions_do_not_crosstalk() {
        let benches = fast_benches();
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        })
        .expect("in-memory engine");
        let baseline = Engine::new(EngineConfig::default())
            .expect("in-memory engine")
            .check_benchmarks(&benches);
        // Two batches in flight at once on one pool — the daemon's concurrent-client
        // shape. Each handle must see exactly its own reports.
        let (first, second) = std::thread::scope(|scope| {
            let a = scope.spawn(|| engine.check_benchmarks(&benches[..1]));
            let b = scope.spawn(|| engine.check_benchmarks(&benches[1..]));
            (a.join().expect("first run"), b.join().expect("second run"))
        });
        assert_eq!(verdicts(&first), verdicts(&baseline)[..1].to_vec());
        assert_eq!(verdicts(&second), verdicts(&baseline)[1..].to_vec());
        assert_eq!(
            first.benchmarks[0].reports.len(),
            benches[0].methods.len(),
            "a handle must receive every report of its own submission"
        );
    }

    #[test]
    fn disk_log_carries_verdicts_across_engines() {
        let mut path = std::env::temp_dir();
        path.push(format!("hat-engine-sched-{}.cache", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let benches = vec![hat_suite::find("Stack", "LinkedList").expect("configuration exists")];
        let cold = Engine::new(EngineConfig {
            jobs: 2,
            cache_path: Some(path.clone()),
            ..EngineConfig::default()
        })
        .expect("disk-backed engine")
        .check_benchmarks(&benches);
        let warm_engine = Engine::new(EngineConfig {
            jobs: 2,
            cache_path: Some(path.clone()),
            ..EngineConfig::default()
        })
        .expect("disk-backed engine");
        assert!(warm_engine.cache().stats().disk_loaded > 0);
        let warm = warm_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&cold), verdicts(&warm));
        assert!(warm.cache.hits > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cancel_drops_queued_jobs_and_keeps_completed_verdicts() {
        // One worker: the first submission occupies it, so the second is entirely
        // queued when the cancel lands.
        let engine = Engine::new(EngineConfig {
            jobs: 1,
            ..EngineConfig::default()
        })
        .expect("in-memory engine");
        let blocker = vec![hat_suite::find("ConnectedGraph", "Set").expect("configuration exists")];
        let victim = vec![hat_suite::find("Stack", "LinkedList").expect("configuration exists")];
        let blocker_handle = engine.submit(&blocker);
        let mut victim_handle = engine.submit(&victim);
        let dropped = victim_handle.cancel();
        assert!(dropped > 0, "the queued submission must have jobs to drop");
        assert_eq!(victim_handle.cancel(), 0, "cancel is idempotent");
        let cancelled_run = victim_handle.finish();
        assert_eq!(
            cancelled_run.cancelled + cancelled_run.benchmarks[0].reports.len(),
            victim[0].methods.len(),
            "every job is either cancelled or reported"
        );
        assert!(cancelled_run.was_cancelled());
        // The blocker is unaffected and still verdict-correct.
        let blocker_run = blocker_handle.finish();
        assert!(blocker_run.benchmarks[0].all_as_expected(&blocker[0]));
        assert_eq!(blocker_run.cancelled, 0);
        // The engine stays serviceable: resubmitting the cancelled work completes it.
        let retry = engine.check_benchmarks(&victim);
        assert!(retry.benchmarks[0].all_as_expected(&victim[0]));
        assert_eq!(retry.cancelled, 0);
    }

    #[test]
    fn identical_inflight_jobs_are_deduped_across_submissions() {
        let benches = fast_benches();
        let engine = Engine::new(EngineConfig {
            jobs: 1,
            ..EngineConfig::default()
        })
        .expect("in-memory engine");
        // Submit the same batch twice back to back: the single worker is still on the
        // first batch, so the second subscribes to queued/running jobs instead of
        // queueing duplicates.
        let first_handle = engine.submit(&benches);
        let second_handle = engine.submit(&benches);
        let first = first_handle.finish();
        let second = second_handle.finish();
        assert_eq!(verdicts(&first), verdicts(&second));
        assert!(
            second.dedup_hits > 0,
            "an identical concurrent batch must subscribe, not re-run"
        );
        assert_eq!(engine.dedup_hits(), first.dedup_hits + second.dedup_hits);
        for (b, run) in benches.iter().zip(&second.benchmarks) {
            assert_eq!(run.reports.len(), b.methods.len());
            assert!(run.all_as_expected(b));
        }
    }

    #[test]
    fn small_submission_is_not_starved_by_a_large_one() {
        // One worker and a large batch already queued: round-robin rotation must
        // interleave the small batch's jobs instead of appending them FIFO.
        let engine = Engine::new(EngineConfig {
            jobs: 1,
            ..EngineConfig::default()
        })
        .expect("in-memory engine");
        let small = vec![hat_suite::find("Stack", "LinkedList").expect("configuration exists")];
        let large: Vec<Benchmark> = hat_suite::all_benchmarks()
            .into_iter()
            .filter(|b| !(b.slow || (b.adt == "Stack" && b.library == "LinkedList")))
            .take(4)
            .collect();
        assert!(
            large.len() >= 3,
            "the suite must provide enough fast configs"
        );
        let large_handle = engine.submit(&large);
        let small_handle = engine.submit(&small);
        assert!(
            large_handle.job_count() > 2 * small_handle.job_count(),
            "the large batch must dominate the queue for the test to mean anything"
        );
        let (large_done, small_done) = std::thread::scope(|scope| {
            let a = scope.spawn(move || {
                let mut h = large_handle;
                while h.next_report().is_some() {}
                Instant::now()
            });
            let b = scope.spawn(move || {
                let mut h = small_handle;
                while h.next_report().is_some() {}
                Instant::now()
            });
            (a.join().expect("large run"), b.join().expect("small run"))
        });
        assert!(
            small_done < large_done,
            "fair rotation must complete the small submission before the large backlog"
        );
    }
}
